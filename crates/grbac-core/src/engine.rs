//! The GRBAC access-mediation engine (§4.2.4).
//!
//! [`Grbac`] owns every catalog (roles, entities, assignments, sessions,
//! SoD constraints, rules) and implements the generalized mediation rule:
//! subject `s` may perform transaction `t` on object `o` iff the policy —
//! after hierarchy expansion, confidence thresholds and conflict
//! resolution — yields [`Effect::Permit`] for some (subject role, object
//! role, active environment roles) binding.
//!
//! # Examples
//!
//! The §5.1 policy in full:
//!
//! ```
//! use grbac_core::prelude::*;
//!
//! # fn main() -> Result<(), GrbacError> {
//! let mut g = Grbac::new();
//! let child = g.declare_subject_role("child")?;
//! let entertainment = g.declare_object_role("entertainment_devices")?;
//! let weekdays = g.declare_environment_role("weekdays")?;
//! let free_time = g.declare_environment_role("free_time")?;
//! let use_t = g.declare_transaction("use")?;
//!
//! let bobby = g.declare_subject("bobby")?;
//! g.assign_subject_role(bobby, child)?;
//! let tv = g.declare_object("tv")?;
//! g.assign_object_role(tv, entertainment)?;
//!
//! g.add_rule(
//!     RuleDef::permit()
//!         .named("kids tv policy")
//!         .subject_role(child)
//!         .object_role(entertainment)
//!         .transaction(use_t)
//!         .when(weekdays)
//!         .when(free_time),
//! )?;
//!
//! let after_dinner = EnvironmentSnapshot::from_active([weekdays, free_time]);
//! let decision = g.decide(&AccessRequest::by_subject(bobby, use_t, tv, after_dinner))?;
//! assert!(decision.is_permitted());
//!
//! let school_hours = EnvironmentSnapshot::from_active([weekdays]);
//! let decision = g.decide(&AccessRequest::by_subject(bobby, use_t, tv, school_hours))?;
//! assert!(!decision.is_permitted());
//! # Ok(())
//! # }
//! ```

use std::borrow::Cow;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::assignment::Assignments;
use crate::audit::AuditLog;
use crate::confidence::{AuthContext, Confidence};
use crate::degraded::{DegradedMode, DegradedPosture, DegradedReason, EnvHealth};
use crate::delta::{DeltaLog, PolicyDelta};
use crate::entity::EntityCatalog;
use crate::environment::EnvironmentSnapshot;
use crate::error::{GrbacError, Result};
use crate::explain::{Decision, Explanation, MatchedRule, Reason};
use crate::id::{
    DecisionIdMint, IdAllocator, ObjectId, RoleId, RuleId, SessionId, SubjectId, TransactionId,
};
use crate::index::{Advance, CachedExpansion, CompiledIndex, IndexCell};
use crate::precedence::ConflictStrategy;
use crate::provenance::{env_fingerprint, FlightRecorder, ProvenanceRecord};
use crate::role::{RoleCatalog, RoleKind};
use crate::rule::{Effect, RoleSpec, Rule, RuleDef, TransactionSpec};
use crate::session::SessionManager;
use crate::sod::{SodConstraint, SodKind, SodPolicy};
use crate::telemetry::{
    DecisionTrace, MetricsRegistry, MetricsSnapshot, NoTrace, Stage, TraceCollector, TraceSink,
};

/// Who is asking: the three authentication postures GRBAC supports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Actor {
    /// An open session; only the session's *active* roles apply
    /// (role activation, §4.1.2), all at full confidence.
    Session(SessionId),
    /// A fully-trusted subject (e.g. explicit login); the subject's
    /// entire authorized role set applies at full confidence.
    Subject(SubjectId),
    /// A sensor-authenticated requester (§5.2): roles and confidences
    /// come from the [`AuthContext`] built by the authenticator.
    Sensed(AuthContext),
}

/// One access request, ready for mediation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccessRequest {
    /// The requester.
    pub actor: Actor,
    /// The transaction being attempted.
    pub transaction: TransactionId,
    /// The target object.
    pub object: ObjectId,
    /// The environment roles active at request time.
    pub environment: EnvironmentSnapshot,
    /// Optional timestamp for the audit log (virtual seconds).
    pub timestamp: Option<u64>,
    /// Freshness of the environment snapshot, as reported by the
    /// sensing layer. Anything other than [`EnvHealth::Fresh`] engages
    /// the engine's [`DegradedMode`] policy. Defaults to fresh (also
    /// for requests serialized before the field existed).
    #[serde(default)]
    pub env_health: EnvHealth,
}

impl AccessRequest {
    /// Builds a request from a fully-trusted subject.
    #[must_use]
    pub fn by_subject(
        subject: SubjectId,
        transaction: TransactionId,
        object: ObjectId,
        environment: EnvironmentSnapshot,
    ) -> Self {
        Self {
            actor: Actor::Subject(subject),
            transaction,
            object,
            environment,
            timestamp: None,
            env_health: EnvHealth::Fresh,
        }
    }

    /// Builds a request from an open session.
    #[must_use]
    pub fn by_session(
        session: SessionId,
        transaction: TransactionId,
        object: ObjectId,
        environment: EnvironmentSnapshot,
    ) -> Self {
        Self {
            actor: Actor::Session(session),
            transaction,
            object,
            environment,
            timestamp: None,
            env_health: EnvHealth::Fresh,
        }
    }

    /// Builds a request from sensed (partially-authenticated) evidence.
    #[must_use]
    pub fn by_sensed(
        context: AuthContext,
        transaction: TransactionId,
        object: ObjectId,
        environment: EnvironmentSnapshot,
    ) -> Self {
        Self {
            actor: Actor::Sensed(context),
            transaction,
            object,
            environment,
            timestamp: None,
            env_health: EnvHealth::Fresh,
        }
    }

    /// Attaches an audit timestamp (builder style).
    #[must_use]
    pub fn at(mut self, timestamp: u64) -> Self {
        self.timestamp = Some(timestamp);
        self
    }

    /// Declares the freshness of the attached environment snapshot
    /// (builder style). The sensing layer sets this from its
    /// `PollOutcome`; anything other than [`EnvHealth::Fresh`] engages
    /// the engine's [`DegradedMode`].
    #[must_use]
    pub fn with_env_health(mut self, health: EnvHealth) -> Self {
        self.env_health = health;
        self
    }
}

/// The GRBAC policy engine: catalogs, policy and mediation in one value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Grbac {
    roles: RoleCatalog,
    entities: EntityCatalog,
    assignments: Assignments,
    sod: SodPolicy,
    sessions: SessionManager,
    rules: Vec<Rule>,
    rule_alloc: IdAllocator,
    strategy: ConflictStrategy,
    default_effect: Effect,
    default_min_confidence: Confidence,
    audit: AuditLog,
    /// Degraded-mode policy: staleness budgets and the posture applied
    /// when a request's environment snapshot is not fresh (defaults to
    /// fail-closed with zero budget).
    #[serde(default)]
    degraded: DegradedMode,
    #[serde(default)]
    delegation: crate::delegation::DelegationState,
    /// Bumped by every mutation that can change a decision (roles,
    /// hierarchy edges, assignments, rules); keys the compiled index.
    #[serde(skip)]
    generation: u64,
    /// Bounded window of typed deltas, one per generation bump, letting
    /// the next mediation patch the compiled index incrementally
    /// instead of rebuilding it (derived-state bookkeeping — never
    /// serialized; a fresh engine starts with an empty window and the
    /// first mediation builds from scratch anyway).
    #[serde(skip)]
    deltas: DeltaLog,
    /// Lazily-built compiled mediation index (derived state — never
    /// serialized, rebuilt on demand after deserialization or cloning).
    #[serde(skip)]
    index: IndexCell,
    /// Telemetry registry (operational state — never serialized; a
    /// deserialized engine starts with fresh zeroes). Engine clones
    /// share the same registry, as do `decide_batch` workers and any
    /// environment providers attached via
    /// `EnvironmentRoleProvider::attach_metrics`.
    #[serde(skip)]
    metrics: Arc<MetricsRegistry>,
    /// Decision flight recorder (operational state — never serialized;
    /// a deserialized engine starts with an empty ring). Shared by
    /// engine clones and `decide_batch` workers like the registry.
    #[serde(skip)]
    recorder: Arc<FlightRecorder>,
    /// Correlation-id mint (operational state — never serialized; a
    /// deserialized engine draws a fresh epoch, so ids from different
    /// engine lifetimes never collide). Shared by engine clones and
    /// `decide_batch` workers like the registry and the recorder.
    #[serde(skip)]
    decision_ids: Arc<DecisionIdMint>,
}

impl Default for Grbac {
    fn default() -> Self {
        Self::new()
    }
}

impl Grbac {
    /// Creates an empty engine with fail-safe defaults: deny-overrides
    /// conflict resolution, deny-by-default, and a full-confidence
    /// requirement (partial authentication is opt-in via
    /// [`set_default_min_confidence`](Self::set_default_min_confidence)).
    #[must_use]
    pub fn new() -> Self {
        Self {
            roles: RoleCatalog::new(),
            entities: EntityCatalog::new(),
            assignments: Assignments::new(),
            sod: SodPolicy::new(),
            sessions: SessionManager::new(),
            rules: Vec::new(),
            rule_alloc: IdAllocator::new(),
            strategy: ConflictStrategy::default(),
            default_effect: Effect::Deny,
            default_min_confidence: Confidence::FULL,
            audit: AuditLog::new(),
            degraded: DegradedMode::default(),
            delegation: crate::delegation::DelegationState::default(),
            generation: 0,
            deltas: DeltaLog::default(),
            index: IndexCell::default(),
            metrics: Arc::new(MetricsRegistry::new()),
            recorder: Arc::new(FlightRecorder::new()),
            decision_ids: Arc::new(DecisionIdMint::new()),
        }
    }

    /// Marks decision-relevant state as changed so the next mediation
    /// advances the compiled index, recording the typed delta that lets
    /// the advance patch only the touched shards instead of rebuilding.
    fn touch(&mut self, delta: PolicyDelta) {
        self.generation = self.generation.wrapping_add(1);
        self.deltas.record(self.generation, delta);
    }

    /// The compiled index for the current generation. A stale cached
    /// index is patched forward through the recorded deltas when the
    /// log still covers the gap and the damage is narrow enough;
    /// otherwise (cold cell, trimmed history, widened bitsets, wide
    /// damage) it is rebuilt from scratch.
    fn compiled(&self) -> Arc<CompiledIndex> {
        self.index
            .get_or_advance(self.generation, &self.metrics, |stale| {
                // Any install — patch or rebuild — is exactly when the
                // rule-id ceiling can have moved: pre-size the heat
                // table so steady-state decisions never widen it under
                // a write lock.
                self.metrics
                    .rule_heat
                    .reserve(self.rule_alloc.peek() as usize);
                if let Some((built_for, index)) = stale {
                    if let Some(deltas) = self.deltas.entries_between(built_for, self.generation) {
                        if let Some(next) =
                            index.apply_deltas(deltas, &self.roles, &self.assignments)
                        {
                            for delta in deltas {
                                self.metrics.index_delta_applied.add(delta.kind().slot(), 1);
                            }
                            return Advance::Patched(next);
                        }
                    }
                }
                Advance::Rebuilt(CompiledIndex::build(
                    &self.roles,
                    &self.assignments,
                    &self.rules,
                ))
            })
    }

    /// Forces the next mediation to rebuild the compiled index from
    /// scratch, discarding the incremental-delta history. Benchmark
    /// and test hook (the rebuild-vs-patch baseline in experiment
    /// E14); never needed in normal operation.
    #[doc(hidden)]
    pub fn invalidate_index(&mut self) {
        self.generation = self.generation.wrapping_add(1);
        self.deltas.reset(self.generation);
    }

    /// True when the current compiled index — however it was reached,
    /// through any schedule of incremental patches — is structurally
    /// identical to an index rebuilt from scratch at this generation.
    /// Test hook backing the delta differential suite.
    #[doc(hidden)]
    #[must_use]
    pub fn compiled_matches_rebuild(&self) -> bool {
        let current = self.compiled();
        let fresh = CompiledIndex::build(&self.roles, &self.assignments, &self.rules);
        *current == fresh
    }

    pub(crate) fn delegation(&self) -> &crate::delegation::DelegationState {
        &self.delegation
    }

    pub(crate) fn delegation_mut(&mut self) -> &mut crate::delegation::DelegationState {
        &mut self.delegation
    }

    // ------------------------------------------------------------------
    // Declaration API
    // ------------------------------------------------------------------

    /// Declares a subject role.
    ///
    /// # Errors
    ///
    /// [`GrbacError::DuplicateName`] on repeated names.
    pub fn declare_subject_role(&mut self, name: impl Into<String>) -> Result<RoleId> {
        let id = self.roles.declare(name, RoleKind::Subject)?;
        self.touch(PolicyDelta::RoleDeclared { role: id });
        Ok(id)
    }

    /// Declares an object role.
    ///
    /// # Errors
    ///
    /// [`GrbacError::DuplicateName`] on repeated names.
    pub fn declare_object_role(&mut self, name: impl Into<String>) -> Result<RoleId> {
        let id = self.roles.declare(name, RoleKind::Object)?;
        self.touch(PolicyDelta::RoleDeclared { role: id });
        Ok(id)
    }

    /// Declares an environment role.
    ///
    /// # Errors
    ///
    /// [`GrbacError::DuplicateName`] on repeated names.
    pub fn declare_environment_role(&mut self, name: impl Into<String>) -> Result<RoleId> {
        let id = self.roles.declare(name, RoleKind::Environment)?;
        self.touch(PolicyDelta::RoleDeclared { role: id });
        Ok(id)
    }

    /// Declares a subject (user).
    ///
    /// # Errors
    ///
    /// [`GrbacError::DuplicateName`] on repeated names.
    pub fn declare_subject(&mut self, name: impl Into<String>) -> Result<SubjectId> {
        self.entities.declare_subject(name)
    }

    /// Declares an object (resource).
    ///
    /// # Errors
    ///
    /// [`GrbacError::DuplicateName`] on repeated names.
    pub fn declare_object(&mut self, name: impl Into<String>) -> Result<ObjectId> {
        self.entities.declare_object(name)
    }

    /// Declares a transaction.
    ///
    /// # Errors
    ///
    /// [`GrbacError::DuplicateName`] on repeated names.
    pub fn declare_transaction(&mut self, name: impl Into<String>) -> Result<TransactionId> {
        self.entities.declare_transaction(name)
    }

    /// Records that `specific` is-a `general` (same-kind roles only).
    ///
    /// # Errors
    ///
    /// See [`RoleCatalog::specialize`].
    pub fn specialize(&mut self, specific: RoleId, general: RoleId) -> Result<()> {
        self.roles.specialize(specific, general)?;
        let kind = self.roles.role(specific)?.kind();
        self.touch(PolicyDelta::EdgeAdded { kind, specific });
        Ok(())
    }

    // ------------------------------------------------------------------
    // Assignment API
    // ------------------------------------------------------------------

    /// Adds `role` to a subject's authorized role set, enforcing static
    /// separation of duty over the hierarchy-expanded result.
    ///
    /// # Errors
    ///
    /// Unknown ids, kind mismatches, or [`GrbacError::SodViolation`].
    pub fn assign_subject_role(&mut self, subject: SubjectId, role: RoleId) -> Result<()> {
        self.entities.subject(subject)?;
        self.roles.expect_kind(role, RoleKind::Subject)?;
        let held = self.roles.expand(&self.assignments.subject_roles(subject));
        for candidate in self.roles.closure(role)? {
            self.sod.check(SodKind::Static, &held, candidate)?;
        }
        self.assignments.assign_subject(subject, role);
        // A direct assignment takes ownership away from any earlier
        // delegation-created assignment of the same pair, so revoking
        // that delegation later will not strip an administrator grant.
        self.delegation.release_ownership(subject, role);
        self.touch(PolicyDelta::SubjectAssignment { subject });
        Ok(())
    }

    /// Removes `role` from a subject's authorized role set.
    ///
    /// # Errors
    ///
    /// Unknown subject or role.
    pub fn revoke_subject_role(&mut self, subject: SubjectId, role: RoleId) -> Result<()> {
        self.entities.subject(subject)?;
        self.roles.role(role)?;
        self.assignments.revoke_subject(subject, role);
        // Revocation is immediate: open sessions lose any activation no
        // longer backed by the (hierarchy-expanded) authorized set —
        // otherwise a revoked resident would keep access through a
        // session opened earlier.
        let authorized = self.roles.expand(&self.assignments.subject_roles(subject));
        for session in self.sessions.sessions_of_mut(subject) {
            let orphaned: Vec<RoleId> = session
                .active_roles()
                .iter()
                .copied()
                .filter(|r| !authorized.contains(r))
                .collect();
            for r in orphaned {
                session.deactivate(r);
            }
        }
        self.touch(PolicyDelta::SubjectAssignment { subject });
        Ok(())
    }

    /// Maps an object into an object role.
    ///
    /// # Errors
    ///
    /// Unknown ids or kind mismatch.
    pub fn assign_object_role(&mut self, object: ObjectId, role: RoleId) -> Result<()> {
        self.entities.object(object)?;
        self.roles.expect_kind(role, RoleKind::Object)?;
        self.assignments.assign_object(object, role);
        self.touch(PolicyDelta::ObjectAssignment { object });
        Ok(())
    }

    /// Removes an object from an object role.
    ///
    /// # Errors
    ///
    /// Unknown object or role.
    pub fn revoke_object_role(&mut self, object: ObjectId, role: RoleId) -> Result<()> {
        self.entities.object(object)?;
        self.roles.role(role)?;
        self.assignments.revoke_object(object, role);
        self.touch(PolicyDelta::ObjectAssignment { object });
        Ok(())
    }

    // ------------------------------------------------------------------
    // Separation of duty
    // ------------------------------------------------------------------

    /// Registers a separation-of-duty constraint after verifying that no
    /// existing assignment (static) or session (dynamic) already violates
    /// it.
    ///
    /// # Errors
    ///
    /// [`GrbacError::UnknownRole`] for undeclared roles, or
    /// [`GrbacError::SodViolation`] naming the conflicting state.
    pub fn add_sod_constraint(&mut self, constraint: SodConstraint) -> Result<()> {
        for &role in constraint.roles() {
            self.roles.role(role)?;
        }
        match constraint.kind() {
            SodKind::Static => {
                for subject in self.entities.subjects() {
                    let held = self
                        .roles
                        .expand(&self.assignments.subject_roles(subject.id()));
                    if constraint.violated_by_set(&held) {
                        return Err(GrbacError::SodViolation {
                            constraint: constraint.name().to_owned(),
                            role: *constraint
                                .roles()
                                .intersection(&held)
                                .next()
                                .expect("violating set intersects"),
                        });
                    }
                }
            }
            SodKind::Dynamic => {
                for session in self.sessions.iter() {
                    let active = self.roles.expand(session.active_roles());
                    if constraint.violated_by_set(&active) {
                        return Err(GrbacError::SodViolation {
                            constraint: constraint.name().to_owned(),
                            role: *constraint
                                .roles()
                                .intersection(&active)
                                .next()
                                .expect("violating set intersects"),
                        });
                    }
                }
            }
        }
        self.sod.add(constraint);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Sessions and activation
    // ------------------------------------------------------------------

    /// Opens a session for `subject` with no active roles.
    ///
    /// # Errors
    ///
    /// [`GrbacError::UnknownSubject`].
    pub fn open_session(&mut self, subject: SubjectId) -> Result<SessionId> {
        self.entities.subject(subject)?;
        Ok(self.sessions.open(subject))
    }

    /// Opens a session and activates the subject's entire authorized
    /// role set (convenience for policies that do not use activation).
    ///
    /// # Errors
    ///
    /// [`GrbacError::UnknownSubject`], or any activation error (e.g.
    /// dynamic SoD) encountered while activating.
    pub fn open_session_with_all_roles(&mut self, subject: SubjectId) -> Result<SessionId> {
        let session = self.open_session(subject)?;
        for role in self.assignments.subject_roles(subject) {
            self.activate_role(session, role)?;
        }
        Ok(session)
    }

    /// Activates a role in a session. The role must be in the subject's
    /// authorized set (directly or through the hierarchy), and the
    /// activation must satisfy every dynamic SoD constraint over the
    /// hierarchy-expanded active set.
    ///
    /// # Errors
    ///
    /// [`GrbacError::UnknownSession`], [`GrbacError::RoleNotAuthorized`],
    /// or [`GrbacError::SodViolation`].
    pub fn activate_role(&mut self, session: SessionId, role: RoleId) -> Result<()> {
        self.roles.expect_kind(role, RoleKind::Subject)?;
        let subject = self.sessions.session(session)?.subject();
        let authorized = self.roles.expand(&self.assignments.subject_roles(subject));
        if !authorized.contains(&role) {
            return Err(GrbacError::RoleNotAuthorized { subject, role });
        }
        let active = self
            .roles
            .expand(self.sessions.session(session)?.active_roles());
        for candidate in self.roles.closure(role)? {
            self.sod.check(SodKind::Dynamic, &active, candidate)?;
        }
        self.sessions.session_mut(session)?.activate(role);
        Ok(())
    }

    /// Deactivates a role in a session (a no-op if it was not active).
    ///
    /// # Errors
    ///
    /// [`GrbacError::UnknownSession`].
    pub fn deactivate_role(&mut self, session: SessionId, role: RoleId) -> Result<()> {
        self.sessions.session_mut(session)?.deactivate(role);
        Ok(())
    }

    /// Closes a session.
    ///
    /// # Errors
    ///
    /// [`GrbacError::UnknownSession`].
    pub fn close_session(&mut self, session: SessionId) -> Result<()> {
        self.sessions
            .close(session)
            .map(|_| ())
            .ok_or(GrbacError::UnknownSession(session))
    }

    // ------------------------------------------------------------------
    // Rules
    // ------------------------------------------------------------------

    /// Validates and registers a rule; returns its id. Rules are matched
    /// in registration order (relevant to the first-applicable strategy).
    ///
    /// # Errors
    ///
    /// Unknown roles/transactions or role-kind mismatches in any rule
    /// position.
    pub fn add_rule(&mut self, def: RuleDef) -> Result<RuleId> {
        if let RoleSpec::Is(r) = def.subject_role {
            self.roles.expect_kind(r, RoleKind::Subject)?;
        }
        if let RoleSpec::Is(r) = def.object_role {
            self.roles.expect_kind(r, RoleKind::Object)?;
        }
        for &r in &def.environment_roles {
            self.roles.expect_kind(r, RoleKind::Environment)?;
        }
        if let TransactionSpec::Is(t) = def.transaction {
            self.entities.transaction(t)?;
        }
        let id = RuleId::from_raw(self.rule_alloc.next());
        self.rules.push(Rule::from_def(id, def));
        let position = (self.rules.len() - 1) as u32;
        let delta = self.rules[position as usize].added_delta(position);
        self.touch(delta);
        Ok(id)
    }

    /// Removes a rule by id. Returns true if it existed.
    pub fn remove_rule(&mut self, id: RuleId) -> bool {
        let Some(position) = self.rules.iter().position(|r| r.id() == id) else {
            return false;
        };
        let delta = self.rules[position].removed_delta(position as u32);
        self.rules.remove(position);
        self.touch(delta);
        true
    }

    /// The registered rules in policy order.
    #[must_use]
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    // ------------------------------------------------------------------
    // Configuration
    // ------------------------------------------------------------------

    /// Sets the conflict-resolution strategy.
    pub fn set_strategy(&mut self, strategy: ConflictStrategy) {
        self.strategy = strategy;
    }

    /// The current conflict-resolution strategy.
    #[must_use]
    pub fn strategy(&self) -> ConflictStrategy {
        self.strategy
    }

    /// Sets the decision when no rule matches (default: Deny).
    pub fn set_default_effect(&mut self, effect: Effect) {
        self.default_effect = effect;
    }

    /// The decision when no rule matches.
    #[must_use]
    pub fn default_effect(&self) -> Effect {
        self.default_effect
    }

    /// Sets the engine-wide confidence threshold applied to Permit rules
    /// that do not carry their own (§5.2's "90% accuracy" policy).
    pub fn set_default_min_confidence(&mut self, confidence: Confidence) {
        self.default_min_confidence = confidence;
    }

    /// The engine-wide confidence threshold.
    #[must_use]
    pub fn default_min_confidence(&self) -> Confidence {
        self.default_min_confidence
    }

    /// Sets the degraded-mode policy applied when a request's
    /// environment snapshot is not fresh (see [`DegradedMode`]). The
    /// default is fail-closed with a zero staleness budget.
    ///
    /// # Examples
    ///
    /// ```
    /// use grbac_core::prelude::*;
    ///
    /// let mut g = Grbac::new();
    /// let child = g.declare_subject_role("child")?;
    /// let toys = g.declare_object_role("toys")?;
    /// let daytime = g.declare_environment_role("daytime")?;
    /// let play = g.declare_transaction("play")?;
    /// let alice = g.declare_subject("alice")?;
    /// g.assign_subject_role(alice, child)?;
    /// let ball = g.declare_object("ball")?;
    /// g.assign_object_role(ball, toys)?;
    /// g.add_rule(
    ///     RuleDef::permit()
    ///         .subject_role(child)
    ///         .object_role(toys)
    ///         .transaction(play)
    ///         .when(daytime),
    /// )?;
    ///
    /// // Tolerate ten minutes of staleness; past that, fail closed.
    /// g.set_degraded_mode(DegradedMode::fail_closed().with_default_budget(600));
    ///
    /// let env = EnvironmentSnapshot::from_active([daytime]);
    /// let fresh = AccessRequest::by_subject(alice, play, ball, env.clone());
    /// assert!(g.check(&fresh)?.is_permitted());
    ///
    /// // An hour-old snapshot is over budget: roles drop, access denies,
    /// // and the decision says why.
    /// let stale = AccessRequest::by_subject(alice, play, ball, env)
    ///     .with_env_health(EnvHealth::Stale { age: 3_600 });
    /// let decision = g.check(&stale)?;
    /// assert!(!decision.is_permitted());
    /// assert!(decision.is_degraded());
    /// # Ok::<(), grbac_core::error::GrbacError>(())
    /// ```
    pub fn set_degraded_mode(&mut self, mode: DegradedMode) {
        self.degraded = mode;
    }

    /// The current degraded-mode policy.
    #[must_use]
    pub fn degraded_mode(&self) -> &DegradedMode {
        &self.degraded
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The role catalog (roles and hierarchies).
    #[must_use]
    pub fn roles(&self) -> &RoleCatalog {
        &self.roles
    }

    /// The entity catalog (subjects, objects, transactions).
    #[must_use]
    pub fn entities(&self) -> &EntityCatalog {
        &self.entities
    }

    /// The assignment tables.
    #[must_use]
    pub fn assignments(&self) -> &Assignments {
        &self.assignments
    }

    /// The separation-of-duty policy.
    #[must_use]
    pub fn sod(&self) -> &SodPolicy {
        &self.sod
    }

    /// The open sessions.
    #[must_use]
    pub fn sessions(&self) -> &SessionManager {
        &self.sessions
    }

    /// The audit log.
    #[must_use]
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }

    /// Clears retained audit records (totals are preserved).
    pub fn clear_audit(&mut self) {
        self.audit.clear();
        self.sync_audit_gauges();
    }

    /// The engine's telemetry registry.
    ///
    /// Clone the `Arc` to publish external counters (environment
    /// providers, workload drivers) into the same registry the engine
    /// updates during mediation.
    #[must_use]
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Replaces the telemetry registry, e.g. to aggregate several
    /// engines into one registry. Readings accumulated in the old
    /// registry are left behind, not transferred.
    pub fn set_metrics(&mut self, metrics: Arc<MetricsRegistry>) {
        self.metrics = metrics;
    }

    /// The decision flight recorder: every mediated decision
    /// ([`decide`](Self::decide), [`decide_traced`](Self::decide_traced),
    /// [`decide_batch`](Self::decide_batch), and the [`check`](Self::check)
    /// family on top of them) appends a
    /// [`ProvenanceRecord`] here. Engine clones and batch workers share
    /// the same ring. The reference path
    /// ([`decide_naive`](Self::decide_naive)) never records, so
    /// forensic replays do not pollute the evidence they examine.
    #[must_use]
    pub fn flight_recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// Replaces the flight recorder with a fresh one of the given
    /// capacity (0 disables provenance recording). Existing records
    /// stay in the old ring — clone the `Arc` from
    /// [`flight_recorder`](Self::flight_recorder) first to keep them.
    /// Engine clones made before this call keep recording into the old
    /// ring.
    pub fn set_flight_recorder_capacity(&mut self, capacity: usize) {
        self.recorder = Arc::new(FlightRecorder::with_capacity(capacity));
    }

    /// The current policy generation: bumped by every
    /// decision-relevant mutation (roles, hierarchy edges, assignments,
    /// rules). Stamped into every [`ProvenanceRecord`] so forensic
    /// replay can tell whether the policy moved under a recorded
    /// decision.
    #[must_use]
    pub fn policy_generation(&self) -> u64 {
        self.generation
    }

    /// A point-in-time snapshot of the registry with per-transaction
    /// series labelled by declared transaction names (raw ids for
    /// transactions no longer in the catalog) and per-rule heat series
    /// labelled by rule names (`rule<id>` for anonymous or removed
    /// rules). Export it with a
    /// [`PrometheusExporter`](crate::telemetry::PrometheusExporter) or
    /// [`JsonExporter`](crate::telemetry::JsonExporter), or diff two
    /// snapshots with [`MetricsSnapshot::delta`].
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot_with_labels(
            |raw| {
                self.entities
                    .transaction(TransactionId::from_raw(raw))
                    .map_or_else(|_| raw.to_string(), |t| t.name().to_owned())
            },
            |raw| self.rule_label(RuleId::from_raw(raw)),
        )
    }

    /// A stable human label for a rule: its declared name when it has
    /// one, its id rendering (`rule<id>`) otherwise.
    #[must_use]
    pub fn rule_label(&self, rule: RuleId) -> String {
        self.rules
            .iter()
            .find(|r| r.id() == rule)
            .and_then(Rule::name)
            .map_or_else(|| rule.to_string(), str::to_owned)
    }

    /// A point-in-time copy of the per-rule heat table (matches, wins
    /// by effect, last-fired generation — see
    /// [`RuleHeat`](crate::telemetry::RuleHeat)). Join it with the
    /// static analysis report via
    /// [`analysis::health_report`](crate::analysis::health_report).
    #[must_use]
    pub fn heat_snapshot(&self) -> crate::telemetry::RuleHeatSnapshot {
        self.metrics.rule_heat.snapshot()
    }

    /// Mirrors the audit log's running totals into the registry's
    /// gauges, so exporters see audit state that survives eviction and
    /// [`clear_audit`](Self::clear_audit) just like the log's own
    /// counters do.
    fn sync_audit_gauges(&self) {
        self.metrics
            .audit_permit_total
            .set(self.audit.permit_count());
        self.metrics.audit_deny_total.set(self.audit.deny_count());
        self.metrics.audit_evictions.set(self.audit.evicted_count());
        self.metrics.audit_retained.set(self.audit.len() as u64);
    }

    // ------------------------------------------------------------------
    // Mediation
    // ------------------------------------------------------------------

    /// Mediates a request without recording it (pure; `&self`).
    ///
    /// Runs on the compiled mediation index: candidate rules come from
    /// the transaction-keyed rule index, role expansions from cached
    /// bitset closures. The outcome is identical to the retained
    /// reference scan ([`decide_naive`](Self::decide_naive)) — the
    /// `prop_index` differential suite holds the two paths equal.
    ///
    /// # Errors
    ///
    /// Unknown session/subject/object/transaction ids in the request.
    pub fn decide(&self, request: &AccessRequest) -> Result<Decision> {
        let index = self.compiled();
        self.decide_recorded(request, &index)
    }

    /// Mediates a request and records a stage-by-stage
    /// [`DecisionTrace`] (per-stage wall-clock nanoseconds and item
    /// counts) alongside the decision.
    ///
    /// The traced path is the *same* monomorphized mediation code as
    /// [`decide`](Self::decide) — only the trace sink differs — so
    /// the decision is identical on identical input; the
    /// `prop_telemetry` property suite holds the two equal.
    ///
    /// # Errors
    ///
    /// Same as [`decide`](Self::decide).
    pub fn decide_traced(&self, request: &AccessRequest) -> Result<(Decision, DecisionTrace)> {
        let index = self.compiled();
        let id = self.decision_ids.mint();
        let started = Instant::now();
        let mut sink = TraceCollector::default();
        let decision = self
            .decide_with_index(request, &index, &mut sink)?
            .with_decision_id(id);
        let mut trace = sink.finish(started);
        trace.decision_id = id;
        self.metrics.note_decision(id);
        self.metrics.observe_trace(&trace);
        self.record_provenance(request, &decision, Some(&trace));
        self.metrics
            .events
            .publish_decision(id, decision.effect(), decision.degraded().is_some());
        Ok((decision, trace))
    }

    /// Mediates a batch of requests against one snapshot of the
    /// compiled index, amortizing the generation check and (with the
    /// `parallel` feature) fanning the work across OS threads.
    ///
    /// Results are returned in request order; each element is exactly
    /// what [`decide`](Self::decide) would have returned for that
    /// request.
    #[must_use]
    pub fn decide_batch(&self, requests: &[AccessRequest]) -> Vec<Result<Decision>> {
        let index = self.compiled();
        self.metrics.batch_calls.inc();
        self.metrics.batch_size.observe(requests.len() as u64);
        #[cfg(feature = "parallel")]
        {
            let threads =
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
            // Below ~32 requests the spawn overhead dominates.
            if threads > 1 && requests.len() >= 32 {
                let chunk = requests.len().div_ceil(threads);
                let index = &index;
                return std::thread::scope(|scope| {
                    let workers: Vec<_> = requests
                        .chunks(chunk)
                        .map(|part| {
                            scope.spawn(move || {
                                part.iter()
                                    .map(|request| self.decide_recorded(request, index))
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    workers
                        .into_iter()
                        .flat_map(|worker| worker.join().expect("decide worker panicked"))
                        .collect()
                });
            }
        }
        requests
            .iter()
            .map(|request| self.decide_recorded(request, &index))
            .collect()
    }

    /// The recorded mediation path shared by [`decide`](Self::decide)
    /// and [`decide_batch`](Self::decide_batch): runs the decision —
    /// with a [`TraceCollector`] when this call won the latency sample,
    /// with [`NoTrace`] otherwise — then feeds the continuous-profiling
    /// series and the flight recorder. Sampling the *trace* (not just a
    /// timer) is what keeps the per-stage quantile sketches fed without
    /// taxing the common path with clock reads.
    fn decide_recorded(&self, request: &AccessRequest, index: &CompiledIndex) -> Result<Decision> {
        let id = self.decision_ids.mint();
        if let Some(started) = self.metrics.decide_timer() {
            let mut sink = TraceCollector::default();
            let result = self
                .decide_with_index(request, index, &mut sink)
                .map(|decision| decision.with_decision_id(id));
            let mut trace = sink.finish(started);
            trace.decision_id = id;
            if let Ok(decision) = &result {
                self.metrics.note_decision(id);
                self.metrics.observe_trace(&trace);
                self.record_provenance(request, decision, Some(&trace));
                self.metrics.events.publish_decision(
                    id,
                    decision.effect(),
                    decision.degraded().is_some(),
                );
            }
            result
        } else {
            let result = self
                .decide_with_index(request, index, &mut NoTrace)
                .map(|decision| decision.with_decision_id(id));
            if let Ok(decision) = &result {
                self.metrics.note_decision(id);
                self.record_provenance(request, decision, None);
                self.metrics.events.publish_decision(
                    id,
                    decision.effect(),
                    decision.degraded().is_some(),
                );
            }
            result
        }
    }

    /// Appends one decision to the flight recorder (no-op when the
    /// recorder capacity is 0).
    fn record_provenance(
        &self,
        request: &AccessRequest,
        decision: &Decision,
        trace: Option<&DecisionTrace>,
    ) {
        if !self.recorder.is_enabled() {
            return;
        }
        let explanation = decision.explanation();
        let stage_nanos = trace.map(|trace| {
            let mut nanos = [0u64; 5];
            for record in &trace.stages {
                if let Some(slot) = Stage::ALL.iter().position(|&s| s == record.stage) {
                    nanos[slot] = record.nanos;
                }
            }
            nanos
        });
        self.recorder.record(ProvenanceRecord {
            // seq / writer / writer_seq are assigned by the recorder.
            seq: 0,
            writer: 0,
            writer_seq: 0,
            decision_id: decision.decision_id(),
            actor: request.actor.clone(),
            transaction: request.transaction,
            object: request.object,
            timestamp: request.timestamp,
            env_roles: request.environment.active().iter().copied().collect(),
            env_hash: env_fingerprint(&request.environment),
            env_health: request.env_health,
            generation: self.generation,
            effect: decision.effect(),
            winning_rule: decision.winning_rule(),
            matched_rules: explanation.matched.iter().map(|m| m.rule).collect(),
            subject_role_count: u32::try_from(explanation.subject_roles.len()).unwrap_or(u32::MAX),
            degraded: decision.degraded().copied(),
            stage_nanos,
            total_nanos: trace.map(|trace| trace.total_nanos),
        });
    }

    /// The compiled mediation path shared by [`decide`](Self::decide),
    /// [`decide_batch`](Self::decide_batch) and
    /// [`decide_traced`](Self::decide_traced): runs [`Self::mediate`]
    /// and publishes the outcome (effect counters, per-transaction
    /// rule-match counts) into the registry. Latency observation lives
    /// in [`Self::decide_recorded`], which decides per call whether to
    /// trace. All counters are atomics, so parallel batch workers
    /// record exactly what sequential calls would.
    fn decide_with_index<S: TraceSink>(
        &self,
        request: &AccessRequest,
        index: &CompiledIndex,
        sink: &mut S,
    ) -> Result<Decision> {
        let result = self.mediate(request, index, sink);
        match &result {
            Ok(decision) => {
                match decision.effect() {
                    Effect::Permit => self.metrics.decisions_permit.inc(),
                    Effect::Deny => self.metrics.decisions_deny.inc(),
                }
                self.metrics.rule_matches_by_transaction.add(
                    request.transaction.as_raw(),
                    decision.explanation().matched.len() as u64,
                );
                self.metrics.rule_heat.record_decision(
                    decision
                        .explanation()
                        .matched
                        .iter()
                        .map(|m| m.rule.as_raw()),
                    decision.winning_rule().map(RuleId::as_raw),
                    decision.effect() == Effect::Permit,
                    self.generation,
                );
                if let Some(reason) = decision.degraded() {
                    self.metrics.decisions_degraded.inc();
                    if let DegradedReason::StaleRolesDropped { dropped, .. } = reason {
                        self.metrics
                            .env_roles_dropped_stale
                            .add(u64::from(*dropped));
                    }
                }
            }
            Err(_) => self.metrics.decide_errors.inc(),
        }
        result
    }

    /// Applies the degraded-mode policy to a request's environment
    /// snapshot: the effective active set, the subject-confidence decay
    /// multiplier, and the annotation (if any) the decision will carry.
    ///
    /// Shared by the compiled path ([`Self::mediate`]) and the
    /// reference scan ([`Self::decide_naive`]) so the differential
    /// property suite holds under degraded inputs too. Fresh requests
    /// borrow their snapshot untouched and decay by exactly 1.0, so the
    /// fast path is unchanged.
    fn degraded_env<'r>(
        &self,
        request: &'r AccessRequest,
    ) -> (
        Cow<'r, EnvironmentSnapshot>,
        Confidence,
        Option<DegradedReason>,
    ) {
        let drop_over_budget = |age: u64| {
            let kept: EnvironmentSnapshot = request
                .environment
                .active()
                .iter()
                .copied()
                .filter(|&role| age <= self.degraded.budget(role))
                .collect();
            let dropped = (request.environment.len() - kept.len()) as u32;
            (
                Cow::Owned(kept),
                Confidence::FULL,
                Some(DegradedReason::StaleRolesDropped { age, dropped }),
            )
        };
        match request.env_health {
            EnvHealth::Fresh => (Cow::Borrowed(&request.environment), Confidence::FULL, None),
            EnvHealth::Stale { age } => {
                let within_budget = request
                    .environment
                    .active()
                    .iter()
                    .all(|&role| age <= self.degraded.budget(role));
                if within_budget {
                    // Budgets exist to absorb exactly this much
                    // staleness; the decision is not degraded.
                    return (Cow::Borrowed(&request.environment), Confidence::FULL, None);
                }
                match self.degraded.posture() {
                    DegradedPosture::FailClosed => drop_over_budget(age),
                    DegradedPosture::FailOpen { .. } => {
                        let decay = self.degraded.decay_at(age);
                        (
                            Cow::Borrowed(&request.environment),
                            decay,
                            Some(DegradedReason::StaleDecayed { age, decay }),
                        )
                    }
                    DegradedPosture::LastKnownGood { max_age } => {
                        if age <= max_age {
                            (
                                Cow::Borrowed(&request.environment),
                                Confidence::FULL,
                                Some(DegradedReason::LastKnownGood { age }),
                            )
                        } else {
                            drop_over_budget(age)
                        }
                    }
                }
            }
            EnvHealth::Unavailable => {
                let environment = match self.degraded.posture() {
                    // No data and fail-closed: no environment roles.
                    DegradedPosture::FailClosed => Cow::Owned(EnvironmentSnapshot::new()),
                    // The other postures trust whatever snapshot the
                    // caller could still attach (possibly empty).
                    DegradedPosture::FailOpen { .. } | DegradedPosture::LastKnownGood { .. } => {
                        Cow::Borrowed(&request.environment)
                    }
                };
                (
                    environment,
                    Confidence::FULL,
                    Some(DegradedReason::EnvUnavailable),
                )
            }
        }
    }

    /// The mediation algorithm itself, generic over a [`TraceSink`]:
    /// with [`NoTrace`] every `enter`/`exit` call compiles away, with a
    /// [`TraceCollector`] the same code yields a [`DecisionTrace`] —
    /// the traced and untraced paths cannot diverge.
    fn mediate<S: TraceSink>(
        &self,
        request: &AccessRequest,
        index: &CompiledIndex,
        sink: &mut S,
    ) -> Result<Decision> {
        self.entities.transaction(request.transaction)?;
        self.entities.object(request.object)?;

        // 1. The requester's roles: cached expansions for trusted
        //    subjects, per-request closure merges for sessions and
        //    sensed contexts.
        let span = sink.enter(Stage::SubjectExpansion);
        let subject = self.subject_view(&request.actor, index)?;
        sink.exit(
            Stage::SubjectExpansion,
            span,
            if S::ACTIVE {
                subject.role_count() as u64
            } else {
                0
            },
        );

        // 2. Object roles from the cache; environment expanded per
        //    request (activation state is not generation-tracked).
        let span = sink.enter(Stage::ObjectExpansion);
        let object = index.object(request.object);
        self.metrics.closure_cache_hits.inc();
        sink.exit(
            Stage::ObjectExpansion,
            span,
            if S::ACTIVE {
                object.expanded.len() as u64
            } else {
                0
            },
        );
        let span = sink.enter(Stage::EnvironmentEvaluation);
        let (effective_env, decay, degraded_reason) = self.degraded_env(request);
        let environment = index
            .closures
            .expand(effective_env.active().iter().copied());
        self.metrics.closure_cache_misses.inc();
        sink.exit(
            Stage::EnvironmentEvaluation,
            span,
            if S::ACTIVE {
                environment.expanded.len() as u64
            } else {
                0
            },
        );

        // 3. Match candidate rules in policy order.
        let span = sink.enter(Stage::CandidateMerge);
        let candidates = index.rules.candidates(request.transaction);
        let candidate_count = candidates.len() as u64;
        let mut matched = Vec::with_capacity(candidates.len());
        let mut confidence_near_miss: Option<(Confidence, Confidence)> = None;
        for position in candidates {
            let rule = &self.rules[position];
            let object_distance = match rule.object_role() {
                RoleSpec::Any => usize::MAX,
                RoleSpec::Is(ro) => {
                    if !object.contains(ro) {
                        continue;
                    }
                    index.closures.min_distance(&object.direct, ro)
                }
            };
            if !environment.covers(index.rules.env_mask(position)) {
                continue;
            }
            let (subject_distance, subject_confidence) = match rule.subject_role() {
                RoleSpec::Any => (usize::MAX, Confidence::FULL),
                RoleSpec::Is(rs) => {
                    let Some(confidence) = subject.confidence(rs) else {
                        continue;
                    };
                    let confidence = confidence.scale(decay);
                    let distance = index.closures.min_distance(subject.direct(), rs);
                    if rule.effect() == Effect::Permit {
                        let required = rule.min_confidence().unwrap_or(self.default_min_confidence);
                        if !confidence.meets(required) {
                            // Track the closest miss for the explanation.
                            let better = confidence_near_miss
                                .is_none_or(|(_, achieved)| confidence > achieved);
                            if better {
                                confidence_near_miss = Some((required, confidence));
                            }
                            continue;
                        }
                    }
                    (distance, confidence)
                }
            };
            matched.push(MatchedRule {
                rule: rule.id(),
                effect: rule.effect(),
                position,
                subject_confidence,
                subject_distance,
                object_distance,
                constraint_count: rule.constraint_count(),
            });
        }
        sink.exit(Stage::CandidateMerge, span, candidate_count);

        // 4. Resolve conflicts and build the decision, reusing the
        //    already-expanded role sets for the explanation.
        let span = sink.enter(Stage::PrecedenceResolution);
        let winner = self.strategy.resolve(&matched);
        let (effect, winner_id, reason) = match winner {
            Some(w) => (w.effect, Some(w.rule), Reason::ResolvedBy(self.strategy)),
            None => {
                let reason = match confidence_near_miss {
                    Some((required, achieved)) => Reason::ConfidenceTooLow { required, achieved },
                    None => Reason::DefaultDecision,
                };
                (self.default_effect, None, reason)
            }
        };
        sink.exit(Stage::PrecedenceResolution, span, matched.len() as u64);
        Ok(Decision::new(
            effect,
            Explanation {
                subject_roles: subject.into_roles(),
                object_roles: object.expanded.clone(),
                environment_roles: environment.expanded,
                matched,
                winner: winner_id,
                reason,
            },
        )
        .with_degraded(degraded_reason))
    }

    /// Builds the requester's role view for the compiled path,
    /// mirroring [`subject_bindings`](Self::subject_bindings) exactly:
    /// fully-trusted actors see their (cached) expansion at full
    /// confidence, sensed actors get the identity/claim max-merge.
    fn subject_view<'a>(&self, actor: &Actor, index: &'a CompiledIndex) -> Result<SubjectView<'a>> {
        match actor {
            Actor::Session(id) => {
                let session = self.sessions.session(*id)?;
                // Activation state is per-session, not generation-keyed,
                // so the expansion is computed per request.
                self.metrics.closure_cache_misses.inc();
                Ok(SubjectView::Full(Cow::Owned(
                    index
                        .closures
                        .expand(session.active_roles().iter().copied()),
                )))
            }
            Actor::Subject(id) => {
                self.entities.subject(*id)?;
                self.metrics.closure_cache_hits.inc();
                Ok(SubjectView::Full(Cow::Borrowed(index.subject(*id))))
            }
            Actor::Sensed(ctx) => {
                self.metrics.closure_cache_misses.inc();
                let mut direct = BTreeSet::new();
                let mut conf = BTreeMap::new();
                // Identity-derived roles inherit the identity confidence.
                if let Some((subject, identity_conf)) = ctx.identity() {
                    if self.entities.subject(subject).is_ok() {
                        let cached = index.subject(subject);
                        direct.extend(cached.direct.iter().copied());
                        for &role in &cached.expanded {
                            upgrade(&mut conf, role, identity_conf);
                        }
                    }
                }
                // Direct role claims may exceed the identity confidence —
                // the §5.2 mechanism. Claims about undeclared roles are
                // ignored.
                for (role, claim_conf) in ctx.role_claims() {
                    if index.closures.is_declared(role) {
                        direct.insert(role);
                        for implied in index.closures.closure_members(role) {
                            upgrade(&mut conf, implied, claim_conf);
                        }
                    }
                }
                Ok(SubjectView::Mixed { direct, conf })
            }
        }
    }

    /// Reference mediation path: the original full-policy scan with
    /// per-request BFS expansions. Kept (not cfg-gated) so the
    /// differential property suite and the E5 benchmark can hold the
    /// compiled path to byte-identical decisions.
    ///
    /// # Errors
    ///
    /// Unknown session/subject/object/transaction ids in the request.
    pub fn decide_naive(&self, request: &AccessRequest) -> Result<Decision> {
        self.entities.transaction(request.transaction)?;
        self.entities.object(request.object)?;

        // 1. Establish the requester's roles: direct roles for
        //    specificity distances, expanded roles with confidences for
        //    matching.
        let (direct_subject, subject_conf) = self.subject_bindings(&request.actor)?;

        // 2. Object and environment role sets, hierarchy-expanded.
        let direct_object = self.assignments.object_roles(request.object);
        let object_roles = self.roles.expand(&direct_object);
        let (effective_env, decay, degraded_reason) = self.degraded_env(request);
        let environment_roles = self.roles.expand(effective_env.active());

        // 3. Match rules in policy order.
        let mut matched = Vec::new();
        let mut confidence_near_miss: Option<(Confidence, Confidence)> = None;
        for (position, rule) in self.rules.iter().enumerate() {
            if let TransactionSpec::Is(t) = rule.transaction() {
                if t != request.transaction {
                    continue;
                }
            }
            let object_distance = match rule.object_role() {
                RoleSpec::Any => usize::MAX,
                RoleSpec::Is(ro) => {
                    if !object_roles.contains(&ro) {
                        continue;
                    }
                    self.min_distance(RoleKind::Object, &direct_object, ro)
                }
            };
            if !rule
                .environment_roles()
                .iter()
                .all(|r| environment_roles.contains(r))
            {
                continue;
            }
            let (subject_distance, subject_confidence) = match rule.subject_role() {
                RoleSpec::Any => (usize::MAX, Confidence::FULL),
                RoleSpec::Is(rs) => {
                    let Some(&confidence) = subject_conf.get(&rs) else {
                        continue;
                    };
                    let confidence = confidence.scale(decay);
                    let distance = self.min_distance(RoleKind::Subject, &direct_subject, rs);
                    if rule.effect() == Effect::Permit {
                        let required = rule.min_confidence().unwrap_or(self.default_min_confidence);
                        if !confidence.meets(required) {
                            // Track the closest miss for the explanation.
                            let better = confidence_near_miss
                                .is_none_or(|(_, achieved)| confidence > achieved);
                            if better {
                                confidence_near_miss = Some((required, confidence));
                            }
                            continue;
                        }
                    }
                    (distance, confidence)
                }
            };
            matched.push(MatchedRule {
                rule: rule.id(),
                effect: rule.effect(),
                position,
                subject_confidence,
                subject_distance,
                object_distance,
                constraint_count: rule.constraint_count(),
            });
        }

        // 4. Resolve conflicts and build the decision.
        let winner = self.strategy.resolve(&matched);
        let (effect, winner_id, reason) = match winner {
            Some(w) => (w.effect, Some(w.rule), Reason::ResolvedBy(self.strategy)),
            None => {
                let reason = match confidence_near_miss {
                    Some((required, achieved)) => Reason::ConfidenceTooLow { required, achieved },
                    None => Reason::DefaultDecision,
                };
                (self.default_effect, None, reason)
            }
        };
        let subject_roles: BTreeSet<RoleId> = subject_conf.keys().copied().collect();
        Ok(Decision::new(
            effect,
            Explanation {
                subject_roles,
                object_roles,
                environment_roles,
                matched,
                winner: winner_id,
                reason,
            },
        )
        .with_degraded(degraded_reason))
    }

    /// Mediates a request and records the outcome in the audit log.
    ///
    /// # Errors
    ///
    /// Same as [`decide`](Self::decide).
    pub fn check(&mut self, request: &AccessRequest) -> Result<Decision> {
        let decision = self.decide(request)?;
        let subject = match &request.actor {
            Actor::Session(s) => Some(self.sessions.session(*s)?.subject()),
            Actor::Subject(s) => Some(*s),
            Actor::Sensed(ctx) => ctx.identity().map(|(s, _)| s),
        };
        self.audit.record_with_id(
            decision.decision_id(),
            subject,
            request.transaction,
            request.object,
            decision.effect(),
            decision.winning_rule(),
            request.timestamp,
            decision.degraded().copied(),
        );
        self.sync_audit_gauges();
        Ok(decision)
    }

    /// Mediates a batch and records every successful decision in the
    /// audit log, in request order — the batched equivalent of calling
    /// [`check`](Self::check) per request. Audit records, sequence
    /// numbers and metrics come out identical to the sequential path
    /// (including under the `parallel` feature: decision metrics are
    /// atomics updated by the workers, audit records are appended in
    /// request order afterwards).
    pub fn check_batch(&mut self, requests: &[AccessRequest]) -> Vec<Result<Decision>> {
        let decisions = self.decide_batch(requests);
        for (request, result) in requests.iter().zip(&decisions) {
            if let Ok(decision) = result {
                let subject = match &request.actor {
                    // The decide succeeded, so the session exists.
                    Actor::Session(s) => self.sessions.session(*s).ok().map(|sess| sess.subject()),
                    Actor::Subject(s) => Some(*s),
                    Actor::Sensed(ctx) => ctx.identity().map(|(s, _)| s),
                };
                self.audit.record_with_id(
                    decision.decision_id(),
                    subject,
                    request.transaction,
                    request.object,
                    decision.effect(),
                    decision.winning_rule(),
                    request.timestamp,
                    decision.degraded().copied(),
                );
            }
        }
        self.sync_audit_gauges();
        decisions
    }

    /// Renders a decision as plain language with all ids resolved to
    /// their declared names — the paper's usability requirement (§3)
    /// means a homeowner must be able to read *why* the system decided
    /// what it decided.
    #[must_use]
    pub fn render_decision(&self, decision: &Decision) -> String {
        let mut out = String::new();
        let explanation = decision.explanation();
        out.push_str(&format!("decision: {}\n", decision.effect()));
        out.push_str("requester holds: ");
        out.push_str(&self.role_name_list(&explanation.subject_roles));
        out.push('\n');
        out.push_str("object is: ");
        out.push_str(&self.role_name_list(&explanation.object_roles));
        out.push('\n');
        out.push_str("environment: ");
        out.push_str(&self.role_name_list(&explanation.environment_roles));
        out.push('\n');
        if explanation.matched.is_empty() {
            out.push_str("no rules matched\n");
        } else {
            out.push_str("rules matched:\n");
            for matched in &explanation.matched {
                let name = self
                    .rules
                    .iter()
                    .find(|r| r.id() == matched.rule)
                    .and_then(Rule::name)
                    .unwrap_or("(unnamed)");
                let marker = if Some(matched.rule) == explanation.winner {
                    " <- winner"
                } else {
                    ""
                };
                out.push_str(&format!(
                    "  [{}] {} {:?}{}\n",
                    matched.effect, matched.rule, name, marker
                ));
            }
        }
        match &explanation.reason {
            Reason::DefaultDecision => {
                out.push_str("reason: no applicable rule; default applied\n");
            }
            Reason::ResolvedBy(strategy) => {
                out.push_str(&format!("reason: resolved by {strategy}\n"));
            }
            Reason::ConfidenceTooLow { required, achieved } => {
                out.push_str(&format!(
                    "reason: authentication confidence {achieved} below the required {required}\n"
                ));
            }
        }
        if let Some(reason) = decision.degraded() {
            out.push_str(&format!("degraded: {reason}\n"));
        }
        out
    }

    fn role_name_list(&self, roles: &BTreeSet<RoleId>) -> String {
        if roles.is_empty() {
            return "(none)".to_owned();
        }
        roles
            .iter()
            .map(|&id| {
                self.roles
                    .role(id)
                    .map_or_else(|_| id.to_string(), |r| r.name().to_owned())
            })
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// Computes the requester's direct role set and the expanded
    /// role-to-confidence map.
    fn subject_bindings(
        &self,
        actor: &Actor,
    ) -> Result<(BTreeSet<RoleId>, BTreeMap<RoleId, Confidence>)> {
        let mut direct = BTreeSet::new();
        let mut conf = BTreeMap::new();
        match actor {
            Actor::Session(id) => {
                let session = self.sessions.session(*id)?;
                direct.extend(session.active_roles().iter().copied());
                for role in self.roles.expand(&direct) {
                    conf.insert(role, Confidence::FULL);
                }
            }
            Actor::Subject(id) => {
                self.entities.subject(*id)?;
                direct.extend(self.assignments.subject_roles(*id));
                for role in self.roles.expand(&direct) {
                    conf.insert(role, Confidence::FULL);
                }
            }
            Actor::Sensed(ctx) => {
                // Identity-derived roles inherit the identity confidence.
                if let Some((subject, identity_conf)) = ctx.identity() {
                    if self.entities.subject(subject).is_ok() {
                        let assigned = self.assignments.subject_roles(subject);
                        direct.extend(assigned.iter().copied());
                        for role in self.roles.expand(&assigned) {
                            upgrade(&mut conf, role, identity_conf);
                        }
                    }
                }
                // Direct role claims may exceed the identity confidence —
                // the §5.2 mechanism. Claims about undeclared roles are
                // ignored.
                for (role, claim_conf) in ctx.role_claims() {
                    if let Ok(closure) = self.roles.closure(role) {
                        direct.insert(role);
                        for implied in closure {
                            upgrade(&mut conf, implied, claim_conf);
                        }
                    }
                }
            }
        }
        Ok((direct, conf))
    }

    /// Shortest hierarchy distance from any directly-held role to `target`.
    fn min_distance(&self, kind: RoleKind, direct: &BTreeSet<RoleId>, target: RoleId) -> usize {
        let hierarchy = self.roles.hierarchy(kind);
        direct
            .iter()
            .filter_map(|&held| hierarchy.distance_up(held, target))
            .min()
            .unwrap_or(usize::MAX)
    }
}

fn upgrade(conf: &mut BTreeMap<RoleId, Confidence>, role: RoleId, confidence: Confidence) {
    conf.entry(role)
        .and_modify(|c| *c = (*c).max(confidence))
        .or_insert(confidence);
}

/// The requester's roles as seen by the compiled mediation path.
///
/// Fully-trusted actors (sessions, logged-in subjects) hold their
/// entire expansion at [`Confidence::FULL`], so a bitset membership
/// test replaces the role→confidence map the naive path builds; only
/// sensed actors need per-role confidences.
enum SubjectView<'a> {
    /// Every expanded role at full confidence; borrows the cached
    /// expansion for [`Actor::Subject`], owns a fresh one for
    /// [`Actor::Session`].
    Full(Cow<'a, CachedExpansion>),
    /// Sensed actor: direct roles plus the max-merged confidence map.
    Mixed {
        direct: BTreeSet<RoleId>,
        conf: BTreeMap<RoleId, Confidence>,
    },
}

impl SubjectView<'_> {
    /// The confidence at which the requester holds `role`, if at all.
    fn confidence(&self, role: RoleId) -> Option<Confidence> {
        match self {
            SubjectView::Full(expansion) => expansion.contains(role).then_some(Confidence::FULL),
            SubjectView::Mixed { conf, .. } => conf.get(&role).copied(),
        }
    }

    /// The direct (unexpanded) role set, for specificity distances.
    fn direct(&self) -> &BTreeSet<RoleId> {
        match self {
            SubjectView::Full(expansion) => &expansion.direct,
            SubjectView::Mixed { direct, .. } => direct,
        }
    }

    /// Number of expanded roles the requester holds (trace item count).
    fn role_count(&self) -> usize {
        match self {
            SubjectView::Full(expansion) => expansion.expanded.len(),
            SubjectView::Mixed { conf, .. } => conf.len(),
        }
    }

    /// The expanded role set for the explanation, reusing the already
    /// computed expansion instead of rebuilding it per request.
    fn into_roles(self) -> BTreeSet<RoleId> {
        match self {
            SubjectView::Full(Cow::Borrowed(expansion)) => expansion.expanded.clone(),
            SubjectView::Full(Cow::Owned(expansion)) => expansion.expanded,
            SubjectView::Mixed { conf, .. } => conf.keys().copied().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the §5.1 household: roles, hierarchy, entities, one rule.
    fn section51() -> (Grbac, Fixture) {
        let mut g = Grbac::new();
        let home_user = g.declare_subject_role("home_user").unwrap();
        let family = g.declare_subject_role("family_member").unwrap();
        let parent = g.declare_subject_role("parent").unwrap();
        let child = g.declare_subject_role("child").unwrap();
        g.specialize(family, home_user).unwrap();
        g.specialize(parent, family).unwrap();
        g.specialize(child, family).unwrap();

        let entertainment = g.declare_object_role("entertainment_devices").unwrap();
        let weekdays = g.declare_environment_role("weekdays").unwrap();
        let free_time = g.declare_environment_role("free_time").unwrap();
        let use_t = g.declare_transaction("use").unwrap();

        let mom = g.declare_subject("mom").unwrap();
        let bobby = g.declare_subject("bobby").unwrap();
        g.assign_subject_role(mom, parent).unwrap();
        g.assign_subject_role(bobby, child).unwrap();

        let tv = g.declare_object("tv").unwrap();
        g.assign_object_role(tv, entertainment).unwrap();

        g.add_rule(
            RuleDef::permit()
                .named("kids tv policy")
                .subject_role(child)
                .object_role(entertainment)
                .transaction(use_t)
                .when(weekdays)
                .when(free_time),
        )
        .unwrap();

        (
            g,
            Fixture {
                child,
                parent,
                entertainment,
                weekdays,
                free_time,
                use_t,
                mom,
                bobby,
                tv,
            },
        )
    }

    struct Fixture {
        child: RoleId,
        parent: RoleId,
        entertainment: RoleId,
        weekdays: RoleId,
        free_time: RoleId,
        use_t: TransactionId,
        mom: SubjectId,
        bobby: SubjectId,
        tv: ObjectId,
    }

    #[test]
    fn section51_grants_child_in_free_time() {
        let (g, f) = section51();
        let env = EnvironmentSnapshot::from_active([f.weekdays, f.free_time]);
        let d = g
            .decide(&AccessRequest::by_subject(f.bobby, f.use_t, f.tv, env))
            .unwrap();
        assert!(d.is_permitted());
        assert!(d.winning_rule().is_some());
    }

    #[test]
    fn section51_denies_outside_free_time() {
        let (g, f) = section51();
        let env = EnvironmentSnapshot::from_active([f.weekdays]);
        let d = g
            .decide(&AccessRequest::by_subject(f.bobby, f.use_t, f.tv, env))
            .unwrap();
        assert!(!d.is_permitted());
        assert_eq!(d.explanation().reason, Reason::DefaultDecision);
    }

    #[test]
    fn section51_denies_parent_by_default() {
        // The single rule names `child`; Mom holds `parent` which does
        // not specialize `child`, so default-deny applies.
        let (g, f) = section51();
        let env = EnvironmentSnapshot::from_active([f.weekdays, f.free_time]);
        let d = g
            .decide(&AccessRequest::by_subject(f.mom, f.use_t, f.tv, env))
            .unwrap();
        assert!(!d.is_permitted());
    }

    #[test]
    fn hierarchy_grants_through_general_role() {
        // A rule for `family_member` covers Bobby (child ⊑ family_member).
        let (mut g, f) = section51();
        let family = g.roles().find(RoleKind::Subject, "family_member").unwrap();
        let view = g.declare_transaction("view").unwrap();
        let album = g.declare_object("photo_album").unwrap();
        let media = g.declare_object_role("family_media").unwrap();
        g.assign_object_role(album, media).unwrap();
        g.add_rule(
            RuleDef::permit()
                .subject_role(family)
                .object_role(media)
                .transaction(view),
        )
        .unwrap();
        let d = g
            .decide(&AccessRequest::by_subject(
                f.bobby,
                view,
                album,
                EnvironmentSnapshot::new(),
            ))
            .unwrap();
        assert!(d.is_permitted());
    }

    #[test]
    fn environment_hierarchy_expands() {
        // `monday` specializes `weekdays`: activating monday satisfies a
        // weekdays requirement.
        let (mut g, f) = section51();
        let monday = g.declare_environment_role("monday").unwrap();
        g.specialize(monday, f.weekdays).unwrap();
        let env = EnvironmentSnapshot::from_active([monday, f.free_time]);
        let d = g
            .decide(&AccessRequest::by_subject(f.bobby, f.use_t, f.tv, env))
            .unwrap();
        assert!(d.is_permitted());
    }

    #[test]
    fn deny_rule_overrides_permit_by_default() {
        let (mut g, f) = section51();
        g.add_rule(
            RuleDef::deny()
                .named("tv grounded")
                .subject_role(f.child)
                .object_role(f.entertainment),
        )
        .unwrap();
        let env = EnvironmentSnapshot::from_active([f.weekdays, f.free_time]);
        let d = g
            .decide(&AccessRequest::by_subject(f.bobby, f.use_t, f.tv, env))
            .unwrap();
        assert!(!d.is_permitted());
        assert_eq!(d.explanation().matched.len(), 2);
    }

    #[test]
    fn permit_overrides_flips_the_outcome() {
        let (mut g, f) = section51();
        g.add_rule(
            RuleDef::deny()
                .subject_role(f.child)
                .object_role(f.entertainment),
        )
        .unwrap();
        g.set_strategy(ConflictStrategy::PermitOverrides);
        let env = EnvironmentSnapshot::from_active([f.weekdays, f.free_time]);
        let d = g
            .decide(&AccessRequest::by_subject(f.bobby, f.use_t, f.tv, env))
            .unwrap();
        assert!(d.is_permitted());
    }

    #[test]
    fn sessions_limit_to_active_roles() {
        let (mut g, f) = section51();
        let session = g.open_session(f.bobby).unwrap();
        let env = EnvironmentSnapshot::from_active([f.weekdays, f.free_time]);

        // Nothing active: deny.
        let d = g
            .decide(&AccessRequest::by_session(
                session,
                f.use_t,
                f.tv,
                env.clone(),
            ))
            .unwrap();
        assert!(!d.is_permitted());

        // Activate `child`: permit.
        g.activate_role(session, f.child).unwrap();
        let d = g
            .decide(&AccessRequest::by_session(session, f.use_t, f.tv, env))
            .unwrap();
        assert!(d.is_permitted());
    }

    #[test]
    fn activation_requires_authorization() {
        let (mut g, f) = section51();
        let session = g.open_session(f.bobby).unwrap();
        let err = g.activate_role(session, f.parent).unwrap_err();
        assert!(matches!(err, GrbacError::RoleNotAuthorized { .. }));
    }

    #[test]
    fn activation_of_implied_general_role_is_allowed() {
        let (mut g, f) = section51();
        let family = g.roles().find(RoleKind::Subject, "family_member").unwrap();
        let session = g.open_session(f.bobby).unwrap();
        g.activate_role(session, family).unwrap();
        assert!(g.sessions().session(session).unwrap().is_active(family));
    }

    #[test]
    fn dynamic_sod_blocks_simultaneous_activation() {
        let mut g = Grbac::new();
        let teller = g.declare_subject_role("teller").unwrap();
        let holder = g.declare_subject_role("account_holder").unwrap();
        let pat = g.declare_subject("pat").unwrap();
        g.assign_subject_role(pat, teller).unwrap();
        g.assign_subject_role(pat, holder).unwrap();
        g.add_sod_constraint(
            SodConstraint::mutual_exclusion("teller-vs-holder", SodKind::Dynamic, teller, holder)
                .unwrap(),
        )
        .unwrap();
        let session = g.open_session(pat).unwrap();
        g.activate_role(session, teller).unwrap();
        let err = g.activate_role(session, holder).unwrap_err();
        assert!(matches!(err, GrbacError::SodViolation { .. }));
        // But a second session may activate the other role.
        let other = g.open_session(pat).unwrap();
        g.activate_role(other, holder).unwrap();
    }

    #[test]
    fn static_sod_blocks_assignment() {
        let mut g = Grbac::new();
        let auditor = g.declare_subject_role("auditor").unwrap();
        let approver = g.declare_subject_role("approver").unwrap();
        g.add_sod_constraint(
            SodConstraint::mutual_exclusion("audit-vs-approve", SodKind::Static, auditor, approver)
                .unwrap(),
        )
        .unwrap();
        let pat = g.declare_subject("pat").unwrap();
        g.assign_subject_role(pat, auditor).unwrap();
        assert!(matches!(
            g.assign_subject_role(pat, approver),
            Err(GrbacError::SodViolation { .. })
        ));
    }

    #[test]
    fn adding_sod_checks_existing_state() {
        let mut g = Grbac::new();
        let a = g.declare_subject_role("a").unwrap();
        let b = g.declare_subject_role("b").unwrap();
        let pat = g.declare_subject("pat").unwrap();
        g.assign_subject_role(pat, a).unwrap();
        g.assign_subject_role(pat, b).unwrap();
        let err = g
            .add_sod_constraint(
                SodConstraint::mutual_exclusion("late", SodKind::Static, a, b).unwrap(),
            )
            .unwrap_err();
        assert!(matches!(err, GrbacError::SodViolation { .. }));
    }

    #[test]
    fn sensed_actor_identity_below_threshold_is_denied() {
        // §5.2: Alice identified at 75% against a 90% threshold.
        let (mut g, f) = section51();
        g.set_default_min_confidence(Confidence::new(0.90).unwrap());
        let mut ctx = AuthContext::new();
        ctx.claim_identity(f.bobby, Confidence::new(0.75).unwrap());
        let env = EnvironmentSnapshot::from_active([f.weekdays, f.free_time]);
        let d = g
            .decide(&AccessRequest::by_sensed(ctx, f.use_t, f.tv, env))
            .unwrap();
        assert!(!d.is_permitted());
        assert!(matches!(
            d.explanation().reason,
            Reason::ConfidenceTooLow { .. }
        ));
    }

    #[test]
    fn sensed_actor_role_claim_above_threshold_is_permitted() {
        // §5.2: the floor authenticates Alice *into the child role* at
        // 98%, clearing the 90% bar even though identity sits at 75%.
        let (mut g, f) = section51();
        g.set_default_min_confidence(Confidence::new(0.90).unwrap());
        let mut ctx = AuthContext::new();
        ctx.claim_identity(f.bobby, Confidence::new(0.75).unwrap());
        ctx.claim_role(f.child, Confidence::new(0.98).unwrap());
        let env = EnvironmentSnapshot::from_active([f.weekdays, f.free_time]);
        let d = g
            .decide(&AccessRequest::by_sensed(ctx, f.use_t, f.tv, env))
            .unwrap();
        assert!(d.is_permitted());
    }

    #[test]
    fn deny_rules_apply_even_at_low_confidence() {
        let (mut g, f) = section51();
        g.set_default_min_confidence(Confidence::new(0.90).unwrap());
        g.add_rule(
            RuleDef::deny()
                .subject_role(f.child)
                .object_role(f.entertainment),
        )
        .unwrap();
        let mut ctx = AuthContext::new();
        ctx.claim_role(f.child, Confidence::new(0.30).unwrap());
        let env = EnvironmentSnapshot::from_active([f.weekdays, f.free_time]);
        let d = g
            .decide(&AccessRequest::by_sensed(ctx, f.use_t, f.tv, env))
            .unwrap();
        assert!(!d.is_permitted());
        assert!(d.winning_rule().is_some(), "deny rule matched, not default");
    }

    #[test]
    fn rule_specific_threshold_overrides_default() {
        let (mut g, f) = section51();
        // Tighten only the tv rule: require 99%.
        g.remove_rule(g.rules()[0].id());
        g.add_rule(
            RuleDef::permit()
                .subject_role(f.child)
                .object_role(f.entertainment)
                .transaction(f.use_t)
                .when(f.weekdays)
                .when(f.free_time)
                .min_confidence(Confidence::new(0.99).unwrap()),
        )
        .unwrap();
        g.set_default_min_confidence(Confidence::new(0.5).unwrap());
        let mut ctx = AuthContext::new();
        ctx.claim_role(f.child, Confidence::new(0.98).unwrap());
        let env = EnvironmentSnapshot::from_active([f.weekdays, f.free_time]);
        let d = g
            .decide(&AccessRequest::by_sensed(ctx, f.use_t, f.tv, env))
            .unwrap();
        assert!(!d.is_permitted());
    }

    #[test]
    fn check_records_audit() {
        let (mut g, f) = section51();
        let env = EnvironmentSnapshot::from_active([f.weekdays, f.free_time]);
        g.check(&AccessRequest::by_subject(f.bobby, f.use_t, f.tv, env.clone()).at(42))
            .unwrap();
        g.check(&AccessRequest::by_subject(f.mom, f.use_t, f.tv, env))
            .unwrap();
        assert_eq!(g.audit().permit_count(), 1);
        assert_eq!(g.audit().deny_count(), 1);
        assert_eq!(g.audit().iter().next().unwrap().timestamp, Some(42));
    }

    #[test]
    fn unknown_entities_error() {
        let (g, f) = section51();
        let bad_object = ObjectId::from_raw(99);
        assert!(g
            .decide(&AccessRequest::by_subject(
                f.bobby,
                f.use_t,
                bad_object,
                EnvironmentSnapshot::new()
            ))
            .is_err());
        let bad_txn = TransactionId::from_raw(99);
        assert!(g
            .decide(&AccessRequest::by_subject(
                f.bobby,
                bad_txn,
                f.tv,
                EnvironmentSnapshot::new()
            ))
            .is_err());
    }

    #[test]
    fn rules_reject_wrong_role_kinds() {
        let (mut g, f) = section51();
        // Environment role in the subject position.
        let err = g
            .add_rule(RuleDef::permit().subject_role(f.weekdays))
            .unwrap_err();
        assert!(matches!(err, GrbacError::WrongRoleKind { .. }));
        // Subject role in the environment position.
        let err = g.add_rule(RuleDef::permit().when(f.child)).unwrap_err();
        assert!(matches!(err, GrbacError::WrongRoleKind { .. }));
    }

    #[test]
    fn most_specific_prefers_child_rule_over_family_rule() {
        let (mut g, f) = section51();
        let family = g.roles().find(RoleKind::Subject, "family_member").unwrap();
        let read = g.declare_transaction("read").unwrap();
        let records = g.declare_object("medical_records").unwrap();
        let sensitive = g.declare_object_role("sensitive_documents").unwrap();
        g.assign_object_role(records, sensitive).unwrap();
        // family_member may read; child may not (the paper's Bobby case).
        g.add_rule(
            RuleDef::permit()
                .subject_role(family)
                .object_role(sensitive)
                .transaction(read),
        )
        .unwrap();
        g.add_rule(
            RuleDef::deny()
                .subject_role(f.child)
                .object_role(sensitive)
                .transaction(read),
        )
        .unwrap();
        g.set_strategy(ConflictStrategy::MostSpecific);
        let d = g
            .decide(&AccessRequest::by_subject(
                f.bobby,
                read,
                records,
                EnvironmentSnapshot::new(),
            ))
            .unwrap();
        assert!(!d.is_permitted(), "the more specific child rule wins");
        // Mom (parent, not child) is permitted through family_member.
        let d = g
            .decide(&AccessRequest::by_subject(
                f.mom,
                read,
                records,
                EnvironmentSnapshot::new(),
            ))
            .unwrap();
        assert!(d.is_permitted());
    }

    #[test]
    fn default_effect_is_configurable() {
        let (mut g, f) = section51();
        g.set_default_effect(Effect::Permit);
        let d = g
            .decide(&AccessRequest::by_subject(
                f.mom,
                f.use_t,
                f.tv,
                EnvironmentSnapshot::new(),
            ))
            .unwrap();
        assert!(d.is_permitted());
        assert_eq!(d.winning_rule(), None);
    }

    #[test]
    fn remove_rule_works() {
        let (mut g, f) = section51();
        let id = g.rules()[0].id();
        assert!(g.remove_rule(id));
        assert!(!g.remove_rule(id));
        let env = EnvironmentSnapshot::from_active([f.weekdays, f.free_time]);
        let d = g
            .decide(&AccessRequest::by_subject(f.bobby, f.use_t, f.tv, env))
            .unwrap();
        assert!(!d.is_permitted());
    }

    #[test]
    fn revocation_drops_session_activations_immediately() {
        let (mut g, f) = section51();
        let session = g.open_session(f.bobby).unwrap();
        g.activate_role(session, f.child).unwrap();
        let env = EnvironmentSnapshot::from_active([f.weekdays, f.free_time]);
        assert!(g
            .decide(&AccessRequest::by_session(
                session,
                f.use_t,
                f.tv,
                env.clone()
            ))
            .unwrap()
            .is_permitted());

        // Revoke `child`: the open session must lose access at once.
        g.revoke_subject_role(f.bobby, f.child).unwrap();
        assert!(!g.sessions().session(session).unwrap().is_active(f.child));
        assert!(!g
            .decide(&AccessRequest::by_session(session, f.use_t, f.tv, env))
            .unwrap()
            .is_permitted());
    }

    #[test]
    fn revocation_keeps_activations_still_backed_by_other_roles() {
        // Bobby is assigned both `child` and, say, a scout role that
        // specializes child... model via two assigned roles where the
        // active role is implied by the remaining one.
        let mut g = Grbac::new();
        let family = g.declare_subject_role("family_member").unwrap();
        let child = g.declare_subject_role("child").unwrap();
        g.specialize(child, family).unwrap();
        let s = g.declare_subject("bobby").unwrap();
        g.assign_subject_role(s, child).unwrap();
        g.assign_subject_role(s, family).unwrap();
        let session = g.open_session(s).unwrap();
        g.activate_role(session, family).unwrap();
        // Revoking the *direct* family assignment leaves `family`
        // active because `child` still implies it.
        g.revoke_subject_role(s, family).unwrap();
        assert!(g.sessions().session(session).unwrap().is_active(family));
        // Revoking child too removes the last backing.
        g.revoke_subject_role(s, child).unwrap();
        assert!(!g.sessions().session(session).unwrap().is_active(family));
    }

    #[test]
    fn render_decision_resolves_names() {
        let (g, f) = section51();
        let env = EnvironmentSnapshot::from_active([f.weekdays, f.free_time]);
        let d = g
            .decide(&AccessRequest::by_subject(f.bobby, f.use_t, f.tv, env))
            .unwrap();
        let text = g.render_decision(&d);
        assert!(text.contains("decision: permit"), "{text}");
        assert!(text.contains("child"), "{text}");
        assert!(text.contains("entertainment_devices"), "{text}");
        assert!(text.contains("weekdays"), "{text}");
        assert!(text.contains("kids tv policy"), "{text}");
        assert!(text.contains("<- winner"), "{text}");

        // A default deny renders the fallback reason.
        let d = g
            .decide(&AccessRequest::by_subject(
                f.mom,
                f.use_t,
                f.tv,
                EnvironmentSnapshot::new(),
            ))
            .unwrap();
        let text = g.render_decision(&d);
        assert!(text.contains("no rules matched"), "{text}");
        assert!(text.contains("default applied"), "{text}");
    }

    #[test]
    fn render_decision_reports_confidence_shortfall() {
        let (mut g, f) = section51();
        g.set_default_min_confidence(Confidence::new(0.9).unwrap());
        let mut ctx = AuthContext::new();
        ctx.claim_role(f.child, Confidence::new(0.75).unwrap());
        let env = EnvironmentSnapshot::from_active([f.weekdays, f.free_time]);
        let d = g
            .decide(&AccessRequest::by_sensed(ctx, f.use_t, f.tv, env))
            .unwrap();
        let text = g.render_decision(&d);
        assert!(
            text.contains("confidence 75.0% below the required 90.0%"),
            "{text}"
        );
    }

    #[test]
    fn transaction_spec_filters() {
        let (mut g, f) = section51();
        let repair = g.declare_transaction("repair").unwrap();
        let env = EnvironmentSnapshot::from_active([f.weekdays, f.free_time]);
        let d = g
            .decide(&AccessRequest::by_subject(f.bobby, repair, f.tv, env))
            .unwrap();
        assert!(!d.is_permitted(), "rule is scoped to the `use` transaction");
    }
}
