//! Roles — the single organizing concept of GRBAC.
//!
//! The paper's central move is to apply the RBAC notion of a *role*
//! uniformly to three entity classes (§4.2):
//!
//! * **subject roles** categorize users (`parent`, `child`, `guest`),
//! * **object roles** categorize resources (`entertainment_device`,
//!   `medical_record`),
//! * **environment roles** categorize system states (`weekdays`,
//!   `free_time`, `kitchen_occupied`).
//!
//! [`RoleCatalog`] owns every declared role, enforces per-kind name
//! uniqueness, and maintains one specialization hierarchy per kind.

use std::collections::{BTreeSet, HashMap};

use serde::{Deserialize, Serialize};

use crate::error::{GrbacError, Result};
use crate::hierarchy::RoleHierarchy;
use crate::id::{IdAllocator, RoleId};

/// The three kinds of roles GRBAC recognizes (§4.2.1–§4.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RoleKind {
    /// Categorizes users of the system (traditional RBAC roles).
    Subject,
    /// Categorizes protected resources.
    Object,
    /// Categorizes security-relevant system states.
    Environment,
}

impl RoleKind {
    /// All role kinds, in declaration order.
    pub const ALL: [RoleKind; 3] = [RoleKind::Subject, RoleKind::Object, RoleKind::Environment];
}

impl std::fmt::Display for RoleKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RoleKind::Subject => "subject",
            RoleKind::Object => "object",
            RoleKind::Environment => "environment",
        })
    }
}

/// A declared role: a named grouping primitive of a particular kind.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Role {
    id: RoleId,
    name: String,
    kind: RoleKind,
}

impl Role {
    /// The role's identifier.
    #[must_use]
    pub fn id(&self) -> RoleId {
        self.id
    }

    /// The role's human-readable name, unique within its kind.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Which entity class this role categorizes.
    #[must_use]
    pub fn kind(&self) -> RoleKind {
        self.kind
    }
}

impl std::fmt::Display for Role {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} role {:?}", self.kind, self.name)
    }
}

/// Owns every declared role and the per-kind specialization hierarchies.
///
/// # Examples
///
/// ```
/// use grbac_core::role::{RoleCatalog, RoleKind};
///
/// # fn main() -> Result<(), grbac_core::GrbacError> {
/// let mut catalog = RoleCatalog::new();
/// let family = catalog.declare("family_member", RoleKind::Subject)?;
/// let child = catalog.declare("child", RoleKind::Subject)?;
/// catalog.specialize(child, family)?;
/// assert!(catalog.is_specialization_of(child, family)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RoleCatalog {
    #[serde(with = "crate::serde_pairs::hash")]
    roles: HashMap<RoleId, Role>,
    #[serde(with = "crate::serde_pairs::hash")]
    by_name: HashMap<(RoleKind, String), RoleId>,
    subject_hierarchy: RoleHierarchy,
    object_hierarchy: RoleHierarchy,
    environment_hierarchy: RoleHierarchy,
    alloc: IdAllocator,
}

impl RoleCatalog {
    /// Creates an empty catalog.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a new role of the given kind.
    ///
    /// # Errors
    ///
    /// Returns [`GrbacError::DuplicateName`] if a role with the same name
    /// and kind already exists.
    pub fn declare(&mut self, name: impl Into<String>, kind: RoleKind) -> Result<RoleId> {
        let name = name.into();
        if self.by_name.contains_key(&(kind, name.clone())) {
            return Err(GrbacError::DuplicateName {
                kind: match kind {
                    RoleKind::Subject => "subject role",
                    RoleKind::Object => "object role",
                    RoleKind::Environment => "environment role",
                },
                name,
            });
        }
        let id = RoleId::from_raw(self.alloc.next());
        self.by_name.insert((kind, name.clone()), id);
        self.roles.insert(id, Role { id, name, kind });
        self.hierarchy_mut(kind).add_role(id);
        Ok(id)
    }

    /// Records that `specific` specializes (is-a) `general`.
    ///
    /// Possession of `specific` implies possession of `general`: a subject
    /// holding `child` also counts as holding `family_member`. Both roles
    /// must already be declared and share the same kind.
    ///
    /// # Errors
    ///
    /// * [`GrbacError::UnknownRole`] if either role is undeclared.
    /// * [`GrbacError::KindMismatch`] if the kinds differ.
    /// * [`GrbacError::HierarchyCycle`] if the edge would create a cycle.
    pub fn specialize(&mut self, specific: RoleId, general: RoleId) -> Result<()> {
        let specific_kind = self.role(specific)?.kind();
        let general_kind = self.role(general)?.kind();
        if specific_kind != general_kind {
            return Err(GrbacError::KindMismatch {
                role: general,
                expected: specific_kind,
                found: general_kind,
            });
        }
        self.hierarchy_mut(specific_kind)
            .add_specialization(specific, general)
    }

    /// Looks up a role by id.
    ///
    /// # Errors
    ///
    /// Returns [`GrbacError::UnknownRole`] for ids this catalog never issued.
    pub fn role(&self, id: RoleId) -> Result<&Role> {
        self.roles.get(&id).ok_or(GrbacError::UnknownRole(id))
    }

    /// Looks up a role id by kind and name.
    ///
    /// # Errors
    ///
    /// Returns [`GrbacError::UnknownRoleName`] if no such role is declared.
    pub fn find(&self, kind: RoleKind, name: &str) -> Result<RoleId> {
        self.by_name
            .get(&(kind, name.to_owned()))
            .copied()
            .ok_or_else(|| GrbacError::UnknownRoleName {
                kind,
                name: name.to_owned(),
            })
    }

    /// Returns true if `id` has been declared.
    #[must_use]
    pub fn contains(&self, id: RoleId) -> bool {
        self.roles.contains_key(&id)
    }

    /// Number of declared roles across all kinds.
    #[must_use]
    pub fn len(&self) -> usize {
        self.roles.len()
    }

    /// True if no roles are declared.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.roles.is_empty()
    }

    /// Iterates over every declared role in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &Role> {
        self.roles.values()
    }

    /// Iterates over the roles of one kind.
    pub fn iter_kind(&self, kind: RoleKind) -> impl Iterator<Item = &Role> {
        self.roles.values().filter(move |r| r.kind == kind)
    }

    /// The specialization hierarchy for the given kind.
    #[must_use]
    pub fn hierarchy(&self, kind: RoleKind) -> &RoleHierarchy {
        match kind {
            RoleKind::Subject => &self.subject_hierarchy,
            RoleKind::Object => &self.object_hierarchy,
            RoleKind::Environment => &self.environment_hierarchy,
        }
    }

    fn hierarchy_mut(&mut self, kind: RoleKind) -> &mut RoleHierarchy {
        match kind {
            RoleKind::Subject => &mut self.subject_hierarchy,
            RoleKind::Object => &mut self.object_hierarchy,
            RoleKind::Environment => &mut self.environment_hierarchy,
        }
    }

    /// True if `specific` equals `general` or transitively specializes it.
    ///
    /// # Errors
    ///
    /// Returns [`GrbacError::UnknownRole`] for undeclared ids.
    pub fn is_specialization_of(&self, specific: RoleId, general: RoleId) -> Result<bool> {
        let kind = self.role(specific)?.kind();
        self.role(general)?;
        Ok(self.hierarchy(kind).is_specialization_of(specific, general))
    }

    /// The upward closure of a role: the role itself plus every role it
    /// transitively specializes.
    ///
    /// Possessing a role means possessing its entire closure — this is how
    /// Figure 2's `Mom → Parent → Family Member → Home User` chain grants
    /// `Mom` any permission written against `Home User`.
    ///
    /// # Errors
    ///
    /// Returns [`GrbacError::UnknownRole`] for undeclared ids.
    pub fn closure(&self, id: RoleId) -> Result<BTreeSet<RoleId>> {
        let kind = self.role(id)?.kind();
        Ok(self.hierarchy(kind).closure(id))
    }

    /// The union of [`closure`](Self::closure) over a set of roles.
    ///
    /// Unknown ids are skipped silently: the expansion is used on sets that
    /// were validated at insertion time.
    #[must_use]
    pub fn expand<'a>(&self, roles: impl IntoIterator<Item = &'a RoleId>) -> BTreeSet<RoleId> {
        let mut out = BTreeSet::new();
        for &id in roles {
            if let Ok(role) = self.role(id) {
                out.extend(self.hierarchy(role.kind()).closure(id));
            }
        }
        out
    }

    /// Validates that a role exists *and* has the expected kind.
    ///
    /// # Errors
    ///
    /// [`GrbacError::UnknownRole`] or [`GrbacError::WrongRoleKind`].
    pub fn expect_kind(&self, id: RoleId, expected: RoleKind) -> Result<()> {
        let found = self.role(id)?.kind();
        if found == expected {
            Ok(())
        } else {
            Err(GrbacError::WrongRoleKind {
                role: id,
                expected,
                found,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_and_find() {
        let mut c = RoleCatalog::new();
        let child = c.declare("child", RoleKind::Subject).unwrap();
        assert_eq!(c.find(RoleKind::Subject, "child").unwrap(), child);
        assert_eq!(c.role(child).unwrap().name(), "child");
        assert_eq!(c.role(child).unwrap().kind(), RoleKind::Subject);
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
    }

    #[test]
    fn same_name_allowed_across_kinds() {
        let mut c = RoleCatalog::new();
        let s = c.declare("kitchen", RoleKind::Subject).unwrap();
        let e = c.declare("kitchen", RoleKind::Environment).unwrap();
        assert_ne!(s, e);
    }

    #[test]
    fn duplicate_name_within_kind_rejected() {
        let mut c = RoleCatalog::new();
        c.declare("child", RoleKind::Subject).unwrap();
        let err = c.declare("child", RoleKind::Subject).unwrap_err();
        assert!(matches!(err, GrbacError::DuplicateName { .. }));
    }

    #[test]
    fn unknown_lookups_error() {
        let c = RoleCatalog::new();
        assert!(matches!(
            c.find(RoleKind::Object, "tv"),
            Err(GrbacError::UnknownRoleName { .. })
        ));
        assert!(matches!(
            c.role(RoleId::from_raw(99)),
            Err(GrbacError::UnknownRole(_))
        ));
    }

    #[test]
    fn specialization_and_closure() {
        let mut c = RoleCatalog::new();
        let home = c.declare("home_user", RoleKind::Subject).unwrap();
        let family = c.declare("family_member", RoleKind::Subject).unwrap();
        let child = c.declare("child", RoleKind::Subject).unwrap();
        c.specialize(family, home).unwrap();
        c.specialize(child, family).unwrap();

        assert!(c.is_specialization_of(child, home).unwrap());
        assert!(c.is_specialization_of(child, child).unwrap());
        assert!(!c.is_specialization_of(home, child).unwrap());

        let closure = c.closure(child).unwrap();
        assert_eq!(closure, BTreeSet::from([child, family, home]));
    }

    #[test]
    fn cross_kind_specialization_rejected() {
        let mut c = RoleCatalog::new();
        let s = c.declare("child", RoleKind::Subject).unwrap();
        let o = c.declare("tv", RoleKind::Object).unwrap();
        assert!(matches!(
            c.specialize(s, o),
            Err(GrbacError::KindMismatch { .. })
        ));
    }

    #[test]
    fn expand_unions_closures() {
        let mut c = RoleCatalog::new();
        let dev = c.declare("device", RoleKind::Object).unwrap();
        let ent = c.declare("entertainment", RoleKind::Object).unwrap();
        let tv = c.declare("tv", RoleKind::Object).unwrap();
        let fridge = c.declare("fridge", RoleKind::Object).unwrap();
        c.specialize(ent, dev).unwrap();
        c.specialize(tv, ent).unwrap();
        c.specialize(fridge, dev).unwrap();

        let expanded = c.expand(&[tv, fridge]);
        assert_eq!(expanded, BTreeSet::from([dev, ent, tv, fridge]));
    }

    #[test]
    fn expect_kind_guards_positions() {
        let mut c = RoleCatalog::new();
        let env = c.declare("weekdays", RoleKind::Environment).unwrap();
        assert!(c.expect_kind(env, RoleKind::Environment).is_ok());
        assert!(matches!(
            c.expect_kind(env, RoleKind::Subject),
            Err(GrbacError::WrongRoleKind { .. })
        ));
    }

    #[test]
    fn iter_kind_filters() {
        let mut c = RoleCatalog::new();
        c.declare("child", RoleKind::Subject).unwrap();
        c.declare("tv", RoleKind::Object).unwrap();
        c.declare("weekdays", RoleKind::Environment).unwrap();
        c.declare("parent", RoleKind::Subject).unwrap();
        assert_eq!(c.iter_kind(RoleKind::Subject).count(), 2);
        assert_eq!(c.iter_kind(RoleKind::Object).count(), 1);
        assert_eq!(c.iter().count(), 3 + 1);
    }

    #[test]
    fn role_display() {
        let mut c = RoleCatalog::new();
        let id = c.declare("child", RoleKind::Subject).unwrap();
        assert_eq!(c.role(id).unwrap().to_string(), "subject role \"child\"");
    }
}
