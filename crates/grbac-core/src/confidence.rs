//! Authentication confidence levels (§3, §5.2 "partial authentication").
//!
//! In the Aware Home, subjects are identified implicitly by sensors whose
//! accuracy varies: the paper's Smart Floor identifies Alice *as Alice*
//! with 75% accuracy but places her *in the `child` role* with 98%
//! accuracy. GRBAC therefore attaches a [`Confidence`] to each role a
//! requester is believed to hold, and rules may require a minimum
//! confidence before they apply.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::{GrbacError, Result};
use crate::id::{RoleId, SubjectId};

/// A probability-like certainty value in the closed unit interval.
///
/// Construction validates the range, so any `Confidence` in circulation is
/// a well-formed probability. The type is ordered (total order: the inner
/// value is always finite), so thresholds compare naturally.
///
/// # Examples
///
/// ```
/// use grbac_core::confidence::Confidence;
///
/// # fn main() -> Result<(), grbac_core::GrbacError> {
/// let smart_floor_identity = Confidence::new(0.75)?;
/// let policy_threshold = Confidence::new(0.90)?;
/// assert!(smart_floor_identity < policy_threshold);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Confidence(f64);

impl Confidence {
    /// No certainty at all.
    pub const ZERO: Confidence = Confidence(0.0);
    /// Complete certainty (e.g. an explicit login or a session actor).
    pub const FULL: Confidence = Confidence(1.0);

    /// Creates a confidence value.
    ///
    /// # Errors
    ///
    /// Returns [`GrbacError::InvalidConfidence`] if `value` is NaN or
    /// outside `[0, 1]`.
    pub fn new(value: f64) -> Result<Self> {
        if value.is_nan() || !(0.0..=1.0).contains(&value) {
            return Err(GrbacError::InvalidConfidence(value));
        }
        Ok(Self(value))
    }

    /// Creates a confidence value, clamping into `[0, 1]` (NaN becomes 0).
    #[must_use]
    pub fn saturating(value: f64) -> Self {
        if value.is_nan() {
            Self::ZERO
        } else {
            Self(value.clamp(0.0, 1.0))
        }
    }

    /// The inner probability.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    /// True when this confidence meets a required threshold.
    #[must_use]
    pub fn meets(self, threshold: Confidence) -> bool {
        self.0 >= threshold.0
    }

    /// Noisy-OR combination of two independent pieces of evidence for the
    /// same claim: `1 - (1-a)(1-b)`. Never decreases either input.
    #[must_use]
    pub fn combine_independent(self, other: Confidence) -> Confidence {
        Confidence(1.0 - (1.0 - self.0) * (1.0 - other.0))
    }

    /// Scales this confidence by a `[0, 1]` factor — the product of two
    /// probabilities, so the result never exceeds either input. Used by
    /// degraded-mode mediation (stale environments decay subject
    /// confidence) and by faulty-sensor models.
    ///
    /// # Examples
    ///
    /// ```
    /// use grbac_core::confidence::Confidence;
    ///
    /// # fn main() -> Result<(), grbac_core::GrbacError> {
    /// let sensed = Confidence::new(0.9)?;
    /// let decay = Confidence::new(0.5)?;
    /// assert_eq!(sensed.scale(decay), Confidence::new(0.45)?);
    /// assert_eq!(sensed.scale(Confidence::FULL), sensed);
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn scale(self, factor: Confidence) -> Confidence {
        Confidence(self.0 * factor.0)
    }

    /// The larger of two confidences.
    #[must_use]
    pub fn max(self, other: Confidence) -> Confidence {
        if other.0 > self.0 {
            other
        } else {
            self
        }
    }

    /// The smaller of two confidences.
    #[must_use]
    pub fn min(self, other: Confidence) -> Confidence {
        if other.0 < self.0 {
            other
        } else {
            self
        }
    }
}

impl Default for Confidence {
    /// Defaults to [`Confidence::ZERO`]: absent evidence is no evidence.
    fn default() -> Self {
        Self::ZERO
    }
}

impl Eq for Confidence {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl PartialOrd for Confidence {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Confidence {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Valid by construction: the inner value is never NaN.
        self.0.partial_cmp(&other.0).expect("confidence is finite")
    }
}

impl std::fmt::Display for Confidence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.1}%", self.0 * 100.0)
    }
}

/// The authentication evidence accompanying an access request.
///
/// Produced by an authenticator (see the `grbac-sense` crate) from sensor
/// evidence. Holds an optional identity claim and any number of direct
/// role-membership claims — the paper's key insight is that the role
/// claims may carry *higher* confidence than the identity claim.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AuthContext {
    identity: Option<(SubjectId, Confidence)>,
    #[serde(with = "crate::serde_pairs::hash")]
    roles: HashMap<RoleId, Confidence>,
}

impl AuthContext {
    /// An empty context: nobody has been authenticated as anything.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A context representing a fully-trusted identity (confidence 1).
    #[must_use]
    pub fn trusted_identity(subject: SubjectId) -> Self {
        let mut ctx = Self::new();
        ctx.identity = Some((subject, Confidence::FULL));
        ctx
    }

    /// Records an identity claim, keeping the more confident of the old
    /// and new claims if they name the same subject and replacing the
    /// claim when the new one is strictly more confident about a
    /// different subject.
    pub fn claim_identity(&mut self, subject: SubjectId, confidence: Confidence) {
        match self.identity {
            Some((s, c)) if s == subject => {
                self.identity = Some((s, c.max(confidence)));
            }
            Some((_, c)) if confidence > c => {
                self.identity = Some((subject, confidence));
            }
            None => self.identity = Some((subject, confidence)),
            _ => {}
        }
    }

    /// Records a role-membership claim; repeated claims for the same role
    /// are combined as independent evidence (noisy-OR).
    pub fn claim_role(&mut self, role: RoleId, confidence: Confidence) {
        self.roles
            .entry(role)
            .and_modify(|c| *c = c.combine_independent(confidence))
            .or_insert(confidence);
    }

    /// The current identity claim, if any.
    #[must_use]
    pub fn identity(&self) -> Option<(SubjectId, Confidence)> {
        self.identity
    }

    /// The confidence of a direct role claim (zero when unclaimed).
    #[must_use]
    pub fn role_confidence(&self, role: RoleId) -> Confidence {
        self.roles.get(&role).copied().unwrap_or_default()
    }

    /// Iterates over all direct role claims.
    pub fn role_claims(&self) -> impl Iterator<Item = (RoleId, Confidence)> + '_ {
        self.roles.iter().map(|(&r, &c)| (r, c))
    }

    /// True if no identity and no role claims are present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.identity.is_none() && self.roles.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_range() {
        assert!(Confidence::new(0.0).is_ok());
        assert!(Confidence::new(1.0).is_ok());
        assert!(Confidence::new(0.5).is_ok());
        assert!(matches!(
            Confidence::new(-0.1),
            Err(GrbacError::InvalidConfidence(_))
        ));
        assert!(Confidence::new(1.1).is_err());
        assert!(Confidence::new(f64::NAN).is_err());
    }

    #[test]
    fn saturating_clamps() {
        assert_eq!(Confidence::saturating(2.0), Confidence::FULL);
        assert_eq!(Confidence::saturating(-1.0), Confidence::ZERO);
        assert_eq!(Confidence::saturating(f64::NAN), Confidence::ZERO);
        assert_eq!(Confidence::saturating(0.3).value(), 0.3);
    }

    #[test]
    fn ordering_and_thresholds() {
        let low = Confidence::new(0.75).unwrap();
        let high = Confidence::new(0.98).unwrap();
        let threshold = Confidence::new(0.90).unwrap();
        assert!(low < high);
        assert!(!low.meets(threshold));
        assert!(high.meets(threshold));
        assert!(threshold.meets(threshold));
    }

    #[test]
    fn noisy_or_combination() {
        let a = Confidence::new(0.5).unwrap();
        let b = Confidence::new(0.5).unwrap();
        assert!((a.combine_independent(b).value() - 0.75).abs() < 1e-12);
        // Identity elements.
        assert_eq!(a.combine_independent(Confidence::ZERO), a);
        assert_eq!(a.combine_independent(Confidence::FULL), Confidence::FULL);
    }

    #[test]
    fn display_as_percentage() {
        assert_eq!(Confidence::new(0.75).unwrap().to_string(), "75.0%");
        assert_eq!(Confidence::FULL.to_string(), "100.0%");
    }

    #[test]
    fn auth_context_identity_claims() {
        let alice = SubjectId::from_raw(0);
        let bobby = SubjectId::from_raw(1);
        let mut ctx = AuthContext::new();
        assert!(ctx.is_empty());

        ctx.claim_identity(alice, Confidence::new(0.6).unwrap());
        assert_eq!(ctx.identity().unwrap().0, alice);

        // Same subject: keep max.
        ctx.claim_identity(alice, Confidence::new(0.4).unwrap());
        assert_eq!(ctx.identity().unwrap().1.value(), 0.6);

        // Different subject with lower confidence: ignored.
        ctx.claim_identity(bobby, Confidence::new(0.5).unwrap());
        assert_eq!(ctx.identity().unwrap().0, alice);

        // Different subject with higher confidence: replaces.
        ctx.claim_identity(bobby, Confidence::new(0.9).unwrap());
        assert_eq!(ctx.identity().unwrap().0, bobby);
    }

    #[test]
    fn auth_context_role_claims_fuse() {
        let child = RoleId::from_raw(0);
        let mut ctx = AuthContext::new();
        assert_eq!(ctx.role_confidence(child), Confidence::ZERO);
        ctx.claim_role(child, Confidence::new(0.5).unwrap());
        ctx.claim_role(child, Confidence::new(0.5).unwrap());
        assert!((ctx.role_confidence(child).value() - 0.75).abs() < 1e-12);
        assert_eq!(ctx.role_claims().count(), 1);
    }

    #[test]
    fn trusted_identity_has_full_confidence() {
        let ctx = AuthContext::trusted_identity(SubjectId::from_raw(3));
        assert_eq!(ctx.identity().unwrap().1, Confidence::FULL);
    }
}
