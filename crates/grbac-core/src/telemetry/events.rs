//! The push half of the observability plane: a bounded, multi-
//! subscriber broadcast bus of typed telemetry events.
//!
//! Every pull-based surface in this module family (metrics scrapes,
//! `/alerts` polls, trace dumps) tells an operator what happened *last
//! scrape interval*; the bus tells them what is happening **now**. The
//! engine publishes a [`TelemetryEvent`] at each interesting moment —
//! a decision resolving (with its effect and
//! [`DecisionId`](crate::id::DecisionId)), the watchdog raising an
//! [`AlertRecord`], degraded mode being entered or exited, a policy
//! delta landing in the compiled index, a request span completing —
//! and any number of subscribers consume them.
//!
//! The design holds three invariants:
//!
//! * **Publishing never blocks.** Each subscriber owns a fixed-size
//!   drop-oldest ring; a slow consumer loses its own oldest events
//!   (counted, never silently) and affects nobody else. The publish
//!   path takes no lock a consumer can hold across a system call.
//! * **Accounting is exact.** Per subscriber,
//!   `delivered() + dropped() == published()` once the ring is fully
//!   drained — every event offered to a subscriber is eventually
//!   either handed over or counted as dropped.
//! * **Idle means free.** With no subscribers (or the runtime kill
//!   switch off, or the `telemetry-off` feature), a publish is one or
//!   two relaxed atomic loads and an early return — the decide path
//!   pays nothing for a plane nobody is watching.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use serde::Value;

use super::health::AlertRecord;
use super::span::monotonic_nanos;
use super::ENABLED;
use crate::id::DecisionId;
use crate::rule::Effect;

/// The classes of event the bus carries, in dense slot order (the
/// `kind` label on `grbac_events_published_total`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// A mediation resolved (permit or deny).
    Decision,
    /// The watchdog raised an anomaly alert.
    Alert,
    /// Decisions started carrying a degraded-mode annotation.
    DegradedEntered,
    /// Decisions stopped carrying a degraded-mode annotation.
    DegradedExited,
    /// A policy delta was installed into the compiled index.
    DeltaApplied,
    /// A request span completed.
    SpanCompleted,
}

impl EventKind {
    /// All kinds, in dense slot order.
    pub const ALL: [EventKind; 6] = [
        EventKind::Decision,
        EventKind::Alert,
        EventKind::DegradedEntered,
        EventKind::DegradedExited,
        EventKind::DeltaApplied,
        EventKind::SpanCompleted,
    ];

    /// Stable snake_case name (the wire spelling in event frames and
    /// the `kind` metric label).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Decision => "decision",
            EventKind::Alert => "alert",
            EventKind::DegradedEntered => "degraded_entered",
            EventKind::DegradedExited => "degraded_exited",
            EventKind::DeltaApplied => "delta_applied",
            EventKind::SpanCompleted => "span_completed",
        }
    }

    /// The dense slot this kind occupies in keyed counters.
    #[must_use]
    pub fn slot(self) -> u64 {
        Self::ALL.iter().position(|&k| k == self).unwrap_or(0) as u64
    }

    /// The kind for a dense slot, if in range.
    #[must_use]
    pub fn from_slot(slot: u64) -> Option<EventKind> {
        Self::ALL.get(slot as usize).copied()
    }

    /// Parses a wire spelling back into a kind.
    #[must_use]
    pub fn from_name(name: &str) -> Option<EventKind> {
        Self::ALL.iter().copied().find(|k| k.name() == name)
    }
}

/// How urgent an event is; filters compare with `>=`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Routine traffic: decisions, spans, delta installs.
    #[default]
    Info,
    /// The engine's posture changed: degraded mode entered or exited.
    Warning,
    /// An anomaly alert fired.
    Critical,
}

impl Severity {
    /// All severities, ascending.
    pub const ALL: [Severity; 3] = [Severity::Info, Severity::Warning, Severity::Critical];

    /// Stable snake_case name (the wire spelling).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }

    /// Parses a wire spelling back into a severity.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Severity> {
        Self::ALL.iter().copied().find(|s| s.name() == name)
    }
}

/// The typed payload of one event.
#[derive(Debug, Clone, PartialEq)]
pub enum EventData {
    /// A mediation resolved.
    Decision {
        /// The minted decision id (joins to audit/flight-recorder
        /// evidence and `/decision/<id>`).
        id: DecisionId,
        /// Permit or deny.
        effect: Effect,
        /// Whether the decision carried a degraded-mode annotation.
        degraded: bool,
    },
    /// The watchdog raised an alert.
    Alert(AlertRecord),
    /// Decisions started resolving in degraded mode.
    DegradedEntered {
        /// The first degraded decision of the episode.
        id: DecisionId,
    },
    /// Decisions stopped resolving in degraded mode.
    DegradedExited {
        /// The first healthy decision after the episode.
        id: DecisionId,
    },
    /// A policy delta was installed into the compiled index.
    DeltaApplied {
        /// The policy generation the index advanced to.
        generation: u64,
        /// True when the install patched shards in place; false when
        /// it fell back to a from-scratch rebuild.
        patched: bool,
        /// How long the install took (planning plus patching or the
        /// full rebuild), in nanoseconds.
        install_ns: u64,
    },
    /// A request span completed.
    SpanCompleted {
        /// The span's operation name (e.g. `decide`).
        name: String,
        /// Wall-clock duration in nanoseconds.
        nanos: u64,
    },
}

/// One event as broadcast: a bus-assigned sequence number, a capture
/// timestamp, and the typed payload.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryEvent {
    /// Bus-assigned sequence number, 1-based and strictly increasing
    /// per bus. Stream resume cursors (`Last-Event-ID`) speak seqs.
    pub seq: u64,
    /// Monotonic capture time in nanoseconds (same clock as
    /// [`monotonic_nanos`]).
    pub nanos: u64,
    /// The typed payload.
    pub data: EventData,
}

impl TelemetryEvent {
    /// The event's kind (derived from the payload).
    #[must_use]
    pub fn kind(&self) -> EventKind {
        match self.data {
            EventData::Decision { .. } => EventKind::Decision,
            EventData::Alert(_) => EventKind::Alert,
            EventData::DegradedEntered { .. } => EventKind::DegradedEntered,
            EventData::DegradedExited { .. } => EventKind::DegradedExited,
            EventData::DeltaApplied { .. } => EventKind::DeltaApplied,
            EventData::SpanCompleted { .. } => EventKind::SpanCompleted,
        }
    }

    /// The event's severity (derived from the payload).
    #[must_use]
    pub fn severity(&self) -> Severity {
        match self.data {
            EventData::Decision { .. }
            | EventData::DeltaApplied { .. }
            | EventData::SpanCompleted { .. } => Severity::Info,
            EventData::DegradedEntered { .. } | EventData::DegradedExited { .. } => {
                Severity::Warning
            }
            EventData::Alert(_) => Severity::Critical,
        }
    }

    /// Renders the event as a flat JSON object — the shape streamed
    /// on the serve protocol's event frames and the obs plane's SSE
    /// `data:` lines.
    #[must_use]
    pub fn to_value(&self) -> Value {
        let mut pairs = vec![
            ("seq".to_owned(), Value::UInt(self.seq)),
            ("kind".to_owned(), Value::Str(self.kind().name().to_owned())),
            (
                "severity".to_owned(),
                Value::Str(self.severity().name().to_owned()),
            ),
            ("nanos".to_owned(), Value::UInt(self.nanos)),
        ];
        match &self.data {
            EventData::Decision {
                id,
                effect,
                degraded,
            } => {
                pairs.push(("decision_id".to_owned(), Value::Str(id.to_string())));
                pairs.push(("effect".to_owned(), Value::Str(effect.to_string())));
                pairs.push(("degraded".to_owned(), Value::Bool(*degraded)));
            }
            EventData::Alert(record) => {
                pairs.push((
                    "alert_kind".to_owned(),
                    Value::Str(record.kind.name().to_owned()),
                ));
                pairs.push(("alert_seq".to_owned(), Value::UInt(record.seq)));
                pairs.push(("tick".to_owned(), Value::UInt(record.tick)));
                pairs.push(("observed".to_owned(), Value::Float(record.observed)));
                pairs.push(("baseline".to_owned(), Value::Float(record.baseline)));
                pairs.push(("deviation".to_owned(), Value::Float(record.deviation)));
                pairs.push(("window".to_owned(), Value::UInt(record.window)));
                pairs.push((
                    "decision_ids".to_owned(),
                    Value::Seq(
                        record
                            .decision_ids
                            .iter()
                            .map(|id| Value::Str(id.to_string()))
                            .collect(),
                    ),
                ));
            }
            EventData::DegradedEntered { id } | EventData::DegradedExited { id } => {
                pairs.push(("decision_id".to_owned(), Value::Str(id.to_string())));
            }
            EventData::DeltaApplied {
                generation,
                patched,
                install_ns,
            } => {
                pairs.push(("generation".to_owned(), Value::UInt(*generation)));
                pairs.push((
                    "mode".to_owned(),
                    Value::Str(if *patched { "patched" } else { "rebuilt" }.to_owned()),
                ));
                pairs.push(("install_ns".to_owned(), Value::UInt(*install_ns)));
            }
            EventData::SpanCompleted { name, nanos } => {
                pairs.push(("name".to_owned(), Value::Str(name.clone())));
                pairs.push(("span_nanos".to_owned(), Value::UInt(*nanos)));
            }
        }
        Value::Map(pairs)
    }
}

/// What a subscriber wants to see: a kind mask plus a severity floor.
///
/// The default filter passes everything. Calling [`Self::kind`]
/// switches from "all kinds" to "only the kinds named so far".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventFilter {
    /// Bitmask over [`EventKind`] slots; 0 means "all kinds".
    kinds: u32,
    /// Events below this severity are filtered out.
    min_severity: Severity,
}

impl Default for EventFilter {
    fn default() -> Self {
        Self::all()
    }
}

impl EventFilter {
    /// A filter that passes every event.
    #[must_use]
    pub const fn all() -> Self {
        Self {
            kinds: 0,
            min_severity: Severity::Info,
        }
    }

    /// Restricts the filter to `kind` (additive across calls).
    #[must_use]
    pub fn kind(mut self, kind: EventKind) -> Self {
        self.kinds |= 1 << kind.slot();
        self
    }

    /// Raises the severity floor.
    #[must_use]
    pub fn min_severity(mut self, severity: Severity) -> Self {
        self.min_severity = severity;
        self
    }

    /// Whether `event` passes the filter.
    #[must_use]
    pub fn matches(&self, event: &TelemetryEvent) -> bool {
        (self.kinds == 0 || self.kinds & (1 << event.kind().slot()) != 0)
            && event.severity() >= self.min_severity
    }
}

/// One subscriber's shared state: its filter, its ring, and its exact
/// accounting counters.
#[derive(Debug)]
struct SubscriberState {
    id: u64,
    filter: EventFilter,
    capacity: usize,
    ring: Mutex<VecDeque<Arc<TelemetryEvent>>>,
    published: AtomicU64,
    delivered: AtomicU64,
    dropped: AtomicU64,
}

/// The interior shared between the bus and its subscription handles.
#[derive(Debug)]
struct BusShared {
    enabled: AtomicBool,
    seq: AtomicU64,
    subscriber_count: AtomicU64,
    next_subscriber: AtomicU64,
    published_by_kind: [AtomicU64; EventKind::ALL.len()],
    dropped: AtomicU64,
    degraded: AtomicBool,
    subscribers: RwLock<Vec<Arc<SubscriberState>>>,
}

/// The broadcast bus. One lives on every
/// [`MetricsRegistry`](super::MetricsRegistry) (field `events`), so
/// every layer that can reach the registry can publish or subscribe.
#[derive(Debug, Clone)]
pub struct EventBus {
    shared: Arc<BusShared>,
}

impl Default for EventBus {
    fn default() -> Self {
        Self::new()
    }
}

impl EventBus {
    /// Default per-subscriber ring capacity for callers with no
    /// stronger opinion.
    pub const DEFAULT_CAPACITY: usize = 1_024;

    /// A fresh bus: enabled, no subscribers, sequence at zero.
    #[must_use]
    pub fn new() -> Self {
        Self {
            shared: Arc::new(BusShared {
                enabled: AtomicBool::new(true),
                seq: AtomicU64::new(0),
                subscriber_count: AtomicU64::new(0),
                next_subscriber: AtomicU64::new(0),
                published_by_kind: std::array::from_fn(|_| AtomicU64::new(0)),
                dropped: AtomicU64::new(0),
                degraded: AtomicBool::new(false),
                subscribers: RwLock::new(Vec::new()),
            }),
        }
    }

    /// The runtime kill switch. While disabled every publish is an
    /// early return; subscriptions stay registered but receive
    /// nothing. Always reads false under `telemetry-off`.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        ENABLED && self.shared.enabled.load(Ordering::Relaxed)
    }

    /// Flips the runtime kill switch.
    pub fn set_enabled(&self, enabled: bool) {
        self.shared.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Active subscriptions right now.
    #[must_use]
    pub fn subscriber_count(&self) -> u64 {
        self.shared.subscriber_count.load(Ordering::Relaxed)
    }

    /// The sequence number of the most recently broadcast event (0
    /// before the first).
    #[must_use]
    pub fn current_seq(&self) -> u64 {
        self.shared.seq.load(Ordering::Relaxed)
    }

    /// Events broadcast so far for `kind` (feeds the
    /// `grbac_events_published_total{kind}` series).
    #[must_use]
    pub fn published_total(&self, kind: EventKind) -> u64 {
        self.shared.published_by_kind[kind.slot() as usize].load(Ordering::Relaxed)
    }

    /// Ring evictions across all subscribers, ever (feeds
    /// `grbac_events_dropped_total`). Survives unsubscribes, unlike
    /// the per-subscription [`EventSubscription::dropped`] reading.
    #[must_use]
    pub fn dropped_total(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }

    /// Registers a subscriber with a drop-oldest ring of `capacity`
    /// events (clamped to at least 1) behind `filter`. The
    /// subscription unregisters itself on drop.
    #[must_use]
    pub fn subscribe(&self, capacity: usize, filter: EventFilter) -> EventSubscription {
        let state = Arc::new(SubscriberState {
            id: self.shared.next_subscriber.fetch_add(1, Ordering::Relaxed) + 1,
            filter,
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
            published: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        });
        self.shared
            .subscribers
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(state.clone());
        self.shared.subscriber_count.fetch_add(1, Ordering::Relaxed);
        EventSubscription {
            shared: self.shared.clone(),
            state,
        }
    }

    /// Broadcasts one event. With the kill switch off, `telemetry-off`
    /// compiled in, or nobody subscribed, this is a couple of relaxed
    /// loads and an early return; it never blocks on a consumer.
    pub fn publish(&self, data: EventData) {
        if self.skip() {
            return;
        }
        self.broadcast(data);
    }

    /// Publishes a decision event, plus a degraded-mode
    /// entered/exited event whenever this decision's degraded flag
    /// differs from the previous decision's — the engine's decide
    /// paths call this one helper instead of edge-detecting
    /// themselves.
    pub fn publish_decision(&self, id: DecisionId, effect: Effect, degraded: bool) {
        if self.skip() {
            return;
        }
        let was = self.shared.degraded.swap(degraded, Ordering::Relaxed);
        if degraded && !was {
            self.broadcast(EventData::DegradedEntered { id });
        } else if !degraded && was {
            self.broadcast(EventData::DegradedExited { id });
        }
        self.broadcast(EventData::Decision {
            id,
            effect,
            degraded,
        });
    }

    /// The publish fast path: true when nothing would be delivered.
    fn skip(&self) -> bool {
        !ENABLED
            || !self.shared.enabled.load(Ordering::Relaxed)
            || self.shared.subscriber_count.load(Ordering::Relaxed) == 0
    }

    fn broadcast(&self, data: EventData) {
        let seq = self.shared.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let event = Arc::new(TelemetryEvent {
            seq,
            nanos: monotonic_nanos(),
            data,
        });
        self.shared.published_by_kind[event.kind().slot() as usize].fetch_add(1, Ordering::Relaxed);
        let subscribers = self
            .shared
            .subscribers
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for subscriber in subscribers.iter() {
            if !subscriber.filter.matches(&event) {
                continue;
            }
            subscriber.published.fetch_add(1, Ordering::Relaxed);
            let mut ring = subscriber
                .ring
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if ring.len() >= subscriber.capacity {
                ring.pop_front();
                subscriber.dropped.fetch_add(1, Ordering::Relaxed);
                self.shared.dropped.fetch_add(1, Ordering::Relaxed);
            }
            ring.push_back(event.clone());
        }
    }
}

/// A live subscription: drains its ring, reads its exact accounting,
/// and unregisters itself on drop.
#[derive(Debug)]
pub struct EventSubscription {
    shared: Arc<BusShared>,
    state: Arc<SubscriberState>,
}

impl EventSubscription {
    /// A bus-unique subscription id (1-based).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.state.id
    }

    /// The filter this subscription was registered with.
    #[must_use]
    pub fn filter(&self) -> EventFilter {
        self.state.filter
    }

    /// Takes every event currently buffered, oldest first.
    #[must_use]
    pub fn drain(&self) -> Vec<Arc<TelemetryEvent>> {
        let events: Vec<_> = {
            let mut ring = self
                .state
                .ring
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            ring.drain(..).collect()
        };
        self.state
            .delivered
            .fetch_add(events.len() as u64, Ordering::Relaxed);
        events
    }

    /// Events currently buffered (published, not yet drained or
    /// dropped).
    #[must_use]
    pub fn len(&self) -> usize {
        self.state
            .ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// True when nothing is buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events that passed this subscription's filter and were offered
    /// to its ring.
    #[must_use]
    pub fn published(&self) -> u64 {
        self.state.published.load(Ordering::Relaxed)
    }

    /// Events handed to the consumer by [`Self::drain`].
    #[must_use]
    pub fn delivered(&self) -> u64 {
        self.state.delivered.load(Ordering::Relaxed)
    }

    /// Events evicted from the ring before the consumer drained them.
    /// At quiescence after a full drain,
    /// `delivered() + dropped() == published()`.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.state.dropped.load(Ordering::Relaxed)
    }
}

impl Drop for EventSubscription {
    fn drop(&mut self) {
        let mut subscribers = self
            .shared
            .subscribers
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(index) = subscribers.iter().position(|s| Arc::ptr_eq(s, &self.state)) {
            subscribers.swap_remove(index);
            self.shared.subscriber_count.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decision(seq: u64) -> EventData {
        EventData::Decision {
            id: DecisionId::from_parts(1, seq),
            effect: Effect::Permit,
            degraded: false,
        }
    }

    #[test]
    fn publish_without_subscribers_is_a_no_op() {
        let bus = EventBus::new();
        bus.publish(decision(1));
        assert_eq!(bus.current_seq(), 0);
        assert_eq!(bus.published_total(EventKind::Decision), 0);
    }

    #[test]
    fn events_fan_out_to_every_matching_subscriber() {
        let bus = EventBus::new();
        let everything = bus.subscribe(8, EventFilter::all());
        let alerts_only = bus.subscribe(8, EventFilter::all().kind(EventKind::Alert));
        let critical_only = bus.subscribe(8, EventFilter::all().min_severity(Severity::Critical));
        bus.publish(decision(1));
        bus.publish(EventData::DeltaApplied {
            generation: 2,
            patched: true,
            install_ns: 1,
        });
        if !ENABLED {
            assert!(everything.drain().is_empty());
            return;
        }
        assert_eq!(everything.drain().len(), 2);
        assert_eq!(alerts_only.published(), 0);
        assert_eq!(critical_only.published(), 0);
        assert_eq!(bus.published_total(EventKind::Decision), 1);
        assert_eq!(bus.published_total(EventKind::DeltaApplied), 1);
        // Seqs are bus-global and strictly increasing.
        bus.publish(decision(2));
        let events = everything.drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].seq, 3);
    }

    #[test]
    fn slow_subscribers_drop_oldest_with_exact_accounting() {
        let bus = EventBus::new();
        let slow = bus.subscribe(4, EventFilter::all());
        for seq in 1..=10 {
            bus.publish(decision(seq));
        }
        if !ENABLED {
            return;
        }
        assert_eq!(slow.published(), 10);
        assert_eq!(slow.dropped(), 6);
        let events = slow.drain();
        assert_eq!(events.len(), 4);
        // Drop-oldest: the newest four survive.
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![7, 8, 9, 10]
        );
        assert_eq!(slow.delivered() + slow.dropped(), slow.published());
        assert_eq!(bus.dropped_total(), 6);
    }

    #[test]
    fn kill_switch_silences_the_bus() {
        let bus = EventBus::new();
        let sub = bus.subscribe(8, EventFilter::all());
        bus.set_enabled(false);
        assert!(!bus.is_enabled());
        bus.publish(decision(1));
        assert_eq!(sub.published(), 0);
        bus.set_enabled(true);
        bus.publish(decision(2));
        if ENABLED {
            assert_eq!(sub.published(), 1);
        }
    }

    #[test]
    fn unsubscribe_on_drop_restores_the_fast_path() {
        let bus = EventBus::new();
        let sub = bus.subscribe(8, EventFilter::all());
        assert_eq!(bus.subscriber_count(), 1);
        drop(sub);
        assert_eq!(bus.subscriber_count(), 0);
        bus.publish(decision(1));
        assert_eq!(bus.current_seq(), 0, "no broadcast without subscribers");
    }

    #[test]
    fn degraded_edges_are_published_once_per_transition() {
        let bus = EventBus::new();
        let sub = bus.subscribe(32, EventFilter::all());
        let id = |seq| DecisionId::from_parts(1, seq);
        bus.publish_decision(id(1), Effect::Permit, false);
        bus.publish_decision(id(2), Effect::Permit, true);
        bus.publish_decision(id(3), Effect::Deny, true);
        bus.publish_decision(id(4), Effect::Permit, false);
        if !ENABLED {
            return;
        }
        let kinds: Vec<_> = sub.drain().iter().map(|e| e.kind()).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::Decision,
                EventKind::DegradedEntered,
                EventKind::Decision,
                EventKind::Decision,
                EventKind::DegradedExited,
                EventKind::Decision,
            ]
        );
    }

    #[test]
    fn event_frames_render_flat_json() {
        let event = TelemetryEvent {
            seq: 9,
            nanos: 123,
            data: EventData::Decision {
                id: DecisionId::from_parts(1, 2),
                effect: Effect::Deny,
                degraded: true,
            },
        };
        let value = event.to_value();
        assert_eq!(value.get("seq"), Some(&Value::UInt(9)));
        assert_eq!(value.get("kind"), Some(&Value::Str("decision".to_owned())));
        assert_eq!(value.get("effect"), Some(&Value::Str("deny".to_owned())));
        assert_eq!(value.get("degraded"), Some(&Value::Bool(true)));
        assert_eq!(value.get("severity"), Some(&Value::Str("info".to_owned())));
    }

    #[test]
    fn kinds_and_severities_round_trip_their_names() {
        for kind in EventKind::ALL {
            assert_eq!(EventKind::from_name(kind.name()), Some(kind));
            assert_eq!(EventKind::from_slot(kind.slot()), Some(kind));
        }
        for severity in Severity::ALL {
            assert_eq!(Severity::from_name(severity.name()), Some(severity));
        }
        assert!(Severity::Critical > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }
}
