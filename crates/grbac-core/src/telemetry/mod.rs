//! Mediation telemetry: metrics, decision tracing, and exporters.
//!
//! The paper's Aware Home assumes an always-on mediator serving a
//! chatty sensor network; a production engine needs a window into that
//! mediator beyond the bounded [`AuditLog`](crate::audit::AuditLog).
//! This module provides that window with zero external dependencies:
//!
//! * [`MetricsRegistry`] — lock-cheap atomic counters, gauges and
//!   fixed-bucket histograms covering the whole pipeline: decisions by
//!   effect, per-transaction rule hits, compiled-index rebuilds (count
//!   and nanoseconds), expansion-cache hits/misses, batch sizes, audit
//!   totals and evictions, and the environment-provider counters that
//!   `grbac-env` publishes into the same registry.
//! * [`DecisionTrace`] — a stage-by-stage span model of one mediation
//!   (subject-role expansion → object-role expansion → environment
//!   evaluation → rule candidate merge → precedence resolution) with
//!   per-stage timings and item counts, produced by
//!   [`Grbac::decide_traced`](crate::engine::Grbac::decide_traced).
//! * [`Span`] / [`SpanStore`] / [`TraceContext`] — wire-propagated
//!   request tracing: `traceparent`-style context parsed from (and
//!   echoed onto) the serve protocol, spans covering queue wait, lock
//!   acquisition and the engine call, collected in a sharded
//!   drop-oldest ring with counted evictions and a runtime sampling
//!   rate. Engine-call spans are stamped with the decision's
//!   [`DecisionId`](crate::id::DecisionId), joining traces to the
//!   flight-recorder/audit/exemplar evidence. Deliberately *not*
//!   compiled out by `telemetry-off` (propagation is a wire contract).
//! * [`QuantileSketch`] — a fixed-memory HDR-style streaming sketch
//!   giving p50/p95/p99 for end-to-end decide latency and for each of
//!   the five mediation stages, fed continuously by the sampled path
//!   (see [`MetricsRegistry::observe_trace`]) and exported as summary
//!   families.
//! * [`Exporter`] — renders a [`MetricsSnapshot`] as Prometheus text
//!   ([`PrometheusExporter`]) or JSON ([`JsonExporter`]); snapshots
//!   support [`delta`](MetricsSnapshot::delta) for diffing two points
//!   in time.
//! * [`RuleHeat`] — sharded per-rule heat counters (matches, wins by
//!   effect, last-fired generation) fed by every compiled decision;
//!   joined with the static [`analysis`](crate::analysis) report into
//!   a [`PolicyHealthReport`](crate::analysis::PolicyHealthReport).
//! * [`DecisionWatchdog`] — pull-model anomaly detection over the
//!   registry's decision-stream counters (deny rate, degraded rate,
//!   env-role flaps, staleness burn) with EWMA baselines and
//!   structured [`AlertRecord`]s.
//! * [`EventBus`] — the push plane: a bounded multi-subscriber
//!   broadcast of typed [`TelemetryEvent`]s (decisions with their
//!   effect and id, watchdog alerts, degraded-mode edges, policy-delta
//!   installs, completed spans) with per-subscriber drop-oldest rings,
//!   exact `delivered + dropped == published` accounting, and a
//!   runtime kill switch. Publishing with nobody subscribed is a
//!   couple of relaxed loads.
//! * [`MetricsHistory`] — the time-series plane: a bounded ring of
//!   periodic [`MetricsSnapshot`] deltas with windowed rate queries
//!   (deny rate, decide throughput, degraded ppm) feeding the obs
//!   server's `/timeseries` endpoint and dashboard sparklines.
//!
//! Telemetry is **on by default and cheap**: every counter update is a
//! single relaxed atomic operation, decision latency is sampled (one
//! in [`MetricsRegistry::latency_sample_rate`] decisions — default
//! [`MetricsRegistry::DEFAULT_LATENCY_SAMPLE`], runtime-configurable —
//! pays for the clock reads and the stage trace), and the whole
//! subsystem compiles to no-ops under the `telemetry-off` feature.
//! Experiment E10 in EXPERIMENTS.md holds the default-on overhead
//! under 5% on the E5 1024-rule workload.

mod events;
mod export;
mod health;
mod heat;
mod history;
mod metrics;
mod sketch;
mod span;
mod trace;

pub use crate::delta::DeltaKind;
pub use events::{
    EventBus, EventData, EventFilter, EventKind, EventSubscription, Severity, TelemetryEvent,
};
pub use export::{Exporter, JsonExporter, PrometheusExporter};
pub use health::{AlertKind, AlertRecord, DecisionWatchdog, WatchdogConfig};
pub use heat::{RuleHeat, RuleHeatEntry, RuleHeatSnapshot};
pub use history::{HistoryWindow, MetricsHistory};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, KeyedCounter, KeyedSnapshot, MetricsRegistry,
    MetricsSnapshot, QuantileSnapshot, SummaryFamily,
};
pub use sketch::{Exemplar, QuantileSketch, SketchSnapshot};
pub use span::{
    assemble_trace, monotonic_nanos, otlp_value, unix_nanos_at, Span, SpanId, SpanKind, SpanStatus,
    SpanStore, SpanTree, TraceContext, TraceId,
};
pub use trace::{DecisionTrace, Stage, StageRecord};

pub(crate) use trace::{NoTrace, TraceCollector, TraceSink};

/// True when the crate was built with telemetry enabled (the default).
///
/// With the `telemetry-off` feature every counter, gauge and histogram
/// update compiles to a no-op and all readings stay zero; downstream
/// tests can branch on this constant instead of duplicating the
/// feature gate.
pub const ENABLED: bool = cfg!(not(feature = "telemetry-off"));
