//! Stage-by-stage tracing of a single mediation.
//!
//! [`Grbac::decide_traced`](crate::engine::Grbac::decide_traced) runs
//! the *same* monomorphized decision code as
//! [`decide`](crate::engine::Grbac::decide) — the engine is generic
//! over a [`TraceSink`], and the no-op sink ([`NoTrace`]) erases every
//! tracing call at compile time, so the traced and untraced paths
//! cannot diverge in behaviour, only in what they record.

use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::id::DecisionId;

/// The stages of one mediation, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Stage {
    /// Expanding the subject's roles through the hierarchy (or merging
    /// sensed claims / session activations).
    SubjectExpansion,
    /// Expanding the object's roles through the hierarchy.
    ObjectExpansion,
    /// Evaluating which environment roles are active for the request.
    EnvironmentEvaluation,
    /// Merging the transaction's candidate rule buckets and testing
    /// each candidate for applicability.
    CandidateMerge,
    /// Resolving the matched rules through the conflict strategy.
    PrecedenceResolution,
}

impl Stage {
    /// All stages in pipeline order.
    pub const ALL: [Stage; 5] = [
        Stage::SubjectExpansion,
        Stage::ObjectExpansion,
        Stage::EnvironmentEvaluation,
        Stage::CandidateMerge,
        Stage::PrecedenceResolution,
    ];

    /// A stable, lowercase name for display and export.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::SubjectExpansion => "subject_expansion",
            Stage::ObjectExpansion => "object_expansion",
            Stage::EnvironmentEvaluation => "environment_evaluation",
            Stage::CandidateMerge => "candidate_merge",
            Stage::PrecedenceResolution => "precedence_resolution",
        }
    }
}

/// One recorded stage of a [`DecisionTrace`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageRecord {
    /// Which stage this record covers.
    pub stage: Stage,
    /// Wall-clock nanoseconds spent in the stage.
    pub nanos: u64,
    /// Items processed: roles expanded, environment roles active,
    /// candidate rules examined, or matched rules resolved, depending
    /// on the stage.
    pub items: u64,
}

/// A stage-by-stage account of one mediation.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecisionTrace {
    /// The correlation id minted for the traced decision
    /// ([`DecisionId::UNASSIGNED`] on traces deserialized from older
    /// captures).
    #[serde(default)]
    pub decision_id: DecisionId,
    /// The recorded stages, in execution order.
    pub stages: Vec<StageRecord>,
    /// Total wall-clock nanoseconds for the whole decision.
    pub total_nanos: u64,
}

impl DecisionTrace {
    /// The record for `stage`, if that stage ran.
    #[must_use]
    pub fn stage(&self, stage: Stage) -> Option<&StageRecord> {
        self.stages.iter().find(|record| record.stage == stage)
    }

    /// A plain-text table of the trace (one line per stage).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.decision_id.is_assigned() {
            out.push_str(&format!("decision {}\n", self.decision_id));
        }
        out.push_str("stage                    items        ns\n");
        for record in &self.stages {
            out.push_str(&format!(
                "{:<24} {:>5} {:>9}\n",
                record.stage.name(),
                record.items,
                record.nanos
            ));
        }
        out.push_str(&format!(
            "{:<24} {:>5} {:>9}\n",
            "total", "", self.total_nanos
        ));
        out
    }
}

/// Compile-time switch between traced and untraced mediation.
///
/// `decide_with_index` is generic over this trait; with [`NoTrace`]
/// (`ACTIVE == false`) every call below is trivially inlined away, so
/// the untraced path pays nothing.
pub(crate) trait TraceSink {
    /// Whether this sink records anything at all.
    const ACTIVE: bool;

    /// Marks the beginning of `stage`. Returns the stage start time
    /// when active.
    fn enter(&mut self, stage: Stage) -> Option<Instant>;

    /// Completes `stage` with its item count.
    fn exit(&mut self, stage: Stage, started: Option<Instant>, items: u64);
}

/// The no-op sink used by the plain `decide` path.
pub(crate) struct NoTrace;

impl TraceSink for NoTrace {
    const ACTIVE: bool = false;

    #[inline(always)]
    fn enter(&mut self, _stage: Stage) -> Option<Instant> {
        None
    }

    #[inline(always)]
    fn exit(&mut self, _stage: Stage, _started: Option<Instant>, _items: u64) {}
}

/// The recording sink used by `decide_traced`.
#[derive(Default)]
pub(crate) struct TraceCollector {
    stages: Vec<StageRecord>,
}

impl TraceCollector {
    /// Consumes the collector into a finished trace.
    pub(crate) fn finish(self, started: Instant) -> DecisionTrace {
        DecisionTrace {
            decision_id: DecisionId::UNASSIGNED,
            stages: self.stages,
            total_nanos: u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
        }
    }
}

impl TraceSink for TraceCollector {
    const ACTIVE: bool = true;

    fn enter(&mut self, _stage: Stage) -> Option<Instant> {
        Some(Instant::now())
    }

    fn exit(&mut self, stage: Stage, started: Option<Instant>, items: u64) {
        let nanos = started.map_or(0, |start| {
            u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
        });
        self.stages.push(StageRecord {
            stage,
            nanos,
            items,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_records_stages_in_order() {
        let mut sink = TraceCollector::default();
        let begun = Instant::now();
        for (index, stage) in Stage::ALL.into_iter().enumerate() {
            let started = sink.enter(stage);
            sink.exit(stage, started, index as u64);
        }
        let trace = sink.finish(begun);
        assert_eq!(trace.stages.len(), 5);
        assert_eq!(
            trace.stages.iter().map(|r| r.stage).collect::<Vec<_>>(),
            Stage::ALL.to_vec()
        );
        assert_eq!(trace.stage(Stage::CandidateMerge).unwrap().items, 3);
        let rendered = trace.render();
        assert!(rendered.contains("subject_expansion"));
        assert!(rendered.contains("total"));
    }

    #[test]
    fn no_trace_is_inert() {
        let mut sink = NoTrace;
        assert!(sink.enter(Stage::CandidateMerge).is_none());
        sink.exit(Stage::CandidateMerge, None, 42);
        const { assert!(!NoTrace::ACTIVE) };
    }
}
