//! A fixed-memory time-series plane over the metrics registry.
//!
//! Scrape-based exporters see levels; operators asking "is the deny
//! rate climbing *right now*?" need derivatives. [`MetricsHistory`]
//! keeps a bounded ring of periodic [`MetricsSnapshot`] deltas —
//! each window is one [`MetricsSnapshot::delta`] against the previous
//! capture, stamped with its real elapsed time — and answers windowed
//! rate queries (deny rate, decide throughput, degraded ppm) plus
//! arbitrary per-window counter series for dashboards.
//!
//! The store is pull-fed: some ticker (the obs server's telemetry
//! pump, a test, an experiment harness) calls [`MetricsHistory::record`]
//! on its own schedule. Recording off-schedule is harmless — every
//! window carries its own `elapsed_ns`, so rates stay honest even
//! when capture intervals wobble.

use std::collections::VecDeque;
use std::sync::Mutex;

use super::metrics::MetricsSnapshot;
use super::span::monotonic_nanos;

/// One captured window: the counter movement since the previous
/// capture and how long that took.
#[derive(Debug, Clone)]
pub struct HistoryWindow {
    /// 1-based capture index (monotonic; survives ring eviction).
    pub index: u64,
    /// Monotonic capture time in nanoseconds.
    pub nanos: u64,
    /// Time since the previous capture in nanoseconds (never 0).
    pub elapsed_ns: u64,
    /// This capture minus the previous one
    /// ([`MetricsSnapshot::delta`]: counters subtract, gauges keep
    /// their level).
    pub delta: MetricsSnapshot,
}

#[derive(Debug)]
struct HistoryInner {
    last: Option<(MetricsSnapshot, u64)>,
    windows: VecDeque<HistoryWindow>,
    captures: u64,
    evicted: u64,
}

/// A bounded ring of periodic metrics-snapshot deltas with windowed
/// rate queries.
#[derive(Debug)]
pub struct MetricsHistory {
    capacity: usize,
    inner: Mutex<HistoryInner>,
}

impl MetricsHistory {
    /// Default ring capacity: enough for ~2 minutes of 500 ms windows.
    pub const DEFAULT_CAPACITY: usize = 256;

    /// An empty history retaining up to `capacity` windows (clamped to
    /// at least 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            inner: Mutex::new(HistoryInner {
                last: None,
                windows: VecDeque::new(),
                captures: 0,
                evicted: 0,
            }),
        }
    }

    /// The ring's capacity in windows.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Captures one snapshot, stamped with the monotonic clock. The
    /// first capture only seeds the baseline and produces no window;
    /// every later capture appends (and returns) the delta window.
    pub fn record(&self, snapshot: MetricsSnapshot) -> Option<HistoryWindow> {
        self.record_at(snapshot, monotonic_nanos())
    }

    /// Like [`Self::record`] with an explicit capture timestamp
    /// (tests and replay tooling drive this directly).
    pub fn record_at(&self, snapshot: MetricsSnapshot, nanos: u64) -> Option<HistoryWindow> {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let (previous, previous_nanos) = inner.last.replace((snapshot, nanos))?;
        let (current, _) = inner.last.as_ref().expect("just replaced");
        let delta = current.delta(&previous);
        inner.captures += 1;
        let window = HistoryWindow {
            index: inner.captures,
            nanos,
            elapsed_ns: nanos.saturating_sub(previous_nanos).max(1),
            delta,
        };
        if inner.windows.len() >= self.capacity {
            inner.windows.pop_front();
            inner.evicted += 1;
        }
        inner.windows.push_back(window.clone());
        Some(window)
    }

    /// Windows currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .windows
            .len()
    }

    /// True when no window has been captured yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Windows evicted by the ring so far.
    #[must_use]
    pub fn evicted(&self) -> u64 {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .evicted
    }

    /// The last `windows` captured windows, oldest first (fewer when
    /// the ring holds fewer).
    #[must_use]
    pub fn windows(&self, windows: usize) -> Vec<HistoryWindow> {
        let inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let skip = inner.windows.len().saturating_sub(windows);
        inner.windows.iter().skip(skip).cloned().collect()
    }

    /// Sum of a counter's per-window deltas over the last `windows`
    /// windows.
    #[must_use]
    pub fn counter_sum(&self, name: &str, windows: usize) -> u64 {
        self.windows(windows)
            .iter()
            .map(|w| w.delta.counter(name))
            .sum()
    }

    /// Denies as a fraction of decisions over the last `windows`
    /// windows (0 when no decisions landed).
    #[must_use]
    pub fn deny_rate(&self, windows: usize) -> f64 {
        let recent = self.windows(windows);
        let denies: u64 = recent
            .iter()
            .map(|w| w.delta.counter("grbac_decisions_deny_total"))
            .sum();
        let permits: u64 = recent
            .iter()
            .map(|w| w.delta.counter("grbac_decisions_permit_total"))
            .sum();
        let decisions = denies + permits;
        if decisions == 0 {
            0.0
        } else {
            denies as f64 / decisions as f64
        }
    }

    /// Decisions per second over the last `windows` windows (0 when
    /// nothing was captured).
    #[must_use]
    pub fn decide_throughput(&self, windows: usize) -> f64 {
        let recent = self.windows(windows);
        let decisions: u64 = recent
            .iter()
            .map(|w| {
                w.delta.counter("grbac_decisions_deny_total")
                    + w.delta.counter("grbac_decisions_permit_total")
            })
            .sum();
        let elapsed: u64 = recent.iter().map(|w| w.elapsed_ns).sum();
        if elapsed == 0 {
            0.0
        } else {
            decisions as f64 * 1e9 / elapsed as f64
        }
    }

    /// Degraded decisions in parts per million of all decisions over
    /// the last `windows` windows.
    #[must_use]
    pub fn degraded_ppm(&self, windows: usize) -> u64 {
        let recent = self.windows(windows);
        let degraded: u64 = recent
            .iter()
            .map(|w| w.delta.counter("grbac_decisions_degraded_total"))
            .sum();
        let decisions: u64 = recent
            .iter()
            .map(|w| {
                w.delta.counter("grbac_decisions_deny_total")
                    + w.delta.counter("grbac_decisions_permit_total")
            })
            .sum();
        if decisions == 0 {
            0
        } else {
            ((degraded as f64 / decisions as f64) * 1e6).round() as u64
        }
    }

    /// A named per-window series over the last `windows` windows,
    /// oldest first. Derived names:
    ///
    /// * `deny_rate_ppm` — per-window denies / decisions, in ppm
    /// * `decide_per_sec` — per-window decisions over elapsed time
    /// * `degraded_ppm` — per-window degraded decisions, in ppm
    ///
    /// Any other name reads that counter's per-window delta (a gauge
    /// name reads the gauge's level at the window's close). Returns
    /// `None` for a name that is neither derived nor present in any
    /// retained window.
    #[must_use]
    pub fn series(&self, name: &str, windows: usize) -> Option<Vec<f64>> {
        let recent = self.windows(windows);
        let decisions = |w: &HistoryWindow| {
            w.delta.counter("grbac_decisions_deny_total")
                + w.delta.counter("grbac_decisions_permit_total")
        };
        let ppm = |part: u64, whole: u64| {
            if whole == 0 {
                0.0
            } else {
                (part as f64 / whole as f64) * 1e6
            }
        };
        match name {
            "deny_rate_ppm" => Some(
                recent
                    .iter()
                    .map(|w| ppm(w.delta.counter("grbac_decisions_deny_total"), decisions(w)))
                    .collect(),
            ),
            "decide_per_sec" => Some(
                recent
                    .iter()
                    .map(|w| decisions(w) as f64 * 1e9 / w.elapsed_ns as f64)
                    .collect(),
            ),
            "degraded_ppm" => Some(
                recent
                    .iter()
                    .map(|w| {
                        ppm(
                            w.delta.counter("grbac_decisions_degraded_total"),
                            decisions(w),
                        )
                    })
                    .collect(),
            ),
            _ => {
                let known = recent.iter().any(|w| {
                    w.delta.counters.contains_key(name) || w.delta.gauges.contains_key(name)
                });
                known.then(|| {
                    recent
                        .iter()
                        .map(|w| {
                            w.delta
                                .counters
                                .get(name)
                                .or_else(|| w.delta.gauges.get(name))
                                .copied()
                                .unwrap_or(0) as f64
                        })
                        .collect()
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::MetricsRegistry;
    use super::*;

    const SECOND: u64 = 1_000_000_000;

    #[test]
    fn first_capture_seeds_later_captures_window() {
        let registry = MetricsRegistry::new();
        let history = MetricsHistory::new(8);
        assert!(history.record_at(registry.snapshot(), SECOND).is_none());
        registry.decisions_permit.add(10);
        let window = history
            .record_at(registry.snapshot(), 2 * SECOND)
            .expect("second capture yields a window");
        assert_eq!(window.index, 1);
        assert_eq!(window.elapsed_ns, SECOND);
        if super::super::ENABLED {
            assert_eq!(window.delta.counter("grbac_decisions_permit_total"), 10);
        }
        assert_eq!(history.len(), 1);
    }

    #[test]
    fn ring_evicts_oldest_windows() {
        let registry = MetricsRegistry::new();
        let history = MetricsHistory::new(2);
        history.record_at(registry.snapshot(), SECOND);
        for i in 0..4u64 {
            registry.decisions_permit.inc();
            history.record_at(registry.snapshot(), (i + 2) * SECOND);
        }
        assert_eq!(history.len(), 2);
        assert_eq!(history.evicted(), 2);
        let windows = history.windows(10);
        assert_eq!(
            windows.iter().map(|w| w.index).collect::<Vec<_>>(),
            vec![3, 4]
        );
    }

    #[test]
    fn windowed_rates_reflect_recent_traffic() {
        let registry = MetricsRegistry::new();
        let history = MetricsHistory::new(16);
        history.record_at(registry.snapshot(), SECOND);
        // Window 1: 75 permits, 25 denies over one second.
        registry.decisions_permit.add(75);
        registry.decisions_deny.add(25);
        history.record_at(registry.snapshot(), 2 * SECOND);
        // Window 2: 50 permits, 50 denies, 10 degraded over two seconds.
        registry.decisions_permit.add(50);
        registry.decisions_deny.add(50);
        registry.decisions_degraded.add(10);
        history.record_at(registry.snapshot(), 4 * SECOND);
        if !super::super::ENABLED {
            assert!(history.deny_rate(8) < f64::EPSILON);
            return;
        }
        // Last window only: 50/100 denies.
        assert!((history.deny_rate(1) - 0.5).abs() < 1e-9);
        // Both windows: 75/200 denies.
        assert!((history.deny_rate(8) - 0.375).abs() < 1e-9);
        // 200 decisions over 3 seconds.
        assert!((history.decide_throughput(8) - 200.0 / 3.0).abs() < 1e-6);
        // 10 degraded / 200 decisions = 50_000 ppm.
        assert_eq!(history.degraded_ppm(8), 50_000);
        assert_eq!(history.counter_sum("grbac_decisions_deny_total", 8), 75);
    }

    #[test]
    fn named_series_cover_derived_and_raw_names() {
        let registry = MetricsRegistry::new();
        let history = MetricsHistory::new(16);
        history.record_at(registry.snapshot(), SECOND);
        registry.decisions_permit.add(40);
        registry.decisions_deny.add(10);
        history.record_at(registry.snapshot(), 2 * SECOND);
        if !super::super::ENABLED {
            return;
        }
        let deny = history.series("deny_rate_ppm", 8).expect("derived series");
        assert_eq!(deny.len(), 1);
        assert!((deny[0] - 200_000.0).abs() < 1e-6);
        let throughput = history.series("decide_per_sec", 8).expect("derived series");
        assert!((throughput[0] - 50.0).abs() < 1e-6);
        let raw = history
            .series("grbac_decisions_deny_total", 8)
            .expect("raw counter series");
        assert!((raw[0] - 10.0).abs() < f64::EPSILON);
        assert!(history.series("no_such_series", 8).is_none());
    }
}
