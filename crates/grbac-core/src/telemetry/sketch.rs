//! A streaming quantile sketch for latency profiling.
//!
//! The fixed-bucket [`Histogram`](super::Histogram) answers "how many
//! observations fell under each bound" for a handful of hand-picked
//! bounds; operators asking "what is p99 right now" need finer
//! resolution without unbounded memory. [`QuantileSketch`] is an
//! HDR-style log-linear sketch: values are bucketed by their power of
//! two and 16 linear sub-buckets within it, so any quantile can be read
//! back with a bounded **relative** error of one sixteenth of a bucket
//! (≈3% at the bucket midpoint), from a fixed 976-slot table of relaxed
//! atomics. No dependencies, no locks, no allocation after
//! construction — the same contract as the rest of the registry.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use super::ENABLED;
use crate::id::DecisionId;

/// Linear sub-buckets per power-of-two octave (4 significant bits).
const SUB: u64 = 16;
/// Bucket count: 16 exact slots for values below 16, then 16 slots per
/// octave for exponents 4..=63.
const BUCKETS: usize = 976;

/// Maps a value to its bucket index.
fn bucket_index(value: u64) -> usize {
    if value < SUB {
        value as usize
    } else {
        let exponent = 63 - u64::from(value.leading_zeros());
        (((exponent - 3) * SUB) + ((value >> (exponent - 4)) & (SUB - 1))) as usize
    }
}

/// The representative (midpoint) value of a bucket.
fn bucket_value(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB {
        return index;
    }
    let exponent = (index / SUB) + 3;
    let sub = index % SUB;
    let lower = (1u64 << exponent) + (sub << (exponent - 4));
    let width = 1u64 << (exponent - 4);
    lower + (width - 1) / 2
}

/// A fixed-memory streaming quantile sketch over `u64` observations.
///
/// Observation is one relaxed `fetch_add` on the bucket plus four on
/// the scalar accumulators; snapshots are wait-free copies. Under the
/// `telemetry-off` feature every update compiles to a no-op.
#[derive(Debug)]
pub struct QuantileSketch {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    /// Last exemplar epoch seen (all ids minted by one engine share an
    /// epoch, so one sketch-level slot suffices; last-writer-wins).
    exemplar_epoch: AtomicU64,
    /// Per-bucket last exemplar id sequence (0 = no exemplar yet).
    exemplar_seq: Vec<AtomicU64>,
    /// Per-bucket value observed alongside the last exemplar.
    exemplar_value: Vec<AtomicU64>,
}

impl QuantileSketch {
    /// An empty sketch.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            exemplar_epoch: AtomicU64::new(0),
            exemplar_seq: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            exemplar_value: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        if !ENABLED {
            return;
        }
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records one observation and retains `exemplar` as the bucket's
    /// last-seen correlated decision (Prometheus-exemplar style). The
    /// exemplar slots are independent relaxed stores — concurrent
    /// writers may interleave epoch/seq/value from different
    /// observations, which is benign: any retained combination still
    /// names a real recent decision in that latency bucket.
    pub fn observe_with_exemplar(&self, value: u64, exemplar: DecisionId) {
        self.observe(value);
        if !ENABLED || !exemplar.is_assigned() {
            return;
        }
        let slot = bucket_index(value);
        self.exemplar_epoch
            .store(exemplar.epoch(), Ordering::Relaxed);
        self.exemplar_value[slot].store(value, Ordering::Relaxed);
        self.exemplar_seq[slot].store(exemplar.seq(), Ordering::Relaxed);
    }

    /// Observations recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the sketch state.
    #[must_use]
    pub fn snapshot(&self) -> SketchSnapshot {
        let epoch = self.exemplar_epoch.load(Ordering::Relaxed);
        let exemplars = self
            .exemplar_seq
            .iter()
            .enumerate()
            .filter_map(|(bucket, seq)| {
                let seq = seq.load(Ordering::Relaxed);
                (seq != 0).then(|| Exemplar {
                    bucket,
                    decision_id: DecisionId::from_parts(epoch, seq),
                    value: self.exemplar_value[bucket].load(Ordering::Relaxed),
                })
            })
            .collect();
        SketchSnapshot {
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            exemplars,
        }
    }
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new()
    }
}

/// A correlated sample retained by a sketch bucket: the last
/// [`DecisionId`] whose observation landed in that bucket, plus the
/// observed value (Prometheus/OpenMetrics exemplar semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Exemplar {
    /// The sketch bucket the exemplar belongs to.
    pub bucket: usize,
    /// The correlation id of the retained decision.
    pub decision_id: DecisionId,
    /// The value observed for that decision (nanoseconds for the
    /// latency sketches).
    pub value: u64,
}

/// A point-in-time copy of a [`QuantileSketch`], supporting quantile
/// reads, merging and diffing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SketchSnapshot {
    /// Per-bucket observation counts (fixed log-linear layout).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Retained exemplars, sparse and ascending by bucket (empty for
    /// snapshots serialized before exemplars existed).
    #[serde(default)]
    pub exemplars: Vec<Exemplar>,
}

impl SketchSnapshot {
    /// The exemplar whose bucket lies closest to the bucket holding
    /// quantile `q`, if any exemplar was retained. This is the id a
    /// text exporter attaches to the `q` quantile line: a real recent
    /// decision whose latency is representative of that quantile.
    #[must_use]
    pub fn exemplar_near(&self, q: f64) -> Option<Exemplar> {
        if self.exemplars.is_empty() || self.count == 0 {
            return None;
        }
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        let mut target = self.counts.len().saturating_sub(1);
        for (index, &bucket) in self.counts.iter().enumerate() {
            cumulative += bucket;
            if cumulative >= rank {
                target = index;
                break;
            }
        }
        self.exemplars
            .iter()
            .min_by_key(|exemplar| exemplar.bucket.abs_diff(target))
            .copied()
    }
    /// The value at quantile `q` in `[0, 1]`: the midpoint of the
    /// bucket holding the rank-`⌈q·count⌉` observation, clamped to the
    /// observed `[min, max]` range. Returns 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (index, &bucket) in self.counts.iter().enumerate() {
            cumulative += bucket;
            if cumulative >= rank {
                return bucket_value(index).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Mean observed value (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The union of this snapshot and another (e.g. two engines'
    /// sketches aggregated for one dashboard). For buckets where both
    /// sides retained an exemplar, `self`'s wins (exemplars are "a
    /// recent representative", not an aggregate).
    #[must_use]
    pub fn merge(&self, other: &SketchSnapshot) -> SketchSnapshot {
        let mut exemplars = self.exemplars.clone();
        for exemplar in &other.exemplars {
            if !exemplars.iter().any(|e| e.bucket == exemplar.bucket) {
                exemplars.push(*exemplar);
            }
        }
        exemplars.sort_by_key(|e| e.bucket);
        SketchSnapshot {
            counts: self
                .counts
                .iter()
                .zip(&other.counts)
                .map(|(a, b)| a + b)
                .collect(),
            count: self.count + other.count,
            sum: self.sum + other.sum,
            min: self.min.min(other.min),
            max: self.max.max(other.max),
            exemplars,
        }
    }

    /// This snapshot minus an `earlier` one (saturating): the
    /// observations that arrived in between. `min`/`max` and the
    /// exemplars keep this snapshot's cumulative values — the sketch
    /// does not retain enough to window them.
    #[must_use]
    pub fn delta(&self, earlier: &SketchSnapshot) -> SketchSnapshot {
        SketchSnapshot {
            counts: self
                .counts
                .iter()
                .zip(&earlier.counts)
                .map(|(now, was)| now.saturating_sub(*was))
                .collect(),
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            min: self.min,
            max: self.max,
            exemplars: self.exemplars.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_monotone_and_total() {
        let mut last = 0;
        for value in (0..4096u64).chain([u64::MAX / 3, u64::MAX - 1, u64::MAX]) {
            let index = bucket_index(value);
            assert!(index < BUCKETS, "index {index} out of range for {value}");
            assert!(index >= last || value < 4096, "indices must not regress");
            last = index;
            let mid = bucket_value(index);
            if value >= SUB {
                // Midpoint stays within 1/16 relative error of the value.
                let err = mid.abs_diff(value) as f64 / value as f64;
                assert!(err <= 1.0 / 16.0, "value {value} mid {mid} err {err}");
            } else {
                assert_eq!(mid, value);
            }
        }
    }

    #[test]
    fn quantiles_on_uniform_distribution() {
        let sketch = QuantileSketch::new();
        for v in 1..=10_000u64 {
            sketch.observe(v);
        }
        let snap = sketch.snapshot();
        if !ENABLED {
            assert_eq!(snap.count, 0);
            assert_eq!(snap.quantile(0.5), 0);
            return;
        }
        assert_eq!(snap.count, 10_000);
        assert_eq!(snap.min, 1);
        assert_eq!(snap.max, 10_000);
        for (q, exact) in [(0.5, 5_000.0), (0.95, 9_500.0), (0.99, 9_900.0)] {
            let got = snap.quantile(q) as f64;
            let err = (got - exact).abs() / exact;
            assert!(err <= 0.07, "q{q}: got {got}, exact {exact}, err {err}");
        }
        assert!((snap.mean() - 5_000.5).abs() < 1.0);
    }

    #[test]
    fn quantiles_on_bimodal_distribution() {
        let sketch = QuantileSketch::new();
        // 90% fast (~100), 10% slow (~100_000): p50 sits in the fast
        // mode, p95 and p99 in the slow one.
        for _ in 0..900 {
            sketch.observe(100);
        }
        for _ in 0..100 {
            sketch.observe(100_000);
        }
        let snap = sketch.snapshot();
        if !ENABLED {
            return;
        }
        assert!(snap.quantile(0.5).abs_diff(100) <= 7);
        assert!(snap.quantile(0.95).abs_diff(100_000) as f64 / 100_000.0 <= 0.07);
        assert!(snap.quantile(0.99).abs_diff(100_000) as f64 / 100_000.0 <= 0.07);
    }

    #[test]
    fn merge_equals_observing_everything_in_one_sketch() {
        let left = QuantileSketch::new();
        let right = QuantileSketch::new();
        let whole = QuantileSketch::new();
        for v in 1..=500u64 {
            left.observe(v);
            whole.observe(v);
        }
        for v in 501..=1_000u64 {
            right.observe(v * 7);
            whole.observe(v * 7);
        }
        let merged = left.snapshot().merge(&right.snapshot());
        assert_eq!(merged, whole.snapshot());
    }

    #[test]
    fn delta_isolates_the_window() {
        let sketch = QuantileSketch::new();
        for _ in 0..100 {
            sketch.observe(10);
        }
        let before = sketch.snapshot();
        for _ in 0..50 {
            sketch.observe(1_000);
        }
        let delta = sketch.snapshot().delta(&before);
        if !ENABLED {
            return;
        }
        assert_eq!(delta.count, 50);
        assert_eq!(delta.sum, 50_000);
        // Every windowed observation was 1000, so all quantiles agree.
        assert!(delta.quantile(0.5).abs_diff(1_000) as f64 / 1_000.0 <= 0.07);
        assert!(delta.quantile(0.99).abs_diff(1_000) as f64 / 1_000.0 <= 0.07);
    }

    #[test]
    fn exemplars_track_buckets_and_resolve_near_quantiles() {
        let sketch = QuantileSketch::new();
        // Fast mode carries one exemplar, slow mode another.
        let fast = DecisionId::from_parts(7, 100);
        let slow = DecisionId::from_parts(7, 200);
        for _ in 0..90 {
            sketch.observe_with_exemplar(100, fast);
        }
        for _ in 0..10 {
            sketch.observe_with_exemplar(100_000, slow);
        }
        // Unassigned ids never become exemplars.
        sketch.observe_with_exemplar(100, DecisionId::UNASSIGNED);
        let snap = sketch.snapshot();
        if !ENABLED {
            assert!(snap.exemplars.is_empty());
            assert!(snap.exemplar_near(0.5).is_none());
            return;
        }
        assert_eq!(snap.exemplars.len(), 2);
        let p50 = snap.exemplar_near(0.5).unwrap();
        assert_eq!(p50.decision_id, fast);
        assert_eq!(p50.value, 100);
        let p99 = snap.exemplar_near(0.99).unwrap();
        assert_eq!(p99.decision_id, slow);
        assert_eq!(p99.value, 100_000);
        // Exemplars survive a snapshot round-trip through serde.
        let json = serde_json::to_string(&snap).unwrap();
        let back: SketchSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn empty_sketch_reads_zero() {
        let snap = QuantileSketch::new().snapshot();
        assert_eq!(snap.quantile(0.5), 0);
        assert!((snap.mean() - 0.0).abs() < f64::EPSILON);
    }
}
