//! Rendering a [`MetricsSnapshot`] for external consumption.
//!
//! Both exporters are zero-dependency: the Prometheus exporter emits
//! the text exposition format by hand, and the JSON exporter writes
//! JSON directly (escaping is the only subtlety) so it works even when
//! the snapshot is consumed somewhere without the vendored
//! `serde_json`. Both render the *same* snapshot — a test in this
//! module holds them to identical contents.

use std::fmt::Write as _;

use super::metrics::MetricsSnapshot;

/// Renders a [`MetricsSnapshot`] into some textual wire format.
pub trait Exporter {
    /// The MIME content type of [`Self::export`]'s output.
    fn content_type(&self) -> &'static str;

    /// Renders the snapshot.
    fn export(&self, snapshot: &MetricsSnapshot) -> String;
}

/// The Prometheus text exposition format (version 0.0.4).
///
/// Counters render as `# TYPE <name> counter` plus a sample; gauges
/// likewise; histograms render cumulative `_bucket{le="…"}` samples
/// plus `_sum` and `_count`; keyed families render one labelled sample
/// per key.
#[derive(Debug, Clone, Copy, Default)]
pub struct PrometheusExporter;

impl Exporter for PrometheusExporter {
    fn content_type(&self) -> &'static str {
        "text/plain; version=0.0.4"
    }

    fn export(&self, snapshot: &MetricsSnapshot) -> String {
        let mut out = String::new();
        for (name, value) in &snapshot.counters {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, value) in &snapshot.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, histogram) in &snapshot.histograms {
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for (bound, count) in histogram.bounds.iter().zip(&histogram.counts) {
                cumulative += count;
                if *bound == u64::MAX {
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                } else {
                    let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
                }
            }
            let _ = writeln!(out, "{name}_sum {}", histogram.sum);
            let _ = writeln!(out, "{name}_count {}", histogram.count);
        }
        for (name, family) in &snapshot.keyed {
            let _ = writeln!(out, "# TYPE {name} counter");
            for (key, value) in &family.values {
                let _ = writeln!(
                    out,
                    "{name}{{{}=\"{}\"}} {value}",
                    family.label,
                    escape_label(key)
                );
            }
        }
        out
    }
}

/// A compact JSON rendering of the snapshot.
///
/// The layout mirrors [`MetricsSnapshot`]'s fields: top-level objects
/// `counters`, `gauges`, `histograms` (each with `bounds`, `counts`,
/// `sum`, `count`), and `keyed` (each with `label` and `values`).
/// Metric names are the JSON object keys — plain nested objects, not
/// pair lists — so any JSON consumer can index straight into a series.
/// Keys appear in sorted order, matching the snapshot's `BTreeMap`s.
#[derive(Debug, Clone, Copy, Default)]
pub struct JsonExporter;

impl Exporter for JsonExporter {
    fn content_type(&self) -> &'static str {
        "application/json"
    }

    fn export(&self, snapshot: &MetricsSnapshot) -> String {
        let mut out = String::from("{");

        out.push_str("\"counters\":{");
        push_entries(&mut out, snapshot.counters.iter(), |out, (name, value)| {
            let _ = write!(out, "{}:{value}", json_string(name));
        });
        out.push_str("},");

        out.push_str("\"gauges\":{");
        push_entries(&mut out, snapshot.gauges.iter(), |out, (name, value)| {
            let _ = write!(out, "{}:{value}", json_string(name));
        });
        out.push_str("},");

        out.push_str("\"histograms\":{");
        push_entries(
            &mut out,
            snapshot.histograms.iter(),
            |out, (name, histogram)| {
                let _ = write!(out, "{}:{{\"bounds\":[", json_string(name));
                push_entries(out, histogram.bounds.iter(), |out, bound| {
                    let _ = write!(out, "{bound}");
                });
                out.push_str("],\"counts\":[");
                push_entries(out, histogram.counts.iter(), |out, count| {
                    let _ = write!(out, "{count}");
                });
                let _ = write!(
                    out,
                    "],\"sum\":{},\"count\":{}}}",
                    histogram.sum, histogram.count
                );
            },
        );
        out.push_str("},");

        out.push_str("\"keyed\":{");
        push_entries(&mut out, snapshot.keyed.iter(), |out, (name, family)| {
            let _ = write!(
                out,
                "{}:{{\"label\":{},\"values\":{{",
                json_string(name),
                json_string(&family.label)
            );
            push_entries(out, family.values.iter(), |out, (key, value)| {
                let _ = write!(out, "{}:{value}", json_string(key));
            });
            out.push_str("}}");
        });
        out.push_str("}}");

        out
    }
}

/// Writes comma-separated entries through `write_one`.
fn push_entries<I: Iterator>(
    out: &mut String,
    entries: I,
    write_one: impl Fn(&mut String, I::Item),
) {
    for (index, entry) in entries.enumerate() {
        if index > 0 {
            out.push(',');
        }
        write_one(out, entry);
    }
}

/// A JSON string literal with the mandatory escapes.
fn json_string(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + 2);
    out.push('"');
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Escapes a Prometheus label value (`\`, `"`, newline).
fn escape_label(raw: &str) -> String {
    raw.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::super::metrics::MetricsRegistry;
    use super::*;

    fn populated_snapshot() -> MetricsSnapshot {
        let registry = MetricsRegistry::new();
        registry.decisions_permit.add(3);
        registry.decisions_deny.add(1);
        registry.audit_retained.set(4);
        registry.batch_size.observe(10);
        registry.rule_matches_by_transaction.add(2, 5);
        registry.snapshot_with(|raw| format!("tx{raw}"))
    }

    #[test]
    fn prometheus_renders_every_series() {
        let text = PrometheusExporter.export(&populated_snapshot());
        if crate::telemetry::ENABLED {
            assert!(text.contains("# TYPE grbac_decisions_permit_total counter"));
            assert!(text.contains("grbac_decisions_permit_total 3"));
            assert!(text.contains("grbac_audit_retained 4"));
            assert!(text.contains("grbac_batch_size_bucket{le=\"16\"} 1"));
            assert!(text.contains("grbac_batch_size_bucket{le=\"+Inf\"} 1"));
            assert!(text.contains("grbac_batch_size_sum 10"));
            assert!(text.contains("grbac_rule_matches_total{transaction=\"tx2\"} 5"));
        }
        // Every line is a comment or `name[{labels}] value`.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.rsplit_once(' ').is_some(),
                "malformed line: {line}"
            );
        }
    }

    /// Navigates one key into a parsed JSON object.
    fn field<'a>(value: &'a serde_json::Value, key: &str) -> &'a serde_json::Value {
        match value {
            serde_json::Value::Map(fields) => fields
                .iter()
                .find(|(name, _)| name == key)
                .map(|(_, value)| value)
                .unwrap_or_else(|| panic!("missing field `{key}`")),
            other => panic!("expected object at `{key}`, got {other:?}"),
        }
    }

    /// Reads a parsed JSON number as `u64`.
    fn uint(value: &serde_json::Value) -> u64 {
        match value {
            serde_json::Value::UInt(u) => *u,
            serde_json::Value::Int(i) if *i >= 0 => *i as u64,
            other => panic!("expected unsigned number, got {other:?}"),
        }
    }

    #[test]
    fn json_parses_and_agrees_with_prometheus() {
        let snapshot = populated_snapshot();
        let json = JsonExporter.export(&snapshot);
        let parsed: serde_json::Value =
            serde_json::from_str(&json).expect("exporter emits valid JSON");
        if crate::telemetry::ENABLED {
            assert_eq!(
                uint(field(
                    field(&parsed, "counters"),
                    "grbac_decisions_permit_total"
                )),
                3
            );
            assert_eq!(
                uint(field(field(&parsed, "gauges"), "grbac_audit_retained")),
                4
            );
            let family = field(field(&parsed, "keyed"), "grbac_rule_matches_total");
            assert_eq!(uint(field(field(family, "values"), "tx2")), 5);
        }
        // Same snapshot → the same counter values in both formats.
        let text = PrometheusExporter.export(&snapshot);
        for (name, value) in &snapshot.counters {
            assert!(text.contains(&format!("{name} {value}")));
            assert_eq!(uint(field(field(&parsed, "counters"), name)), *value);
        }
        for (name, histogram) in &snapshot.histograms {
            let parsed_hist = field(field(&parsed, "histograms"), name);
            assert_eq!(uint(field(parsed_hist, "sum")), histogram.sum);
            assert_eq!(uint(field(parsed_hist, "count")), histogram.count);
            assert!(text.contains(&format!("{name}_sum {}", histogram.sum)));
            assert!(text.contains(&format!("{name}_count {}", histogram.count)));
        }
    }

    #[test]
    fn json_escapes_hostile_labels() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(escape_label("say \"hi\"\n"), "say \\\"hi\\\"\\n");
    }

    #[test]
    fn content_types() {
        assert_eq!(JsonExporter.content_type(), "application/json");
        assert!(PrometheusExporter.content_type().starts_with("text/plain"));
    }
}
