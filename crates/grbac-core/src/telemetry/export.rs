//! Rendering a [`MetricsSnapshot`] for external consumption.
//!
//! Both exporters are zero-dependency: the Prometheus exporter emits
//! the text exposition format by hand, and the JSON exporter writes
//! JSON directly (escaping is the only subtlety) so it works even when
//! the snapshot is consumed somewhere without the vendored
//! `serde_json`. Both render the *same* snapshot — a test in this
//! module holds them to identical contents.

use std::fmt::Write as _;

use super::metrics::MetricsSnapshot;

/// Renders a [`MetricsSnapshot`] into some textual wire format.
pub trait Exporter {
    /// The MIME content type of [`Self::export`]'s output.
    fn content_type(&self) -> &'static str;

    /// Renders the snapshot.
    fn export(&self, snapshot: &MetricsSnapshot) -> String;
}

/// The `# HELP` text for a metric name (a generic fallback keeps
/// unknown series conformant rather than silent).
fn help_for(name: &str) -> &'static str {
    match name {
        "grbac_decisions_permit_total" => "Decisions that resolved to permit.",
        "grbac_decisions_deny_total" => "Decisions that resolved to deny.",
        "grbac_decide_errors_total" => "Mediation calls that failed (unknown ids in the request).",
        "grbac_decide_sampled_total" => {
            "Decisions that were latency-sampled into the latency series."
        }
        "grbac_index_rebuilds_total" => {
            "Compiled-index installs at a new generation (delta applications plus full rebuilds)."
        }
        "grbac_index_rebuild_ns_total" => {
            "Nanoseconds spent on from-scratch compiled-index rebuilds."
        }
        "grbac_index_full_rebuilds_total" => {
            "Index installs that fell back to a from-scratch rebuild."
        }
        "grbac_index_delta_applied_total" => {
            "Policy deltas applied incrementally to the compiled index, by kind."
        }
        "grbac_index_delta_apply_ns" => {
            "Incremental delta-application latency (planning plus shard patching) in nanoseconds."
        }
        "grbac_index_cache_hits_total" => "Mediations served by an already-built index.",
        "grbac_closure_cache_hits_total" => "Role expansions served from the compiled index.",
        "grbac_closure_cache_misses_total" => "Role expansions computed per request.",
        "grbac_batch_calls_total" => "decide_batch() invocations.",
        "grbac_env_polls_total" => "Environment-provider snapshot evaluations.",
        "grbac_env_role_activations_total" => "Environment roles flipping inactive to active.",
        "grbac_env_role_deactivations_total" => "Environment roles flipping active to inactive.",
        "grbac_decisions_degraded_total" => "Decisions annotated with a degraded-mode reason.",
        "grbac_env_roles_dropped_stale_total" => {
            "Environment roles dropped past their staleness budget."
        }
        "grbac_env_provider_timeouts_total" => "Provider polls that failed with a timeout.",
        "grbac_env_provider_errors_total" => "Provider polls that failed with a transient error.",
        "grbac_env_provider_retries_total" => "Retry attempts after a failed provider poll.",
        "grbac_env_backoff_ms_total" => "Virtual milliseconds of retry backoff.",
        "grbac_env_stale_served_total" => "Polls answered from the last-known-good snapshot.",
        "grbac_env_unavailable_total" => "Polls with no snapshot to serve at all.",
        "grbac_env_breaker_opened_total" => "Circuit-breaker transitions into the open state.",
        "grbac_env_breaker_half_open_total" => {
            "Circuit-breaker transitions into the half-open state."
        }
        "grbac_env_breaker_closed_total" => "Circuit-breaker transitions back to closed.",
        "grbac_audit_permit_total" => "Audit permits ever recorded.",
        "grbac_audit_deny_total" => "Audit denies ever recorded.",
        "grbac_audit_evictions" => "Audit records dropped from retention.",
        "grbac_audit_retained" => "Audit records currently retained.",
        "grbac_index_roles" => "Declared roles in the current compiled index.",
        "grbac_index_rule_buckets" => "Transaction-keyed rule buckets in the compiled index.",
        "grbac_index_max_bucket" => "Largest rule bucket in the compiled index.",
        "grbac_env_breaker_state" => "Circuit-breaker state: 0 closed, 1 half-open, 2 open.",
        "grbac_decide_sample_rate" => "Latency sampling rate: one sample per this many decisions.",
        "grbac_decide_latency_ns" => "Sampled decide() latency in nanoseconds.",
        "grbac_batch_size" => "Requests per decide_batch() call.",
        "grbac_rule_matches_total" => "Matched rules per request, by transaction.",
        "grbac_labels_dropped_total" => {
            "Keyed-counter updates folded into the `other` bucket by the label-cardinality cap."
        }
        "grbac_rule_heat_matched_total" => "Decisions in which the rule was applicable, by rule.",
        "grbac_rule_heat_won_permit_total" => "Decisions the rule won with a permit, by rule.",
        "grbac_rule_heat_won_deny_total" => "Decisions the rule won with a deny, by rule.",
        "grbac_rule_heat_resets_total" => "Times the per-rule heat table was reset.",
        "grbac_rule_heat_enabled" => "Whether per-rule heat is being recorded (1) or not (0).",
        "grbac_alerts_total" => "Watchdog anomaly alerts raised, by kind.",
        "grbac_watchdog_ticks_total" => "Decision-stream watchdog evaluations.",
        "grbac_watchdog_deny_baseline_ppm" => {
            "Watchdog EWMA deny-rate baseline, parts per million."
        }
        "grbac_watchdog_degraded_baseline_ppm" => {
            "Watchdog EWMA degraded-rate baseline, parts per million."
        }
        "grbac_watchdog_flap_baseline_ppm" => {
            "Watchdog EWMA env-role flap-rate baseline, parts per million."
        }
        "grbac_watchdog_staleness_baseline_ppm" => {
            "Watchdog EWMA staleness-burn baseline, parts per million."
        }
        "grbac_stage_latency_ns" => "Sampled per-stage mediation latency in nanoseconds.",
        "grbac_events_published_total" => "Telemetry events broadcast on the event bus, by kind.",
        "grbac_events_dropped_total" => {
            "Telemetry events evicted from slow subscribers' drop-oldest rings."
        }
        "grbac_event_subscribers" => "Event-bus subscriptions currently active.",
        "grbac_events_enabled" => "Whether the event bus is broadcasting (1) or killed (0).",
        _ => "GRBAC mediation metric.",
    }
}

/// The Prometheus text exposition format (version 0.0.4).
///
/// Every family renders `# HELP` and `# TYPE` metadata; counters and
/// gauges follow with one sample, histograms with cumulative
/// `_bucket{le="…"}` samples (including `+Inf`) plus `_sum` and
/// `_count`, keyed families with one labelled sample per key, and
/// quantile summaries with `{quantile="…"}` samples plus per-series
/// `_sum` and `_count`.
#[derive(Debug, Clone, Copy, Default)]
pub struct PrometheusExporter;

impl PrometheusExporter {
    /// Renders several snapshots — one per policy domain — as a single
    /// merged exposition, stamping `label="<group>"` onto every sample.
    ///
    /// This is the multi-tenant hook used by `grbac-serve`: each
    /// tenant's engine keeps its own registry (so per-rule heat and
    /// per-transaction series never collide across tenants), and one
    /// scrape renders them side by side. Family metadata (`# HELP` /
    /// `# TYPE`) is emitted once per family across all groups, as the
    /// exposition format requires, and group names are escaped like
    /// any other label value.
    ///
    /// ```
    /// use grbac_core::telemetry::{MetricsRegistry, PrometheusExporter};
    ///
    /// let alpha = MetricsRegistry::new();
    /// let beta = MetricsRegistry::new();
    /// alpha.decisions_permit.inc();
    /// let groups = vec![
    ///     ("alpha".to_owned(), alpha.snapshot()),
    ///     ("beta".to_owned(), beta.snapshot()),
    /// ];
    /// let text = PrometheusExporter.export_grouped("tenant", &groups);
    /// assert!(text.contains("grbac_decisions_permit_total{tenant=\"alpha\"}"));
    /// assert!(text.contains("grbac_decisions_permit_total{tenant=\"beta\"}"));
    /// ```
    #[must_use]
    pub fn export_grouped(&self, label: &str, groups: &[(String, MetricsSnapshot)]) -> String {
        use std::collections::BTreeSet;
        let mut out = String::new();
        let escaped: Vec<String> = groups.iter().map(|(name, _)| escape_label(name)).collect();

        let counter_names: BTreeSet<&String> =
            groups.iter().flat_map(|(_, s)| s.counters.keys()).collect();
        for name in counter_names {
            let _ = writeln!(out, "# HELP {name} {}", help_for(name));
            let _ = writeln!(out, "# TYPE {name} counter");
            for ((_, snapshot), group) in groups.iter().zip(&escaped) {
                if let Some(value) = snapshot.counters.get(name) {
                    let _ = writeln!(out, "{name}{{{label}=\"{group}\"}} {value}");
                }
            }
        }

        let gauge_names: BTreeSet<&String> =
            groups.iter().flat_map(|(_, s)| s.gauges.keys()).collect();
        for name in gauge_names {
            let _ = writeln!(out, "# HELP {name} {}", help_for(name));
            let _ = writeln!(out, "# TYPE {name} gauge");
            for ((_, snapshot), group) in groups.iter().zip(&escaped) {
                if let Some(value) = snapshot.gauges.get(name) {
                    let _ = writeln!(out, "{name}{{{label}=\"{group}\"}} {value}");
                }
            }
        }

        let histogram_names: BTreeSet<&String> = groups
            .iter()
            .flat_map(|(_, s)| s.histograms.keys())
            .collect();
        for name in histogram_names {
            let _ = writeln!(out, "# HELP {name} {}", help_for(name));
            let _ = writeln!(out, "# TYPE {name} histogram");
            for ((_, snapshot), group) in groups.iter().zip(&escaped) {
                let Some(histogram) = snapshot.histograms.get(name) else {
                    continue;
                };
                let mut cumulative = 0u64;
                for (bound, count) in histogram.bounds.iter().zip(&histogram.counts) {
                    cumulative += count;
                    let le = if *bound == u64::MAX {
                        "+Inf".to_owned()
                    } else {
                        bound.to_string()
                    };
                    let _ = writeln!(
                        out,
                        "{name}_bucket{{{label}=\"{group}\",le=\"{le}\"}} {cumulative}"
                    );
                }
                let _ = writeln!(out, "{name}_sum{{{label}=\"{group}\"}} {}", histogram.sum);
                let _ = writeln!(
                    out,
                    "{name}_count{{{label}=\"{group}\"}} {}",
                    histogram.count
                );
            }
        }

        let summary_names: BTreeSet<&String> = groups
            .iter()
            .flat_map(|(_, s)| s.summaries.keys())
            .collect();
        for name in summary_names {
            let _ = writeln!(out, "# HELP {name} {}", help_for(name));
            let _ = writeln!(out, "# TYPE {name} summary");
            for ((_, snapshot), group) in groups.iter().zip(&escaped) {
                let Some(family) = snapshot.summaries.get(name) else {
                    continue;
                };
                let inner = &family.label;
                for (key, quantiles) in &family.series {
                    let key = escape_label(key);
                    for (q, value, exemplar) in [
                        ("0.5", quantiles.p50, quantiles.exemplar_p50),
                        ("0.95", quantiles.p95, quantiles.exemplar_p95),
                        ("0.99", quantiles.p99, quantiles.exemplar_p99),
                    ] {
                        let _ = write!(
                            out,
                            "{name}{{{label}=\"{group}\",{inner}=\"{key}\",quantile=\"{q}\"}} {value}"
                        );
                        if let Some(exemplar) = exemplar {
                            let _ = write!(
                                out,
                                " # {{decision_id=\"{}\"}} {}",
                                escape_label(&exemplar.decision_id.to_string()),
                                exemplar.value
                            );
                        }
                        out.push('\n');
                    }
                    let _ = writeln!(
                        out,
                        "{name}_sum{{{label}=\"{group}\",{inner}=\"{key}\"}} {}",
                        quantiles.sum
                    );
                    let _ = writeln!(
                        out,
                        "{name}_count{{{label}=\"{group}\",{inner}=\"{key}\"}} {}",
                        quantiles.count
                    );
                }
            }
        }

        let keyed_names: BTreeSet<&String> =
            groups.iter().flat_map(|(_, s)| s.keyed.keys()).collect();
        for name in keyed_names {
            let _ = writeln!(out, "# HELP {name} {}", help_for(name));
            let _ = writeln!(out, "# TYPE {name} counter");
            for ((_, snapshot), group) in groups.iter().zip(&escaped) {
                let Some(family) = snapshot.keyed.get(name) else {
                    continue;
                };
                for (key, value) in &family.values {
                    let _ = writeln!(
                        out,
                        "{name}{{{label}=\"{group}\",{}=\"{}\"}} {value}",
                        family.label,
                        escape_label(key)
                    );
                }
            }
        }
        out
    }
}

impl Exporter for PrometheusExporter {
    fn content_type(&self) -> &'static str {
        "text/plain; version=0.0.4"
    }

    fn export(&self, snapshot: &MetricsSnapshot) -> String {
        let mut out = String::new();
        for (name, value) in &snapshot.counters {
            let _ = writeln!(out, "# HELP {name} {}", help_for(name));
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, value) in &snapshot.gauges {
            let _ = writeln!(out, "# HELP {name} {}", help_for(name));
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, histogram) in &snapshot.histograms {
            let _ = writeln!(out, "# HELP {name} {}", help_for(name));
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for (bound, count) in histogram.bounds.iter().zip(&histogram.counts) {
                cumulative += count;
                if *bound == u64::MAX {
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                } else {
                    let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
                }
            }
            let _ = writeln!(out, "{name}_sum {}", histogram.sum);
            let _ = writeln!(out, "{name}_count {}", histogram.count);
        }
        for (name, family) in &snapshot.summaries {
            let _ = writeln!(out, "# HELP {name} {}", help_for(name));
            let _ = writeln!(out, "# TYPE {name} summary");
            let label = &family.label;
            for (key, quantiles) in &family.series {
                let key = escape_label(key);
                for (q, value, exemplar) in [
                    ("0.5", quantiles.p50, quantiles.exemplar_p50),
                    ("0.95", quantiles.p95, quantiles.exemplar_p95),
                    ("0.99", quantiles.p99, quantiles.exemplar_p99),
                ] {
                    let _ = write!(out, "{name}{{{label}=\"{key}\",quantile=\"{q}\"}} {value}");
                    if let Some(exemplar) = exemplar {
                        // OpenMetrics exemplar syntax; the id renders
                        // as fixed-width hex but is escaped anyway so
                        // the emission path stays safe by construction.
                        let _ = write!(
                            out,
                            " # {{decision_id=\"{}\"}} {}",
                            escape_label(&exemplar.decision_id.to_string()),
                            exemplar.value
                        );
                    }
                    out.push('\n');
                }
                let _ = writeln!(out, "{name}_sum{{{label}=\"{key}\"}} {}", quantiles.sum);
                let _ = writeln!(out, "{name}_count{{{label}=\"{key}\"}} {}", quantiles.count);
            }
        }
        for (name, family) in &snapshot.keyed {
            let _ = writeln!(out, "# HELP {name} {}", help_for(name));
            let _ = writeln!(out, "# TYPE {name} counter");
            for (key, value) in &family.values {
                let _ = writeln!(
                    out,
                    "{name}{{{}=\"{}\"}} {value}",
                    family.label,
                    escape_label(key)
                );
            }
        }
        out
    }
}

/// A compact JSON rendering of the snapshot.
///
/// The layout mirrors [`MetricsSnapshot`]'s fields: top-level objects
/// `counters`, `gauges`, `histograms` (each with `bounds`, `counts`,
/// `sum`, `count`), `summaries` (each with `label` and a `series`
/// object of `count`/`sum`/`min`/`max`/`p50`/`p95`/`p99` readings,
/// plus `exemplar_p50`/`exemplar_p95`/`exemplar_p99` objects of
/// `decision_id` and `value` when an exemplar was retained),
/// and `keyed` (each with `label` and `values`).
/// Metric names are the JSON object keys — plain nested objects, not
/// pair lists — so any JSON consumer can index straight into a series.
/// Keys appear in sorted order, matching the snapshot's `BTreeMap`s.
#[derive(Debug, Clone, Copy, Default)]
pub struct JsonExporter;

impl Exporter for JsonExporter {
    fn content_type(&self) -> &'static str {
        "application/json"
    }

    fn export(&self, snapshot: &MetricsSnapshot) -> String {
        let mut out = String::from("{");

        out.push_str("\"counters\":{");
        push_entries(&mut out, snapshot.counters.iter(), |out, (name, value)| {
            let _ = write!(out, "{}:{value}", json_string(name));
        });
        out.push_str("},");

        out.push_str("\"gauges\":{");
        push_entries(&mut out, snapshot.gauges.iter(), |out, (name, value)| {
            let _ = write!(out, "{}:{value}", json_string(name));
        });
        out.push_str("},");

        out.push_str("\"histograms\":{");
        push_entries(
            &mut out,
            snapshot.histograms.iter(),
            |out, (name, histogram)| {
                let _ = write!(out, "{}:{{\"bounds\":[", json_string(name));
                push_entries(out, histogram.bounds.iter(), |out, bound| {
                    let _ = write!(out, "{bound}");
                });
                out.push_str("],\"counts\":[");
                push_entries(out, histogram.counts.iter(), |out, count| {
                    let _ = write!(out, "{count}");
                });
                let _ = write!(
                    out,
                    "],\"sum\":{},\"count\":{}}}",
                    histogram.sum, histogram.count
                );
            },
        );
        out.push_str("},");

        out.push_str("\"summaries\":{");
        push_entries(
            &mut out,
            snapshot.summaries.iter(),
            |out, (name, family)| {
                let _ = write!(
                    out,
                    "{}:{{\"label\":{},\"series\":{{",
                    json_string(name),
                    json_string(&family.label)
                );
                push_entries(out, family.series.iter(), |out, (key, q)| {
                    let _ = write!(
                    out,
                    "{}:{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}",
                    json_string(key),
                    q.count,
                    q.sum,
                    q.min,
                    q.max,
                    q.p50,
                    q.p95,
                    q.p99
                );
                    for (field, exemplar) in [
                        ("exemplar_p50", q.exemplar_p50),
                        ("exemplar_p95", q.exemplar_p95),
                        ("exemplar_p99", q.exemplar_p99),
                    ] {
                        if let Some(exemplar) = exemplar {
                            let _ = write!(
                                out,
                                ",{}:{{\"decision_id\":{},\"value\":{}}}",
                                json_string(field),
                                json_string(&exemplar.decision_id.to_string()),
                                exemplar.value
                            );
                        }
                    }
                    out.push('}');
                });
                out.push_str("}}");
            },
        );
        out.push_str("},");

        out.push_str("\"keyed\":{");
        push_entries(&mut out, snapshot.keyed.iter(), |out, (name, family)| {
            let _ = write!(
                out,
                "{}:{{\"label\":{},\"values\":{{",
                json_string(name),
                json_string(&family.label)
            );
            push_entries(out, family.values.iter(), |out, (key, value)| {
                let _ = write!(out, "{}:{value}", json_string(key));
            });
            out.push_str("}}");
        });
        out.push_str("}}");

        out
    }
}

/// Writes comma-separated entries through `write_one`.
fn push_entries<I: Iterator>(
    out: &mut String,
    entries: I,
    write_one: impl Fn(&mut String, I::Item),
) {
    for (index, entry) in entries.enumerate() {
        if index > 0 {
            out.push(',');
        }
        write_one(out, entry);
    }
}

/// A JSON string literal with the mandatory escapes.
fn json_string(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + 2);
    out.push('"');
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Escapes a Prometheus label value (`\`, `"`, newline).
fn escape_label(raw: &str) -> String {
    raw.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::super::metrics::MetricsRegistry;
    use super::*;

    fn populated_snapshot() -> MetricsSnapshot {
        let registry = MetricsRegistry::new();
        registry.decisions_permit.add(3);
        registry.decisions_deny.add(1);
        registry.audit_retained.set(4);
        registry.batch_size.observe(10);
        registry.rule_matches_by_transaction.add(2, 5);
        registry.stage_latency[0].observe(250);
        registry.decide_latency_sketch.observe(1_000);
        registry.snapshot_with(|raw| format!("tx{raw}"))
    }

    #[test]
    fn prometheus_renders_every_series() {
        let text = PrometheusExporter.export(&populated_snapshot());
        if crate::telemetry::ENABLED {
            assert!(text.contains("# HELP grbac_decisions_permit_total "));
            assert!(text.contains("# TYPE grbac_decisions_permit_total counter"));
            assert!(text.contains("grbac_decisions_permit_total 3"));
            assert!(text.contains("grbac_audit_retained 4"));
            assert!(text.contains("grbac_batch_size_bucket{le=\"16\"} 1"));
            assert!(text.contains("grbac_batch_size_bucket{le=\"+Inf\"} 1"));
            assert!(text.contains("grbac_batch_size_sum 10"));
            assert!(text.contains("grbac_rule_matches_total{transaction=\"tx2\"} 5"));
            assert!(text.contains("# TYPE grbac_stage_latency_ns summary"));
            assert!(text
                .contains("grbac_stage_latency_ns{stage=\"subject_expansion\",quantile=\"0.5\"}"));
            assert!(text.contains("grbac_stage_latency_ns_count{stage=\"subject_expansion\"} 1"));
            assert!(text.contains("grbac_stage_latency_ns_sum{stage=\"total\"} 1000"));
        }
        // Every series carries both metadata lines.
        for line in text.lines().filter(|l| l.starts_with("# TYPE ")) {
            let name = line.split_whitespace().nth(2).unwrap();
            assert!(
                text.contains(&format!("# HELP {name} ")),
                "missing HELP for {name}"
            );
        }
        // Every line is a comment or `name[{labels}] value`.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.rsplit_once(' ').is_some(),
                "malformed line: {line}"
            );
        }
    }

    /// Navigates one key into a parsed JSON object.
    fn field<'a>(value: &'a serde_json::Value, key: &str) -> &'a serde_json::Value {
        match value {
            serde_json::Value::Map(fields) => fields
                .iter()
                .find(|(name, _)| name == key)
                .map(|(_, value)| value)
                .unwrap_or_else(|| panic!("missing field `{key}`")),
            other => panic!("expected object at `{key}`, got {other:?}"),
        }
    }

    /// Reads a parsed JSON number as `u64`.
    fn uint(value: &serde_json::Value) -> u64 {
        match value {
            serde_json::Value::UInt(u) => *u,
            serde_json::Value::Int(i) if *i >= 0 => *i as u64,
            other => panic!("expected unsigned number, got {other:?}"),
        }
    }

    #[test]
    fn json_parses_and_agrees_with_prometheus() {
        let snapshot = populated_snapshot();
        let json = JsonExporter.export(&snapshot);
        let parsed: serde_json::Value =
            serde_json::from_str(&json).expect("exporter emits valid JSON");
        if crate::telemetry::ENABLED {
            assert_eq!(
                uint(field(
                    field(&parsed, "counters"),
                    "grbac_decisions_permit_total"
                )),
                3
            );
            assert_eq!(
                uint(field(field(&parsed, "gauges"), "grbac_audit_retained")),
                4
            );
            let family = field(field(&parsed, "keyed"), "grbac_rule_matches_total");
            assert_eq!(uint(field(field(family, "values"), "tx2")), 5);
            let stages = field(field(&parsed, "summaries"), "grbac_stage_latency_ns");
            assert_eq!(
                field(stages, "label"),
                &serde_json::Value::Str("stage".to_owned())
            );
            let total = field(field(stages, "series"), "total");
            assert_eq!(uint(field(total, "count")), 1);
            assert_eq!(uint(field(total, "sum")), 1_000);
            assert!(uint(field(total, "p99")) > 0);
        }
        // Same snapshot → the same counter values in both formats.
        let text = PrometheusExporter.export(&snapshot);
        for (name, value) in &snapshot.counters {
            assert!(text.contains(&format!("{name} {value}")));
            assert_eq!(uint(field(field(&parsed, "counters"), name)), *value);
        }
        for (name, histogram) in &snapshot.histograms {
            let parsed_hist = field(field(&parsed, "histograms"), name);
            assert_eq!(uint(field(parsed_hist, "sum")), histogram.sum);
            assert_eq!(uint(field(parsed_hist, "count")), histogram.count);
            assert!(text.contains(&format!("{name}_sum {}", histogram.sum)));
            assert!(text.contains(&format!("{name}_count {}", histogram.count)));
        }
    }

    #[test]
    fn json_escapes_hostile_labels() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(escape_label("say \"hi\"\n"), "say \\\"hi\\\"\\n");
    }

    #[test]
    fn hostile_label_values_survive_both_exporters_end_to_end() {
        // Transaction and rule display names are operator-controlled
        // free text; a backslash, quote or newline must not corrupt the
        // exposition format.
        let registry = MetricsRegistry::new();
        registry.rule_matches_by_transaction.add(0, 2);
        registry.rule_heat.record_decision([7], None, false, 1);
        let hostile = "tv \"lounge\"\\main\nset";
        let snapshot =
            registry.snapshot_with_labels(|_| hostile.to_owned(), |_| hostile.to_owned());

        let text = PrometheusExporter.export(&snapshot);
        if crate::telemetry::ENABLED {
            assert!(
                text.contains(
                    "grbac_rule_matches_total{transaction=\"tv \\\"lounge\\\"\\\\main\\nset\"} 2"
                ),
                "transaction label not escaped:\n{text}"
            );
            assert!(
                text.contains(
                    "grbac_rule_heat_matched_total{rule=\"tv \\\"lounge\\\"\\\\main\\nset\"} 1"
                ),
                "rule label not escaped:\n{text}"
            );
        }
        // The hostile newline never produced a malformed physical line.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.rsplit_once(' ').is_some(),
                "malformed line: {line}"
            );
        }
        assert!(
            !text.contains("\nset\""),
            "raw newline split a label across physical lines"
        );

        // The JSON exporter emits parseable output for the same labels.
        let json = JsonExporter.export(&snapshot);
        let parsed: serde_json::Value =
            serde_json::from_str(&json).expect("hostile labels stay valid JSON");
        if crate::telemetry::ENABLED {
            let family = field(field(&parsed, "keyed"), "grbac_rule_matches_total");
            assert_eq!(uint(field(field(family, "values"), hostile)), 2);
        }
    }

    #[test]
    fn exemplars_render_in_both_formats() {
        use crate::id::DecisionId;
        use crate::telemetry::{DecisionTrace, Stage, StageRecord};
        let registry = MetricsRegistry::new();
        let trace = DecisionTrace {
            decision_id: DecisionId::from_parts(0xAB, 0x42),
            stages: vec![StageRecord {
                stage: Stage::SubjectExpansion,
                nanos: 640,
                items: 3,
            }],
            total_nanos: 1_000,
        };
        registry.observe_trace(&trace);
        let snapshot = registry.snapshot();
        let text = PrometheusExporter.export(&snapshot);
        let json = JsonExporter.export(&snapshot);
        let parsed: serde_json::Value =
            serde_json::from_str(&json).expect("exemplars stay valid JSON");
        if crate::telemetry::ENABLED {
            let hex = DecisionId::from_parts(0xAB, 0x42).to_string();
            let line = text
                .lines()
                .find(|l| {
                    l.starts_with("grbac_stage_latency_ns{stage=\"total\",quantile=\"0.99\"}")
                })
                .expect("total p99 line present");
            assert!(
                line.contains(&format!(" # {{decision_id=\"{hex}\"}} 1000")),
                "exemplar missing from: {line}"
            );
            let stages = field(field(&parsed, "summaries"), "grbac_stage_latency_ns");
            let total = field(field(stages, "series"), "total");
            let exemplar = field(total, "exemplar_p99");
            assert_eq!(
                field(exemplar, "decision_id"),
                &serde_json::Value::Str(hex.clone())
            );
            assert_eq!(uint(field(exemplar, "value")), 1_000);
        } else {
            assert!(!text.contains("decision_id"));
        }
    }

    #[test]
    fn grouped_export_emits_metadata_once_and_labels_every_sample() {
        let alpha = MetricsRegistry::new();
        let beta = MetricsRegistry::new();
        alpha.decisions_permit.add(7);
        beta.decisions_permit.add(2);
        alpha.batch_size.observe(4);
        alpha.rule_matches_by_transaction.add(1, 3);
        beta.stage_latency[0].observe(500);
        let groups = vec![
            ("alpha".to_owned(), alpha.snapshot()),
            ("bad\"tenant\nname".to_owned(), beta.snapshot()),
        ];
        let text = PrometheusExporter.export_grouped("tenant", &groups);

        // Family metadata appears exactly once per family even though
        // two groups carry the family.
        let type_lines: Vec<&str> = text
            .lines()
            .filter(|l| *l == "# TYPE grbac_decisions_permit_total counter")
            .collect();
        assert_eq!(type_lines.len(), 1, "duplicate TYPE metadata:\n{text}");
        for line in text.lines().filter(|l| l.starts_with("# TYPE ")) {
            let name = line.split_whitespace().nth(2).unwrap();
            assert_eq!(
                text.lines()
                    .filter(|l| l.starts_with(&format!("# TYPE {name} ")))
                    .count(),
                1,
                "family {name} has duplicate metadata"
            );
        }

        if crate::telemetry::ENABLED {
            assert!(text.contains("grbac_decisions_permit_total{tenant=\"alpha\"} 7"));
            assert!(
                text.contains("grbac_decisions_permit_total{tenant=\"bad\\\"tenant\\nname\"} 2"),
                "hostile group name not escaped:\n{text}"
            );
            assert!(text.contains("grbac_batch_size_bucket{tenant=\"alpha\",le=\"4\"} 1"));
            assert!(text.contains("grbac_batch_size_sum{tenant=\"alpha\"} 4"));
            assert!(text.contains("grbac_rule_matches_total{tenant=\"alpha\",transaction=\"1\"} 3"));
            assert!(text.contains(
                "grbac_stage_latency_ns{tenant=\"bad\\\"tenant\\nname\",stage=\"subject_expansion\",quantile=\"0.5\"}"
            ));
        }
        // Every physical line stays well-formed despite the hostile name.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.rsplit_once(' ').is_some(),
                "malformed line: {line}"
            );
        }
    }

    #[test]
    fn grouped_export_of_one_group_matches_flat_sample_values() {
        let snapshot = populated_snapshot();
        let flat = PrometheusExporter.export(&snapshot);
        let grouped =
            PrometheusExporter.export_grouped("tenant", &[("only".to_owned(), snapshot.clone())]);
        // Every flat counter sample has a labelled twin with the same value.
        for (name, value) in &snapshot.counters {
            assert!(flat.contains(&format!("{name} {value}")));
            assert!(
                grouped.contains(&format!("{name}{{tenant=\"only\"}} {value}")),
                "missing labelled sample for {name}"
            );
        }
    }

    #[test]
    fn content_types() {
        assert_eq!(JsonExporter.content_type(), "application/json");
        assert!(PrometheusExporter.content_type().starts_with("text/plain"));
    }
}
