//! Wire-propagated request tracing: trace/span identifiers, the span
//! record, `traceparent`-style context, and a bounded concurrent
//! [`SpanStore`].
//!
//! The flight recorder answers *what was decided*; spans answer *where
//! the nanoseconds went* between a socket and the engine. A request
//! arriving at `grbac-serve` opens a **server span** (child of the
//! client's [`TraceContext`] when the request carried one, a fresh root
//! otherwise) with child spans for dispatch-queue wait, lock
//! acquisition, and the engine call; the engine child is stamped with
//! the minted [`DecisionId`], which joins spans to the
//! provenance/audit/exemplar evidence the decision left behind.
//!
//! The store mirrors the
//! [`FlightRecorder`](crate::provenance::FlightRecorder) concurrency
//! design, sharded: writers pin to a shard by thread, claim a global
//! sequence ticket with one lock-free `fetch_add`, then publish under
//! the slot's own mutex with a drop-oldest guard. Evictions are counted
//! exactly (`dropped`), and self-initiated sampling uses the same
//! power-of-two mask scheme as the registry's latency sampler.
//!
//! Timestamps are **monotonic process nanoseconds** (see
//! [`monotonic_nanos`]): cheap, overflow-free for centuries, and
//! comparable across threads. [`unix_nanos_at`] maps them back to
//! wall-clock time for the OTLP export.
//!
//! Tracing is deliberately **not** gated by the `telemetry-off`
//! feature: context propagation is a wire-protocol contract, and a
//! client that asked for a recorded span must get one regardless of how
//! the engine's internal counters were compiled.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

use serde::{Deserialize, Error as SerdeError, Serialize, Value};

use crate::id::DecisionId;

/// Distinct per-writer sequence counters; writer ids beyond this share
/// a counter (per-writer monotonicity still holds, the sequences just
/// interleave). Matches the flight recorder's bound.
const MAX_WRITERS: usize = 128;

/// Shard count of a [`SpanStore`] (power of two; threads pin to a
/// shard, so claims from different cores rarely touch the same cache
/// line).
const SHARDS: usize = 8;

/// The process-wide clock base: an `Instant` paired with the wall-clock
/// nanoseconds observed at the same moment, fixed on first use.
fn clock_base() -> &'static (Instant, u64) {
    static BASE: OnceLock<(Instant, u64)> = OnceLock::new();
    BASE.get_or_init(|| {
        let unix = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        (Instant::now(), unix)
    })
}

/// Monotonic nanoseconds since the process's tracing clock base (the
/// first call in the process reads as 0). Safe across threads and never
/// goes backwards.
#[must_use]
pub fn monotonic_nanos() -> u64 {
    let (instant, _) = clock_base();
    Instant::now().duration_since(*instant).as_nanos() as u64
}

/// Maps a [`monotonic_nanos`] reading to approximate wall-clock unix
/// nanoseconds (exact up to scheduling jitter at base capture), for
/// exports that need absolute time such as OTLP.
#[must_use]
pub fn unix_nanos_at(mono: u64) -> u64 {
    let (_, unix) = clock_base();
    unix.saturating_add(mono)
}

/// Spreads entropy across 64 bits (splitmix64 finalizer), used when
/// minting ids so counters drawn in the same nanosecond still differ in
/// every bit position.
const fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Fresh per-mint entropy: a process-global ordinal mixed with
/// wall-clock nanoseconds.
fn mint_entropy() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    let ordinal = NEXT.fetch_add(1, Ordering::Relaxed);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    nanos ^ ordinal.rotate_left(40)
}

/// A 128-bit trace identifier, shared by every span of one distributed
/// request. Renders as (and parses from) exactly 32 lowercase hex
/// digits — the `traceparent` trace-id field. The all-zero id is
/// invalid on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId {
    hi: u64,
    lo: u64,
}

impl TraceId {
    /// The invalid all-zero id (never minted, rejected on parse).
    pub const INVALID: TraceId = TraceId { hi: 0, lo: 0 };

    /// Builds an id from its upper and lower halves.
    #[must_use]
    pub const fn from_parts(hi: u64, lo: u64) -> Self {
        Self { hi, lo }
    }

    /// The upper 64 bits.
    #[must_use]
    pub const fn hi(self) -> u64 {
        self.hi
    }

    /// The lower 64 bits.
    #[must_use]
    pub const fn lo(self) -> u64 {
        self.lo
    }

    /// True when the id is non-zero (the wire-validity rule).
    #[must_use]
    pub const fn is_valid(self) -> bool {
        self.hi != 0 || self.lo != 0
    }

    /// Mints a fresh id: overwhelmingly unique across processes
    /// (wall-clock entropy) and guaranteed unique within one (a global
    /// ordinal is folded in). Never returns [`Self::INVALID`].
    #[must_use]
    pub fn mint() -> Self {
        let entropy = mint_entropy();
        let id = Self {
            hi: splitmix64(entropy),
            lo: splitmix64(entropy.wrapping_add(0xa076_1d64_78bd_642f)),
        };
        if id.is_valid() {
            id
        } else {
            Self { hi: 0, lo: 1 }
        }
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

impl std::str::FromStr for TraceId {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(format!("trace id must be 32 hex digits, got `{s}`"));
        }
        let hi = u64::from_str_radix(&s[..16], 16).map_err(|e| e.to_string())?;
        let lo = u64::from_str_radix(&s[16..], 16).map_err(|e| e.to_string())?;
        let id = Self { hi, lo };
        if id.is_valid() {
            Ok(id)
        } else {
            Err("trace id must be non-zero".to_owned())
        }
    }
}

impl Serialize for TraceId {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for TraceId {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        value
            .as_str()
            .ok_or_else(|| SerdeError::expected("trace id string", value))?
            .parse()
            .map_err(SerdeError::custom)
    }
}

/// A 64-bit span identifier, unique within a trace. Renders as exactly
/// 16 lowercase hex digits — the `traceparent` parent-id field. Zero is
/// invalid on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(u64);

impl SpanId {
    /// Builds an id from its raw bits.
    #[must_use]
    pub const fn from_raw(raw: u64) -> Self {
        Self(raw)
    }

    /// The raw bits.
    #[must_use]
    pub const fn as_raw(self) -> u64 {
        self.0
    }

    /// True when the id is non-zero (the wire-validity rule).
    #[must_use]
    pub const fn is_valid(self) -> bool {
        self.0 != 0
    }

    /// Mints a fresh non-zero id.
    #[must_use]
    pub fn mint() -> Self {
        Self(splitmix64(mint_entropy()).max(1))
    }
}

impl std::fmt::Display for SpanId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl std::str::FromStr for SpanId {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.len() != 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(format!("span id must be 16 hex digits, got `{s}`"));
        }
        let raw = u64::from_str_radix(s, 16).map_err(|e| e.to_string())?;
        if raw == 0 {
            Err("span id must be non-zero".to_owned())
        } else {
            Ok(Self(raw))
        }
    }
}

impl Serialize for SpanId {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for SpanId {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        value
            .as_str()
            .ok_or_else(|| SerdeError::expected("span id string", value))?
            .parse()
            .map_err(SerdeError::custom)
    }
}

/// `traceparent`-style propagation context: the wire form is
/// `<trace_id:32hex>-<span_id:16hex>-<flags:2hex>`, where flag bit 0 is
/// *sampled* ("record spans for this request"). This is the value of
/// the protocol's optional `trace` request field and of the `trace`
/// echo in responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The trace every span of this request belongs to.
    pub trace_id: TraceId,
    /// The sender's span: the parent of the next span opened under this
    /// context.
    pub span_id: SpanId,
    /// True when the sender asked for spans to be recorded.
    pub sampled: bool,
}

impl TraceContext {
    /// Builds a sampled context (the common client case).
    #[must_use]
    pub const fn sampled(trace_id: TraceId, span_id: SpanId) -> Self {
        Self {
            trace_id,
            span_id,
            sampled: true,
        }
    }

    /// Parses the wire form. Returns `None` for anything malformed:
    /// wrong field count, wrong digit counts, non-hex, or zero ids.
    /// Unknown flag bits are ignored (forward compatibility), only bit
    /// 0 is interpreted.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        let mut parts = s.split('-');
        let trace_id: TraceId = parts.next()?.parse().ok()?;
        let span_id: SpanId = parts.next()?.parse().ok()?;
        let flags = parts.next()?;
        if parts.next().is_some() || flags.len() != 2 {
            return None;
        }
        let flags = u8::from_str_radix(flags, 16).ok()?;
        Some(Self {
            trace_id,
            span_id,
            sampled: flags & 1 == 1,
        })
    }

    /// Renders the wire form.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{}-{}-{:02x}",
            self.trace_id,
            self.span_id,
            u8::from(self.sampled)
        )
    }
}

impl std::fmt::Display for TraceContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// What a span measures — the stage vocabulary of the serve → engine
/// path. The wire/JSON spelling is [`Self::as_str`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// A client-side request span (minted by load generators).
    Client,
    /// The service-side span covering one whole request.
    Server,
    /// Time spent queued between the acceptor and a worker.
    Queue,
    /// Tenant-map or engine lock acquisition.
    Lock,
    /// The mediation call itself (stamped with the [`DecisionId`]).
    Engine,
    /// Anything else worth timing.
    Internal,
}

impl SpanKind {
    /// Every kind, in display order.
    pub const ALL: [SpanKind; 6] = [
        SpanKind::Client,
        SpanKind::Server,
        SpanKind::Queue,
        SpanKind::Lock,
        SpanKind::Engine,
        SpanKind::Internal,
    ];

    /// The wire/JSON spelling.
    #[must_use]
    pub const fn as_str(self) -> &'static str {
        match self {
            Self::Client => "client",
            Self::Server => "server",
            Self::Queue => "queue",
            Self::Lock => "lock",
            Self::Engine => "engine",
            Self::Internal => "internal",
        }
    }

    /// The OTLP `SpanKind` enum value (`INTERNAL=1`, `SERVER=2`,
    /// `CLIENT=3`; the queue/lock/engine stages are internal spans).
    #[must_use]
    pub const fn otlp_kind(self) -> u64 {
        match self {
            Self::Server => 2,
            Self::Client => 3,
            Self::Queue | Self::Lock | Self::Engine | Self::Internal => 1,
        }
    }
}

impl std::str::FromStr for SpanKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        SpanKind::ALL
            .into_iter()
            .find(|kind| kind.as_str() == s)
            .ok_or_else(|| format!("unknown span kind `{s}`"))
    }
}

/// A span's outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpanStatus {
    /// The operation succeeded (the default).
    #[default]
    Ok,
    /// The operation answered an error.
    Error,
}

impl SpanStatus {
    /// The wire/JSON spelling.
    #[must_use]
    pub const fn as_str(self) -> &'static str {
        match self {
            Self::Ok => "ok",
            Self::Error => "error",
        }
    }
}

/// One finished (or in-flight) timed operation within a trace.
///
/// Fields are public: spans are plain data, built by the serve layer
/// and consumed by the obs plane and benches. `seq`/`writer`/
/// `writer_seq` are assigned by [`SpanStore::record`].
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// The trace this span belongs to.
    pub trace_id: TraceId,
    /// This span's own id.
    pub span_id: SpanId,
    /// The parent span, if any (`None` marks a trace root *as far as
    /// this store knows* — a client-propagated parent the store never
    /// saw still counts as a parent link).
    pub parent: Option<SpanId>,
    /// What the span measures.
    pub kind: SpanKind,
    /// Human-readable stage name (`decide`, `engine_lock`,
    /// `queue_wait`, …).
    pub name: String,
    /// The tenant the request addressed, when known.
    pub tenant: Option<String>,
    /// The protocol op, when known.
    pub op: Option<String>,
    /// Outcome.
    pub status: SpanStatus,
    /// The decision this span produced, for [`SpanKind::Engine`] spans
    /// on mediation ops; [`DecisionId::UNASSIGNED`] elsewhere.
    pub decision_id: DecisionId,
    /// Start, in [`monotonic_nanos`].
    pub start_ns: u64,
    /// End, in [`monotonic_nanos`] (0 while in flight).
    pub end_ns: u64,
    /// Store claim ticket (assigned on record; never reused).
    pub seq: u64,
    /// The writer (producer thread) that recorded this span.
    pub writer: u32,
    /// That writer's private strictly-increasing sequence number.
    pub writer_seq: u64,
}

impl Span {
    /// Opens a span: mints a span id and stamps the start time. Finish
    /// it with [`Self::finish`] before recording.
    #[must_use]
    pub fn start(
        trace_id: TraceId,
        parent: Option<SpanId>,
        kind: SpanKind,
        name: impl Into<String>,
    ) -> Self {
        Self {
            trace_id,
            span_id: SpanId::mint(),
            parent,
            kind,
            name: name.into(),
            tenant: None,
            op: None,
            status: SpanStatus::Ok,
            decision_id: DecisionId::UNASSIGNED,
            start_ns: monotonic_nanos(),
            end_ns: 0,
            seq: 0,
            writer: 0,
            writer_seq: 0,
        }
    }

    /// Stamps the end time (clamped to never precede the start).
    pub fn finish(&mut self) {
        self.end_ns = monotonic_nanos().max(self.start_ns);
    }

    /// Wall-clock duration (0 while in flight).
    #[must_use]
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// True when the store holds no parent link for this span.
    #[must_use]
    pub fn is_root(&self) -> bool {
        self.parent.is_none()
    }

    /// The span as a flat JSON object (hex ids, stage spelling, both
    /// raw timestamps and the derived duration) — the shape `/trace`
    /// and `/traces` serve.
    #[must_use]
    pub fn to_value(&self) -> Value {
        let mut fields = vec![
            ("trace_id".to_owned(), Value::Str(self.trace_id.to_string())),
            ("span_id".to_owned(), Value::Str(self.span_id.to_string())),
            (
                "parent_span_id".to_owned(),
                self.parent
                    .map_or(Value::Null, |p| Value::Str(p.to_string())),
            ),
            ("kind".to_owned(), Value::Str(self.kind.as_str().to_owned())),
            ("name".to_owned(), Value::Str(self.name.clone())),
            (
                "status".to_owned(),
                Value::Str(self.status.as_str().to_owned()),
            ),
            ("start_ns".to_owned(), Value::UInt(self.start_ns)),
            ("end_ns".to_owned(), Value::UInt(self.end_ns)),
            ("duration_ns".to_owned(), Value::UInt(self.duration_ns())),
        ];
        if let Some(tenant) = &self.tenant {
            fields.push(("tenant".to_owned(), Value::Str(tenant.clone())));
        }
        if let Some(op) = &self.op {
            fields.push(("op".to_owned(), Value::Str(op.clone())));
        }
        if self.decision_id.is_assigned() {
            fields.push((
                "decision_id".to_owned(),
                Value::Str(self.decision_id.to_string()),
            ));
        }
        Value::Map(fields)
    }
}

impl Serialize for Span {
    fn to_value(&self) -> Value {
        Span::to_value(self)
    }
}

/// A span with its recorded children, produced by [`assemble_trace`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpanTree {
    /// The span itself.
    pub span: Span,
    /// Child spans, ordered by start time.
    pub children: Vec<SpanTree>,
}

impl SpanTree {
    /// The tree as nested JSON: the span's flat object plus a
    /// `children` array.
    #[must_use]
    pub fn to_value(&self) -> Value {
        let mut value = self.span.to_value();
        if let Value::Map(fields) = &mut value {
            fields.push((
                "children".to_owned(),
                Value::Seq(self.children.iter().map(SpanTree::to_value).collect()),
            ));
        }
        value
    }
}

/// Assembles flat spans into parent/child trees. Spans whose parent is
/// absent from the set (true roots, and spans whose parent was evicted
/// or lives in another process) become roots. Siblings are ordered by
/// start time, roots likewise.
#[must_use]
pub fn assemble_trace(spans: Vec<Span>) -> Vec<SpanTree> {
    fn attach(span: Span, by_parent: &mut Vec<(SpanId, Span)>) -> SpanTree {
        let id = span.span_id;
        let mut children: Vec<SpanTree> = Vec::new();
        // Drain this span's children (stable: preserves sorted order).
        let mut i = 0;
        while i < by_parent.len() {
            if by_parent[i].0 == id {
                let (_, child) = by_parent.remove(i);
                children.push(attach(child, by_parent));
            } else {
                i += 1;
            }
        }
        SpanTree { span, children }
    }

    let mut spans = spans;
    spans.sort_by_key(|span| (span.start_ns, span.seq));
    let known: std::collections::BTreeSet<SpanId> = spans.iter().map(|span| span.span_id).collect();
    let (roots, children): (Vec<Span>, Vec<Span>) = spans
        .into_iter()
        .partition(|span| span.parent.is_none_or(|parent| !known.contains(&parent)));
    let mut by_parent: Vec<(SpanId, Span)> = children
        .into_iter()
        .map(|span| (span.parent.expect("partitioned on parent"), span))
        .collect();
    let mut trees: Vec<SpanTree> = roots
        .into_iter()
        .map(|root| attach(root, &mut by_parent))
        .collect();
    // A child whose parent vanished mid-partition (impossible today,
    // defensive forever): surface it as a root rather than dropping it.
    while let Some((_, orphan)) = by_parent.pop() {
        trees.push(attach(orphan, &mut by_parent));
    }
    trees.sort_by_key(|tree| (tree.span.start_ns, tree.span.seq));
    trees
}

/// OTLP-shaped JSON for a set of spans: one `resourceSpans` entry for
/// `service_name`, one scope, hex ids, unix-nano timestamps (mapped via
/// [`unix_nanos_at`]), and tenant/op/decision-id as string attributes.
/// The shape matches what an OTLP/HTTP JSON ingester expects from a
/// `ExportTraceServiceRequest`, so the export can be piped to external
/// tooling without a collector-side translator.
#[must_use]
pub fn otlp_value(service_name: &str, spans: &[Span]) -> Value {
    fn attribute(key: &str, value: String) -> Value {
        Value::Map(vec![
            ("key".to_owned(), Value::Str(key.to_owned())),
            (
                "value".to_owned(),
                Value::Map(vec![("stringValue".to_owned(), Value::Str(value))]),
            ),
        ])
    }

    let otlp_spans: Vec<Value> = spans
        .iter()
        .map(|span| {
            let mut fields = vec![
                ("traceId".to_owned(), Value::Str(span.trace_id.to_string())),
                ("spanId".to_owned(), Value::Str(span.span_id.to_string())),
            ];
            if let Some(parent) = span.parent {
                fields.push(("parentSpanId".to_owned(), Value::Str(parent.to_string())));
            }
            fields.push(("name".to_owned(), Value::Str(span.name.clone())));
            fields.push(("kind".to_owned(), Value::UInt(span.kind.otlp_kind())));
            fields.push((
                "startTimeUnixNano".to_owned(),
                Value::Str(unix_nanos_at(span.start_ns).to_string()),
            ));
            fields.push((
                "endTimeUnixNano".to_owned(),
                Value::Str(unix_nanos_at(span.end_ns.max(span.start_ns)).to_string()),
            ));
            let mut attributes = vec![attribute("grbac.kind", span.kind.as_str().to_owned())];
            if let Some(tenant) = &span.tenant {
                attributes.push(attribute("grbac.tenant", tenant.clone()));
            }
            if let Some(op) = &span.op {
                attributes.push(attribute("grbac.op", op.clone()));
            }
            if span.decision_id.is_assigned() {
                attributes.push(attribute("grbac.decision_id", span.decision_id.to_string()));
            }
            fields.push(("attributes".to_owned(), Value::Seq(attributes)));
            fields.push((
                "status".to_owned(),
                Value::Map(vec![(
                    "code".to_owned(),
                    Value::UInt(match span.status {
                        SpanStatus::Ok => 1,
                        SpanStatus::Error => 2,
                    }),
                )]),
            ));
            Value::Map(fields)
        })
        .collect();

    Value::Map(vec![(
        "resourceSpans".to_owned(),
        Value::Seq(vec![Value::Map(vec![
            (
                "resource".to_owned(),
                Value::Map(vec![(
                    "attributes".to_owned(),
                    Value::Seq(vec![attribute("service.name", service_name.to_owned())]),
                )]),
            ),
            (
                "scopeSpans".to_owned(),
                Value::Seq(vec![Value::Map(vec![
                    (
                        "scope".to_owned(),
                        Value::Map(vec![(
                            "name".to_owned(),
                            Value::Str("grbac.telemetry.span".to_owned()),
                        )]),
                    ),
                    ("spans".to_owned(), Value::Seq(otlp_spans)),
                ])]),
            ),
        ])]),
    )])
}

/// One shard of the store: its own slot ring and ring cursor. The
/// global claim ticket lives on the store so `seq` stays totally
/// ordered across shards.
#[derive(Debug)]
struct Shard {
    slots: Vec<Mutex<Option<Span>>>,
    mask: u64,
    cursor: AtomicU64,
}

impl Shard {
    fn with_capacity(capacity: usize) -> Self {
        debug_assert!(capacity.is_power_of_two());
        Self {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            mask: (capacity as u64).wrapping_sub(1),
            cursor: AtomicU64::new(0),
        }
    }

    fn len(&self) -> usize {
        usize::try_from(self.cursor.load(Ordering::Relaxed))
            .unwrap_or(usize::MAX)
            .min(self.slots.len())
    }

    fn dropped(&self) -> u64 {
        self.cursor
            .load(Ordering::Relaxed)
            .saturating_sub(self.slots.len() as u64)
    }
}

/// A bounded, sharded, multi-producer store of finished [`Span`]s with
/// drop-oldest semantics, counted evictions, and a runtime sampling
/// rate.
///
/// Writers pin to a shard per thread; a span record is one lock-free
/// global `fetch_add` (the `seq` ticket), one lock-free shard-cursor
/// `fetch_add` (the slot index), and one uncontended slot-mutex publish
/// — the same design as the
/// [`FlightRecorder`](crate::provenance::FlightRecorder), sharded so
/// many cores recording concurrently don't share ring cursors.
/// Retention is per shard (`capacity / SHARDS` each), so a single hot
/// thread can evict only its own shard's history.
///
/// Two independent switches gate recording:
/// * [`set_enabled`](Self::set_enabled) — the master switch; when off,
///   nothing records (E17 measures this as "tracing off").
/// * [`set_sample_rate`](Self::set_sample_rate) — how often the *serve
///   layer self-samples* requests that carried no client context (one
///   in `rate`); client-sampled requests bypass the rate entirely.
#[derive(Debug)]
pub struct SpanStore {
    shards: Vec<Shard>,
    next_seq: AtomicU64,
    enabled: AtomicBool,
    sample_tick: AtomicU64,
    sample_mask: AtomicU64,
    writer_seqs: Vec<AtomicU64>,
}

impl SpanStore {
    /// Default total retention across shards.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// Default self-sampling rate: one request in this many records a
    /// trace when the client didn't ask (matches the latency sampler's
    /// default).
    pub const DEFAULT_SAMPLE_RATE: u64 = 8;

    /// Creates a store retaining roughly the most recent `capacity`
    /// spans (rounded up so each of the 8 internal shards gets a
    /// power-of-two ring). A capacity of zero disables recording
    /// entirely.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let shards = if capacity == 0 {
            Vec::new()
        } else {
            let per_shard = capacity.div_ceil(SHARDS).next_power_of_two();
            (0..SHARDS)
                .map(|_| Shard::with_capacity(per_shard))
                .collect()
        };
        Self {
            shards,
            next_seq: AtomicU64::new(0),
            enabled: AtomicBool::new(true),
            sample_tick: AtomicU64::new(0),
            sample_mask: AtomicU64::new(Self::DEFAULT_SAMPLE_RATE - 1),
            writer_seqs: (0..MAX_WRITERS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Creates a store with [`Self::DEFAULT_CAPACITY`].
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Total retention across shards (0 when disabled at construction).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|shard| shard.slots.len()).sum()
    }

    /// Master recording switch. Off, [`record`](Self::record) and
    /// [`should_sample`](Self::should_sample) are no-ops; propagation
    /// (context parsing, response echo) still works — the wire contract
    /// does not depend on retention.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// True when recording is on and the store retains anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        !self.shards.is_empty() && self.enabled.load(Ordering::Relaxed)
    }

    /// The current self-sampling rate (1 = every request).
    #[must_use]
    pub fn sample_rate(&self) -> u64 {
        self.sample_mask.load(Ordering::Relaxed) + 1
    }

    /// Sets the self-sampling rate; rounded up to a power of two so
    /// sampling stays one fetch-add and a mask.
    pub fn set_sample_rate(&self, rate: u64) {
        let rate = rate.max(1).next_power_of_two();
        self.sample_mask.store(rate - 1, Ordering::Relaxed);
    }

    /// Should the serve layer self-initiate a trace for a request that
    /// carried no client context? True for one call in
    /// [`sample_rate`](Self::sample_rate), and never when disabled.
    #[must_use]
    pub fn should_sample(&self) -> bool {
        if !self.is_enabled() {
            return false;
        }
        let tick = self.sample_tick.fetch_add(1, Ordering::Relaxed);
        tick & self.sample_mask.load(Ordering::Relaxed) == 0
    }

    /// Records a finished span, overwriting the oldest span in the
    /// writing thread's shard once that ring is full. The span's
    /// `seq`/`writer`/`writer_seq` fields are assigned here. Returns
    /// the claim ticket, or `None` when recording is off.
    pub fn record(&self, mut span: Span) -> Option<u64> {
        if !self.is_enabled() {
            return None;
        }
        let writer = current_writer_id();
        span.writer = writer;
        span.writer_seq =
            self.writer_seqs[writer as usize % MAX_WRITERS].fetch_add(1, Ordering::Relaxed);
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        span.seq = seq;
        let shard = &self.shards[writer as usize % SHARDS];
        let index = shard.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &shard.slots[(index & shard.mask) as usize];
        let mut guard = slot.lock().unwrap_or_else(PoisonError::into_inner);
        // Drop-oldest: a writer descheduled a full shard lap between
        // claim and publish must not clobber the younger span that
        // already landed.
        if guard.as_ref().is_none_or(|existing| existing.seq <= seq) {
            *guard = Some(span);
        }
        Some(seq)
    }

    /// Spans ever recorded (including since-evicted ones).
    #[must_use]
    pub fn total_recorded(&self) -> u64 {
        self.next_seq.load(Ordering::Relaxed)
    }

    /// Spans currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(Shard::len).sum()
    }

    /// True when nothing is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans evicted by drop-oldest so far (exact: each shard counts
    /// its own ring laps).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.shards.iter().map(Shard::dropped).sum()
    }

    /// A point-in-time copy of every retained span, ordered by claim
    /// ticket (oldest first). Well-formed under concurrent writers
    /// (publishes are atomic per slot); quiesce writers when exact
    /// retention windows matter.
    #[must_use]
    pub fn snapshot(&self) -> Vec<Span> {
        let mut spans: Vec<Span> = self
            .shards
            .iter()
            .flat_map(|shard| shard.slots.iter())
            .filter_map(|slot| slot.lock().unwrap_or_else(PoisonError::into_inner).clone())
            .collect();
        spans.sort_by_key(|span| span.seq);
        spans
    }

    /// Every retained span of `trace_id`, ordered by start time. A
    /// linear scan (operator-paced, like the recorder's `find`).
    #[must_use]
    pub fn trace(&self, trace_id: TraceId) -> Vec<Span> {
        let mut spans: Vec<Span> = self
            .shards
            .iter()
            .flat_map(|shard| shard.slots.iter())
            .filter_map(|slot| {
                slot.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .clone()
                    .filter(|span| span.trace_id == trace_id)
            })
            .collect();
        spans.sort_by_key(|span| (span.start_ns, span.seq));
        spans
    }

    /// Retained root spans (no recorded parent), newest first —
    /// the `/traces` listing.
    #[must_use]
    pub fn roots(&self) -> Vec<Span> {
        let mut roots: Vec<Span> = self.snapshot().into_iter().filter(Span::is_root).collect();
        roots.reverse();
        roots
    }
}

impl Default for SpanStore {
    fn default() -> Self {
        Self::new()
    }
}

/// The calling thread's writer id, assigned on first use from a
/// process-wide counter (same scheme as the flight recorder; the ids
/// are store-independent, they only need to be thread-stable).
fn current_writer_id() -> u32 {
    static NEXT_WRITER: AtomicU32 = AtomicU32::new(0);
    thread_local! {
        static WRITER_ID: Cell<u32> = const { Cell::new(u32::MAX) };
    }
    WRITER_ID.with(|cell| {
        let mut id = cell.get();
        if id == u32::MAX {
            id = NEXT_WRITER.fetch_add(1, Ordering::Relaxed);
            cell.set(id);
        }
        id
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: TraceId, parent: Option<SpanId>, name: &str) -> Span {
        let mut s = Span::start(trace, parent, SpanKind::Internal, name);
        s.finish();
        s
    }

    #[test]
    fn trace_id_round_trips_and_rejects_junk() {
        let id = TraceId::from_parts(0xDEAD_BEEF, 42);
        assert_eq!(id.to_string(), "00000000deadbeef000000000000002a");
        assert_eq!(id.to_string().parse::<TraceId>().unwrap(), id);
        assert!("00000000deadbeef".parse::<TraceId>().is_err()); // short
        assert!("0".repeat(32).parse::<TraceId>().is_err()); // zero
        assert!("g".repeat(32).parse::<TraceId>().is_err()); // non-hex
        assert!(TraceId::mint().is_valid());
        assert_ne!(TraceId::mint(), TraceId::mint());
    }

    #[test]
    fn span_id_round_trips_and_rejects_junk() {
        let id = SpanId::from_raw(0xb7ad_6b71_6920_3331);
        assert_eq!(id.to_string(), "b7ad6b7169203331");
        assert_eq!(id.to_string().parse::<SpanId>().unwrap(), id);
        assert!("b7ad".parse::<SpanId>().is_err());
        assert!("0000000000000000".parse::<SpanId>().is_err());
        assert!(SpanId::mint().is_valid());
    }

    #[test]
    fn context_parses_the_traceparent_shape() {
        let ctx =
            TraceContext::parse("0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01").unwrap();
        assert!(ctx.sampled);
        assert_eq!(ctx.trace_id.to_string(), "0af7651916cd43dd8448eb211c80319c");
        assert_eq!(ctx.span_id.to_string(), "b7ad6b7169203331");
        assert_eq!(
            ctx.render(),
            "0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
        );
        // Flag bit 0 off → unsampled; unknown bits are ignored.
        let unsampled =
            TraceContext::parse("0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00").unwrap();
        assert!(!unsampled.sampled);
        let future =
            TraceContext::parse("0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-03").unwrap();
        assert!(future.sampled);
        for junk in [
            "",
            "nonsense",
            "0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331", // no flags
            "0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-1", // short flags
            "0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-x", // trailing part
            "00000000000000000000000000000000-b7ad6b7169203331-01", // zero trace
            "0af7651916cd43dd8448eb211c80319c-0000000000000000-01", // zero span
        ] {
            assert!(TraceContext::parse(junk).is_none(), "{junk}");
        }
    }

    #[test]
    fn store_retains_and_counts_evictions() {
        let store = SpanStore::with_capacity(8);
        // Single thread → one shard; its ring is 8/SHARDS rounded up.
        let trace = TraceId::mint();
        for _ in 0..10 {
            store.record(span(trace, None, "x"));
        }
        assert_eq!(store.total_recorded(), 10);
        assert!(store.len() <= store.capacity());
        assert_eq!(store.dropped(), 10 - store.len() as u64);
        let seqs: Vec<u64> = store.snapshot().iter().map(|s| s.seq).collect();
        // Retained seqs are the most recent ones, in order.
        assert!(seqs.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*seqs.last().unwrap(), 9);
    }

    #[test]
    fn zero_capacity_disables_recording() {
        let store = SpanStore::with_capacity(0);
        assert!(!store.is_enabled());
        assert_eq!(store.record(span(TraceId::mint(), None, "x")), None);
        assert!(!store.should_sample());
        assert!(store.is_empty());
        assert_eq!(store.capacity(), 0);
    }

    #[test]
    fn enabled_switch_gates_recording_at_runtime() {
        let store = SpanStore::with_capacity(64);
        store.set_enabled(false);
        assert_eq!(store.record(span(TraceId::mint(), None, "x")), None);
        assert!(!store.should_sample());
        store.set_enabled(true);
        assert!(store.record(span(TraceId::mint(), None, "x")).is_some());
    }

    #[test]
    fn sampling_fires_once_per_rate_window() {
        let store = SpanStore::with_capacity(64);
        store.set_sample_rate(4);
        assert_eq!(store.sample_rate(), 4);
        let fired = (0..16).filter(|_| store.should_sample()).count();
        assert_eq!(fired, 4);
        store.set_sample_rate(0); // clamps to 1 → always
        assert_eq!(store.sample_rate(), 1);
        assert!((0..5).all(|_| store.should_sample()));
        store.set_sample_rate(3); // rounds to 4
        assert_eq!(store.sample_rate(), 4);
    }

    #[test]
    fn trace_query_and_tree_assembly() {
        let store = SpanStore::with_capacity(64);
        let trace = TraceId::mint();
        let other = TraceId::mint();
        let mut server = Span::start(trace, None, SpanKind::Server, "decide");
        let queue = {
            let mut s = Span::start(trace, Some(server.span_id), SpanKind::Queue, "queue_wait");
            s.finish();
            s
        };
        let engine = {
            let mut s = Span::start(trace, Some(server.span_id), SpanKind::Engine, "engine");
            s.decision_id = DecisionId::from_parts(7, 1);
            s.finish();
            s
        };
        server.finish();
        store.record(queue.clone());
        store.record(engine.clone());
        store.record(server.clone());
        store.record(span(other, None, "unrelated"));

        let spans = store.trace(trace);
        assert_eq!(spans.len(), 3);
        let trees = assemble_trace(spans);
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].span.span_id, server.span_id);
        assert_eq!(trees[0].children.len(), 2);
        let kinds: Vec<SpanKind> = trees[0].children.iter().map(|c| c.span.kind).collect();
        assert!(kinds.contains(&SpanKind::Queue));
        assert!(kinds.contains(&SpanKind::Engine));

        // Roots: newest first, one per recorded root.
        let roots = store.roots();
        assert_eq!(roots.len(), 2);
        assert_eq!(roots[0].trace_id, other);

        // JSON: decision id appears only when assigned.
        let json = serde_json::to_string(&trees[0].to_value()).unwrap();
        assert!(json.contains("\"children\""), "{json}");
        assert!(json.contains(&engine.decision_id.to_string()), "{json}");
        assert!(json.contains("\"parent_span_id\":null"), "{json}");
    }

    #[test]
    fn orphaned_children_surface_as_roots() {
        let trace = TraceId::mint();
        let missing_parent = SpanId::mint();
        let orphan = span(trace, Some(missing_parent), "orphan");
        let trees = assemble_trace(vec![orphan.clone()]);
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].span.span_id, orphan.span_id);
    }

    #[test]
    fn otlp_export_is_shaped_like_an_export_request() {
        let trace = TraceId::mint();
        let mut server = Span::start(trace, None, SpanKind::Server, "decide");
        server.tenant = Some("t0".to_owned());
        server.op = Some("decide".to_owned());
        server.status = SpanStatus::Error;
        server.finish();
        let value = otlp_value("grbac-serve", &[server.clone()]);
        let json = serde_json::to_string(&value).unwrap();
        assert!(json.contains("\"resourceSpans\""), "{json}");
        assert!(json.contains("\"service.name\""), "{json}");
        assert!(json.contains(&server.trace_id.to_string()), "{json}");
        assert!(json.contains("\"startTimeUnixNano\""), "{json}");
        assert!(json.contains("\"grbac.tenant\""), "{json}");
        // Server kind = 2, error status code = 2.
        assert!(json.contains("\"kind\":2"), "{json}");
        assert!(json.contains("{\"code\":2}"), "{json}");
    }

    #[test]
    fn serde_round_trips_ids() {
        let trace = TraceId::mint();
        let json = serde_json::to_string(&trace).unwrap();
        let back: TraceId = serde_json::from_str(&json).unwrap();
        assert_eq!(trace, back);
        let span_id = SpanId::mint();
        let json = serde_json::to_string(&span_id).unwrap();
        let back: SpanId = serde_json::from_str(&json).unwrap();
        assert_eq!(span_id, back);
    }

    #[test]
    fn monotonic_clock_never_regresses() {
        let a = monotonic_nanos();
        let b = monotonic_nanos();
        assert!(b >= a);
        assert!(unix_nanos_at(b) >= unix_nanos_at(a));
    }
}
