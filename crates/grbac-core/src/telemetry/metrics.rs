//! Lock-cheap metric primitives and the engine-wide registry.
//!
//! Every hot-path update is one relaxed atomic RMW; the only lock in
//! the module is the [`KeyedCounter`]'s `RwLock`, taken in read mode
//! on every update and in write mode only when a new key widens the
//! dense slot table. Under the `telemetry-off` feature all update
//! methods compile to no-ops (readings stay zero).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use super::events::{EventBus, EventKind};
use super::health::AlertKind;
use super::heat::RuleHeat;
use super::sketch::{Exemplar, QuantileSketch, SketchSnapshot};
use super::trace::{DecisionTrace, Stage};
use super::ENABLED;
use crate::delta::DeltaKind;
use crate::id::DecisionId;

/// A monotonically increasing counter (relaxed atomic).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    #[must_use]
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if ENABLED {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge (relaxed atomic store).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A zeroed gauge.
    #[must_use]
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Overwrites the value.
    pub fn set(&self, value: u64) {
        if ENABLED {
            self.0.store(value, Ordering::Relaxed);
        }
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram over `u64` observations.
///
/// Bucket bounds are inclusive upper limits; the final bound must be
/// `u64::MAX` so every observation lands somewhere. Observation is a
/// short linear scan plus three relaxed atomics — no locks, no
/// allocation.
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [u64],
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Creates a histogram over the given inclusive upper bounds.
    ///
    /// # Panics
    ///
    /// If `bounds` is empty, unsorted, or does not end in `u64::MAX`.
    #[must_use]
    pub fn new(bounds: &'static [u64]) -> Self {
        assert!(
            bounds.last() == Some(&u64::MAX),
            "histogram bounds must end in u64::MAX"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Self {
            bounds,
            buckets: bounds.iter().map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        if !ENABLED {
            return;
        }
        let slot = self.bounds.partition_point(|&bound| bound < value);
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the histogram state.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.to_vec(),
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Inclusive upper bucket bounds (last is `u64::MAX`).
    pub bounds: Vec<u64>,
    /// Observations per bucket (same length as `bounds`).
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: u64,
    /// Total observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// This snapshot minus an earlier one (saturating per field).
    #[must_use]
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let counts = if self.bounds == earlier.bounds {
            self.counts
                .iter()
                .zip(&earlier.counts)
                .map(|(now, was)| now.saturating_sub(*was))
                .collect()
        } else {
            self.counts.clone()
        };
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts,
            sum: self.sum.saturating_sub(earlier.sum),
            count: self.count.saturating_sub(earlier.count),
        }
    }

    /// Mean observed value (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Counters keyed by a dense `u64` id (transaction ids in practice).
///
/// The update path takes the slot table's read lock and performs one
/// relaxed atomic add; the write lock is taken only when a key beyond
/// the current table length appears for the first time.
///
/// Label cardinality is bounded: keys at or beyond the configured cap
/// (default [`Self::DEFAULT_CARDINALITY_CAP`]) are folded into a single
/// overflow bucket — exported as the `other` label — instead of
/// widening the slot table without limit, and each folded update is
/// counted toward `grbac_labels_dropped_total`.
#[derive(Debug)]
pub struct KeyedCounter {
    slots: RwLock<Vec<AtomicU64>>,
    /// Maximum number of distinct key slots before folding into
    /// `overflow`; runtime-configurable.
    cap: AtomicU64,
    /// Total count folded into the `other` bucket.
    overflow: AtomicU64,
    /// Number of updates redirected to the `other` bucket.
    dropped: AtomicU64,
}

impl Default for KeyedCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl KeyedCounter {
    /// Default bound on distinct label slots per family.
    pub const DEFAULT_CARDINALITY_CAP: u64 = 1_024;

    /// An empty keyed counter with the default cardinality cap.
    #[must_use]
    pub fn new() -> Self {
        Self::with_cap(Self::DEFAULT_CARDINALITY_CAP)
    }

    /// An empty keyed counter bounded to `cap` distinct key slots
    /// (0 is treated as 1: the overflow bucket always exists).
    #[must_use]
    pub fn with_cap(cap: u64) -> Self {
        Self {
            slots: RwLock::new(Vec::new()),
            cap: AtomicU64::new(cap.max(1)),
            overflow: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// The current cardinality cap.
    #[must_use]
    pub fn cap(&self) -> u64 {
        self.cap.load(Ordering::Relaxed)
    }

    /// Reconfigures the cardinality cap. Lowering it does not shrink an
    /// already-widened slot table; it only bounds future growth.
    pub fn set_cap(&self, cap: u64) {
        self.cap.store(cap.max(1), Ordering::Relaxed);
    }

    /// Total count folded into the `other` overflow bucket.
    #[must_use]
    pub fn overflow_total(&self) -> u64 {
        self.overflow.load(Ordering::Relaxed)
    }

    /// Number of updates redirected to the overflow bucket because
    /// their key lay beyond the cardinality cap.
    #[must_use]
    pub fn dropped_total(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Adds `n` to the counter for `key` (or to the overflow bucket
    /// when `key` lies beyond the cardinality cap).
    pub fn add(&self, key: u64, n: u64) {
        if !ENABLED {
            return;
        }
        if key >= self.cap.load(Ordering::Relaxed) {
            self.overflow.fetch_add(n, Ordering::Relaxed);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let index = key as usize;
        {
            let slots = self
                .slots
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(slot) = slots.get(index) {
                slot.fetch_add(n, Ordering::Relaxed);
                return;
            }
        }
        let mut slots = self
            .slots
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if slots.len() <= index {
            slots.resize_with(index + 1, AtomicU64::default);
        }
        slots[index].fetch_add(n, Ordering::Relaxed);
    }

    /// The counter for `key` (0 if never touched).
    #[must_use]
    pub fn get(&self, key: u64) -> u64 {
        self.slots
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(key as usize)
            .map_or(0, |slot| slot.load(Ordering::Relaxed))
    }

    /// All non-zero `(key, value)` pairs, ascending by key.
    #[must_use]
    pub fn snapshot(&self) -> BTreeMap<u64, u64> {
        self.slots
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .enumerate()
            .filter_map(|(key, slot)| {
                let value = slot.load(Ordering::Relaxed);
                (value > 0).then_some((key as u64, value))
            })
            .collect()
    }
}

/// Decision latencies in nanoseconds: 128 ns … 4 ms, then overflow.
static LATENCY_BOUNDS_NS: &[u64] = &[
    128,
    256,
    512,
    1_024,
    2_048,
    4_096,
    8_192,
    16_384,
    32_768,
    65_536,
    131_072,
    262_144,
    524_288,
    1_048_576,
    4_194_304,
    u64::MAX,
];

/// Batch sizes: 1 … 64k requests, then overflow.
static BATCH_BOUNDS: &[u64] = &[
    1,
    2,
    4,
    8,
    16,
    32,
    64,
    128,
    256,
    512,
    1_024,
    4_096,
    16_384,
    65_536,
    u64::MAX,
];

/// The engine-wide metrics registry.
///
/// One registry is created per [`Grbac`](crate::engine::Grbac) and
/// shared by reference-count: engine clones, `decide_batch` workers,
/// and the `grbac-env` providers attached via
/// `EnvironmentRoleProvider::attach_metrics` all publish into the same
/// instance. All fields are public so call sites (and downstream
/// crates) can update them directly.
#[derive(Debug)]
#[allow(clippy::struct_field_names)]
pub struct MetricsRegistry {
    /// Decisions that resolved to `Permit`.
    pub decisions_permit: Counter,
    /// Decisions that resolved to `Deny`.
    pub decisions_deny: Counter,
    /// Mediation calls that failed (unknown ids in the request).
    pub decide_errors: Counter,
    /// Decisions that were latency-sampled (fed the latency histogram
    /// and the per-stage quantile sketches). Read alongside
    /// `decisions_*_total` to know what fraction of traffic the
    /// latency series describe.
    pub decisions_sampled: Counter,
    /// Sampled `decide()` latency in nanoseconds (one observation per
    /// [`Self::latency_sample_rate`] decisions).
    pub decide_latency_ns: Histogram,
    /// Streaming quantile sketch of sampled end-to-end decide latency
    /// (p50/p95/p99 at fixed memory; complements the fixed-bucket
    /// histogram).
    pub decide_latency_sketch: QuantileSketch,
    /// Per-stage latency sketches, indexed like [`Stage::ALL`].
    pub stage_latency: [QuantileSketch; 5],
    /// Matched (applicable) rules per request transaction, keyed by
    /// raw transaction id.
    pub rule_matches_by_transaction: KeyedCounter,
    /// Compiled-index installs at a new generation (generation
    /// misses), by either the delta-apply or full-rebuild path; see
    /// [`Self::index_full_rebuilds`] and [`Self::index_delta_applied`]
    /// for the split.
    pub index_rebuilds: Counter,
    /// Total nanoseconds spent on from-scratch index rebuilds
    /// (incremental patches report into
    /// [`Self::index_delta_apply_ns`] instead).
    pub index_rebuild_ns: Counter,
    /// Index installs that fell back to a from-scratch build: cold
    /// cell, trimmed delta history, bitset widening, or closure damage
    /// past the planner's threshold.
    pub index_full_rebuilds: Counter,
    /// Policy deltas applied incrementally to the compiled index,
    /// keyed by [`DeltaKind`](crate::telemetry::DeltaKind) slot.
    pub index_delta_applied: KeyedCounter,
    /// Streaming quantile sketch of incremental delta-application
    /// latency (planning plus shard patching), in nanoseconds.
    pub index_delta_apply_ns: QuantileSketch,
    /// Mediations served by an already-built index (generation hits).
    pub index_cache_hits: Counter,
    /// Role expansions served from the compiled index (trusted-subject
    /// and object expansions).
    pub closure_cache_hits: Counter,
    /// Role expansions computed per request (session actives, sensed
    /// claim merges, environment snapshots).
    pub closure_cache_misses: Counter,
    /// `decide_batch()` invocations.
    pub batch_calls: Counter,
    /// Requests per `decide_batch()` call.
    pub batch_size: Histogram,
    /// Audit permits ever recorded (survives eviction and clears).
    pub audit_permit_total: Gauge,
    /// Audit denies ever recorded (survives eviction and clears).
    pub audit_deny_total: Gauge,
    /// Audit records evicted by the ring buffer.
    pub audit_evictions: Gauge,
    /// Audit records currently retained.
    pub audit_retained: Gauge,
    /// Declared roles in the current compiled index.
    pub index_roles: Gauge,
    /// Transaction-keyed rule buckets in the current compiled index.
    pub index_rule_buckets: Gauge,
    /// Largest rule bucket in the current compiled index.
    pub index_max_bucket: Gauge,
    /// Environment-provider snapshot evaluations (polls).
    pub env_polls: Counter,
    /// Environment roles that flipped inactive → active between polls.
    pub env_role_activations: Counter,
    /// Environment roles that flipped active → inactive between polls.
    pub env_role_deactivations: Counter,
    /// Decisions annotated with a degraded-mode reason (stale or
    /// unavailable environment data).
    pub decisions_degraded: Counter,
    /// Active environment roles dropped because their snapshot outlived
    /// its staleness budget (fail-closed and expired last-known-good).
    pub env_roles_dropped_stale: Counter,
    /// Provider polls that failed with a timeout (published by the
    /// `grbac-env` resilience layer).
    pub env_provider_timeouts: Counter,
    /// Provider polls that failed with a transient error.
    pub env_provider_errors: Counter,
    /// Retry attempts made after a failed provider poll.
    pub env_provider_retries: Counter,
    /// Total virtual milliseconds of retry backoff (base + jitter).
    pub env_backoff_ms: Counter,
    /// Polls answered from the last-known-good snapshot.
    pub env_stale_served: Counter,
    /// Polls with no snapshot to serve at all.
    pub env_unavailable: Counter,
    /// Circuit-breaker transitions into the open state.
    pub env_breaker_opened: Counter,
    /// Circuit-breaker transitions into the half-open state.
    pub env_breaker_half_open: Counter,
    /// Circuit-breaker transitions back to the closed state.
    pub env_breaker_closed: Counter,
    /// Current circuit-breaker state: 0 closed, 1 half-open, 2 open.
    pub env_breaker_state: Gauge,
    /// Per-rule heat: matches, wins by effect, and last-fired
    /// generation, fed by the compiled decide path (see
    /// [`RuleHeat`]).
    pub rule_heat: RuleHeat,
    /// Watchdog evaluations ([`DecisionWatchdog::tick`]
    /// calls).
    ///
    /// [`DecisionWatchdog::tick`]: super::DecisionWatchdog::tick
    pub watchdog_ticks: Counter,
    /// Anomaly alerts raised, keyed by [`AlertKind`] slot.
    pub alerts_by_kind: KeyedCounter,
    /// The watchdog's learned deny-rate baseline, in parts per million.
    pub watchdog_deny_baseline_ppm: Gauge,
    /// The watchdog's learned degraded-rate baseline, in parts per
    /// million.
    pub watchdog_degraded_baseline_ppm: Gauge,
    /// The watchdog's learned env-role flap-rate baseline, in parts per
    /// million.
    pub watchdog_flap_baseline_ppm: Gauge,
    /// The watchdog's learned staleness-burn baseline, in parts per
    /// million.
    pub watchdog_staleness_baseline_ppm: Gauge,
    /// The live-telemetry broadcast bus (see
    /// [`EventBus`](super::EventBus)): the engine's decide path, the
    /// watchdog, and the index installer publish typed events here,
    /// and the serve/obs streaming surfaces subscribe. Snapshots
    /// export its publish/drop accounting as
    /// `grbac_events_published_total{kind}`,
    /// `grbac_events_dropped_total`, and the subscriber gauge.
    pub events: EventBus,
    /// Round-robin sample selector for `decide_timer`.
    decide_sample: AtomicU64,
    /// `sample_rate - 1`, where the rate is a power of two; applied as
    /// a mask over `decide_sample`. Runtime-configurable via
    /// [`Self::set_latency_sample_rate`].
    latency_sample_mask: AtomicU64,
    /// Epoch of the ids in the recent-decision ring (one engine, one
    /// epoch; last-writer-wins under mixed registries).
    recent_id_epoch: AtomicU64,
    /// Ring of recently minted decision-id sequences (0 = empty slot).
    recent_id_seqs: Vec<AtomicU64>,
    /// Monotonic write cursor into `recent_id_seqs`.
    recent_id_cursor: AtomicU64,
}

impl MetricsRegistry {
    /// Default latency sampling rate: one in this many decisions
    /// (power of two). Change it at runtime with
    /// [`Self::set_latency_sample_rate`].
    pub const DEFAULT_LATENCY_SAMPLE: u64 = 8;

    /// A zeroed registry.
    #[must_use]
    pub fn new() -> Self {
        Self {
            decisions_permit: Counter::new(),
            decisions_deny: Counter::new(),
            decide_errors: Counter::new(),
            decisions_sampled: Counter::new(),
            decide_latency_ns: Histogram::new(LATENCY_BOUNDS_NS),
            decide_latency_sketch: QuantileSketch::new(),
            stage_latency: std::array::from_fn(|_| QuantileSketch::new()),
            rule_matches_by_transaction: KeyedCounter::new(),
            index_rebuilds: Counter::new(),
            index_rebuild_ns: Counter::new(),
            index_full_rebuilds: Counter::new(),
            index_delta_applied: KeyedCounter::new(),
            index_delta_apply_ns: QuantileSketch::new(),
            index_cache_hits: Counter::new(),
            closure_cache_hits: Counter::new(),
            closure_cache_misses: Counter::new(),
            batch_calls: Counter::new(),
            batch_size: Histogram::new(BATCH_BOUNDS),
            audit_permit_total: Gauge::new(),
            audit_deny_total: Gauge::new(),
            audit_evictions: Gauge::new(),
            audit_retained: Gauge::new(),
            index_roles: Gauge::new(),
            index_rule_buckets: Gauge::new(),
            index_max_bucket: Gauge::new(),
            env_polls: Counter::new(),
            env_role_activations: Counter::new(),
            env_role_deactivations: Counter::new(),
            decisions_degraded: Counter::new(),
            env_roles_dropped_stale: Counter::new(),
            env_provider_timeouts: Counter::new(),
            env_provider_errors: Counter::new(),
            env_provider_retries: Counter::new(),
            env_backoff_ms: Counter::new(),
            env_stale_served: Counter::new(),
            env_unavailable: Counter::new(),
            env_breaker_opened: Counter::new(),
            env_breaker_half_open: Counter::new(),
            env_breaker_closed: Counter::new(),
            env_breaker_state: Gauge::new(),
            rule_heat: RuleHeat::new(),
            watchdog_ticks: Counter::new(),
            alerts_by_kind: KeyedCounter::new(),
            watchdog_deny_baseline_ppm: Gauge::new(),
            watchdog_degraded_baseline_ppm: Gauge::new(),
            watchdog_flap_baseline_ppm: Gauge::new(),
            watchdog_staleness_baseline_ppm: Gauge::new(),
            events: EventBus::new(),
            decide_sample: AtomicU64::new(0),
            latency_sample_mask: AtomicU64::new(Self::DEFAULT_LATENCY_SAMPLE - 1),
            recent_id_epoch: AtomicU64::new(0),
            recent_id_seqs: (0..Self::RECENT_IDS).map(|_| AtomicU64::new(0)).collect(),
            recent_id_cursor: AtomicU64::new(0),
        }
    }

    /// Capacity of the recent-decision-id ring read by the watchdog.
    pub const RECENT_IDS: usize = 256;

    /// Publishes a freshly minted decision id into the recent-id ring.
    /// Called by the engine's minting entry points on every decision;
    /// three relaxed atomic operations, no locks.
    pub fn note_decision(&self, id: DecisionId) {
        if !ENABLED || !id.is_assigned() {
            return;
        }
        self.recent_id_epoch.store(id.epoch(), Ordering::Relaxed);
        let slot = self.recent_id_cursor.fetch_add(1, Ordering::Relaxed) as usize;
        self.recent_id_seqs[slot % Self::RECENT_IDS].store(id.seq(), Ordering::Relaxed);
    }

    /// The current write cursor of the recent-id ring. Pass a saved
    /// cursor to [`Self::recent_decision_ids_since`] to read the ids
    /// published in between.
    #[must_use]
    pub fn recent_decision_cursor(&self) -> u64 {
        self.recent_id_cursor.load(Ordering::Relaxed)
    }

    /// The decision ids published since `since` (a cursor previously
    /// returned by [`Self::recent_decision_cursor`] or by this method),
    /// oldest first, plus the new cursor. At most
    /// [`Self::RECENT_IDS`] ids survive — older ones have been
    /// overwritten by the ring.
    #[must_use]
    pub fn recent_decision_ids_since(&self, since: u64) -> (Vec<DecisionId>, u64) {
        let now = self.recent_id_cursor.load(Ordering::Relaxed);
        let epoch = self.recent_id_epoch.load(Ordering::Relaxed);
        let span = now.saturating_sub(since).min(Self::RECENT_IDS as u64);
        let ids = (now - span..now)
            .filter_map(|position| {
                let seq = self.recent_id_seqs[position as usize % Self::RECENT_IDS]
                    .load(Ordering::Relaxed);
                (seq != 0).then(|| DecisionId::from_parts(epoch, seq))
            })
            .collect();
        (ids, now)
    }

    /// The current latency sampling rate: one in this many decisions is
    /// timed and traced into the latency series.
    #[must_use]
    pub fn latency_sample_rate(&self) -> u64 {
        self.latency_sample_mask.load(Ordering::Relaxed) + 1
    }

    /// Sets the latency sampling rate. `rate` is rounded up to a power
    /// of two; a rate of 1 times every decision, larger rates shrink
    /// tracing overhead at the cost of quantile coverage (reported by
    /// the `grbac_decide_sampled_total` counter). A rate of 0 is
    /// treated as 1.
    pub fn set_latency_sample_rate(&self, rate: u64) {
        let rate = rate.max(1).next_power_of_two();
        self.latency_sample_mask.store(rate - 1, Ordering::Relaxed);
    }

    /// Starts a latency sample for one decision: `Some(now)` for one
    /// in [`Self::latency_sample_rate`] calls, `None` otherwise (and
    /// always `None` with telemetry off). Sampling keeps the common
    /// decide path free of clock reads.
    #[must_use]
    pub fn decide_timer(&self) -> Option<Instant> {
        if !ENABLED {
            return None;
        }
        let mask = self.latency_sample_mask.load(Ordering::Relaxed);
        (self.decide_sample.fetch_add(1, Ordering::Relaxed) & mask == 0).then(Instant::now)
    }

    /// Completes a latency sample started by [`Self::decide_timer`].
    pub fn observe_decide_latency(&self, timer: Option<Instant>) {
        if let Some(start) = timer {
            self.decide_latency_ns
                .observe(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
    }

    /// Feeds a completed decision trace into the continuous-profiling
    /// series: the end-to-end latency histogram and sketch, one
    /// quantile sketch per mediation stage, and the sampled-decision
    /// counter. Called by the engine for every latency-sampled or
    /// explicitly traced decision.
    /// When the trace carries an assigned [`DecisionId`], the id is
    /// retained as an exemplar on the latency sketches, correlating the
    /// exported quantiles back to one concrete decision.
    pub fn observe_trace(&self, trace: &DecisionTrace) {
        if !ENABLED {
            return;
        }
        self.decisions_sampled.inc();
        self.decide_latency_ns.observe(trace.total_nanos);
        self.decide_latency_sketch
            .observe_with_exemplar(trace.total_nanos, trace.decision_id);
        for record in &trace.stages {
            if let Some(slot) = Stage::ALL.iter().position(|&s| s == record.stage) {
                self.stage_latency[slot].observe_with_exemplar(record.nanos, trace.decision_id);
            }
        }
    }

    /// A point-in-time snapshot with raw-id transaction and rule
    /// labels.
    ///
    /// Use [`Grbac::metrics_snapshot`](crate::engine::Grbac::metrics_snapshot)
    /// to resolve transaction and rule ids to their declared names.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.snapshot_with(|raw| raw.to_string())
    }

    /// Like [`Self::snapshot`], labelling per-transaction series with
    /// `transaction_label(raw_id)`. Per-rule series keep raw
    /// `rule<id>` labels; see [`Self::snapshot_with_labels`].
    #[must_use]
    pub fn snapshot_with(&self, transaction_label: impl Fn(u64) -> String) -> MetricsSnapshot {
        self.snapshot_with_labels(transaction_label, |raw| format!("rule{raw}"))
    }

    /// Like [`Self::snapshot`], labelling per-transaction series with
    /// `transaction_label(raw_id)` and per-rule heat series with
    /// `rule_label(raw_id)`.
    #[must_use]
    pub fn snapshot_with_labels(
        &self,
        transaction_label: impl Fn(u64) -> String,
        rule_label: impl Fn(u64) -> String,
    ) -> MetricsSnapshot {
        let mut counters = BTreeMap::new();
        for (name, counter) in [
            ("grbac_decisions_permit_total", &self.decisions_permit),
            ("grbac_decisions_deny_total", &self.decisions_deny),
            ("grbac_decide_errors_total", &self.decide_errors),
            ("grbac_decide_sampled_total", &self.decisions_sampled),
            ("grbac_index_rebuilds_total", &self.index_rebuilds),
            ("grbac_index_rebuild_ns_total", &self.index_rebuild_ns),
            ("grbac_index_full_rebuilds_total", &self.index_full_rebuilds),
            ("grbac_index_cache_hits_total", &self.index_cache_hits),
            ("grbac_closure_cache_hits_total", &self.closure_cache_hits),
            (
                "grbac_closure_cache_misses_total",
                &self.closure_cache_misses,
            ),
            ("grbac_batch_calls_total", &self.batch_calls),
            ("grbac_env_polls_total", &self.env_polls),
            (
                "grbac_env_role_activations_total",
                &self.env_role_activations,
            ),
            (
                "grbac_env_role_deactivations_total",
                &self.env_role_deactivations,
            ),
            ("grbac_decisions_degraded_total", &self.decisions_degraded),
            (
                "grbac_env_roles_dropped_stale_total",
                &self.env_roles_dropped_stale,
            ),
            (
                "grbac_env_provider_timeouts_total",
                &self.env_provider_timeouts,
            ),
            ("grbac_env_provider_errors_total", &self.env_provider_errors),
            (
                "grbac_env_provider_retries_total",
                &self.env_provider_retries,
            ),
            ("grbac_env_backoff_ms_total", &self.env_backoff_ms),
            ("grbac_env_stale_served_total", &self.env_stale_served),
            ("grbac_env_unavailable_total", &self.env_unavailable),
            ("grbac_env_breaker_opened_total", &self.env_breaker_opened),
            (
                "grbac_env_breaker_half_open_total",
                &self.env_breaker_half_open,
            ),
            ("grbac_env_breaker_closed_total", &self.env_breaker_closed),
            ("grbac_watchdog_ticks_total", &self.watchdog_ticks),
        ] {
            counters.insert(name.to_owned(), counter.get());
        }
        counters.insert(
            "grbac_rule_heat_resets_total".to_owned(),
            self.rule_heat.reset_count(),
        );
        counters.insert(
            "grbac_labels_dropped_total".to_owned(),
            self.rule_matches_by_transaction.dropped_total()
                + self.index_delta_applied.dropped_total()
                + self.alerts_by_kind.dropped_total(),
        );
        counters.insert(
            "grbac_events_dropped_total".to_owned(),
            self.events.dropped_total(),
        );

        let mut gauges = BTreeMap::new();
        for (name, gauge) in [
            ("grbac_audit_permit_total", &self.audit_permit_total),
            ("grbac_audit_deny_total", &self.audit_deny_total),
            ("grbac_audit_evictions", &self.audit_evictions),
            ("grbac_audit_retained", &self.audit_retained),
            ("grbac_index_roles", &self.index_roles),
            ("grbac_index_rule_buckets", &self.index_rule_buckets),
            ("grbac_index_max_bucket", &self.index_max_bucket),
            ("grbac_env_breaker_state", &self.env_breaker_state),
            (
                "grbac_watchdog_deny_baseline_ppm",
                &self.watchdog_deny_baseline_ppm,
            ),
            (
                "grbac_watchdog_degraded_baseline_ppm",
                &self.watchdog_degraded_baseline_ppm,
            ),
            (
                "grbac_watchdog_flap_baseline_ppm",
                &self.watchdog_flap_baseline_ppm,
            ),
            (
                "grbac_watchdog_staleness_baseline_ppm",
                &self.watchdog_staleness_baseline_ppm,
            ),
        ] {
            gauges.insert(name.to_owned(), gauge.get());
        }
        gauges.insert(
            "grbac_rule_heat_enabled".to_owned(),
            u64::from(self.rule_heat.is_enabled()),
        );
        gauges.insert(
            "grbac_decide_sample_rate".to_owned(),
            if ENABLED {
                self.latency_sample_rate()
            } else {
                0
            },
        );
        gauges.insert(
            "grbac_event_subscribers".to_owned(),
            self.events.subscriber_count(),
        );
        gauges.insert(
            "grbac_events_enabled".to_owned(),
            u64::from(self.events.is_enabled()),
        );

        let mut histograms = BTreeMap::new();
        histograms.insert(
            "grbac_decide_latency_ns".to_owned(),
            self.decide_latency_ns.snapshot(),
        );
        histograms.insert("grbac_batch_size".to_owned(), self.batch_size.snapshot());

        let mut series = BTreeMap::new();
        for (slot, &stage) in Stage::ALL.iter().enumerate() {
            series.insert(
                stage.name().to_owned(),
                QuantileSnapshot::from_sketch(&self.stage_latency[slot].snapshot()),
            );
        }
        series.insert(
            "total".to_owned(),
            QuantileSnapshot::from_sketch(&self.decide_latency_sketch.snapshot()),
        );
        let mut summaries = BTreeMap::new();
        summaries.insert(
            "grbac_stage_latency_ns".to_owned(),
            SummaryFamily {
                label: "stage".to_owned(),
                series,
            },
        );
        summaries.insert(
            "grbac_index_delta_apply_ns".to_owned(),
            SummaryFamily {
                label: "op".to_owned(),
                series: BTreeMap::from([(
                    "apply".to_owned(),
                    QuantileSnapshot::from_sketch(&self.index_delta_apply_ns.snapshot()),
                )]),
            },
        );

        let mut rule_matches: BTreeMap<String, u64> = self
            .rule_matches_by_transaction
            .snapshot()
            .into_iter()
            .map(|(raw, value)| (transaction_label(raw), value))
            .collect();
        let overflow = self.rule_matches_by_transaction.overflow_total();
        if overflow > 0 {
            *rule_matches.entry("other".to_owned()).or_insert(0) += overflow;
        }
        let mut keyed = BTreeMap::new();
        keyed.insert(
            "grbac_rule_matches_total".to_owned(),
            KeyedSnapshot {
                label: "transaction".to_owned(),
                values: rule_matches,
            },
        );
        let heat = self.rule_heat.snapshot();
        let heat_family = |pick: fn(&super::heat::RuleHeatEntry) -> u64| KeyedSnapshot {
            label: "rule".to_owned(),
            values: heat
                .rules
                .iter()
                .filter(|(_, entry)| pick(entry) > 0)
                .map(|(&raw, entry)| (rule_label(raw), pick(entry)))
                .collect(),
        };
        keyed.insert(
            "grbac_rule_heat_matched_total".to_owned(),
            heat_family(|entry| entry.matched),
        );
        keyed.insert(
            "grbac_rule_heat_won_permit_total".to_owned(),
            heat_family(|entry| entry.won_permit),
        );
        keyed.insert(
            "grbac_rule_heat_won_deny_total".to_owned(),
            heat_family(|entry| entry.won_deny),
        );
        keyed.insert(
            "grbac_index_delta_applied_total".to_owned(),
            KeyedSnapshot {
                label: "kind".to_owned(),
                values: self
                    .index_delta_applied
                    .snapshot()
                    .into_iter()
                    .filter_map(|(slot, value)| {
                        DeltaKind::from_slot(slot).map(|kind| (kind.name().to_owned(), value))
                    })
                    .collect(),
            },
        );
        keyed.insert(
            "grbac_events_published_total".to_owned(),
            KeyedSnapshot {
                label: "kind".to_owned(),
                values: EventKind::ALL
                    .iter()
                    .filter_map(|&kind| {
                        let value = self.events.published_total(kind);
                        (value > 0).then(|| (kind.name().to_owned(), value))
                    })
                    .collect(),
            },
        );
        keyed.insert(
            "grbac_alerts_total".to_owned(),
            KeyedSnapshot {
                label: "kind".to_owned(),
                values: self
                    .alerts_by_kind
                    .snapshot()
                    .into_iter()
                    .filter_map(|(slot, value)| {
                        AlertKind::from_slot(slot).map(|kind| (kind.name().to_owned(), value))
                    })
                    .collect(),
            },
        );

        MetricsSnapshot {
            counters,
            gauges,
            histograms,
            keyed,
            summaries,
        }
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

/// Compact quantile readings lifted from a [`SketchSnapshot`] for
/// export: the three headline percentiles plus the exact scalar
/// accumulators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuantileSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Exemplar correlated with the median bucket, if one was retained.
    #[serde(default)]
    pub exemplar_p50: Option<Exemplar>,
    /// Exemplar correlated with the p95 bucket.
    #[serde(default)]
    pub exemplar_p95: Option<Exemplar>,
    /// Exemplar correlated with the p99 bucket.
    #[serde(default)]
    pub exemplar_p99: Option<Exemplar>,
}

impl QuantileSnapshot {
    /// Reads the headline quantiles — and the exemplars nearest each of
    /// them — out of a full sketch snapshot.
    #[must_use]
    pub fn from_sketch(sketch: &SketchSnapshot) -> Self {
        Self {
            count: sketch.count,
            sum: sketch.sum,
            min: if sketch.count == 0 { 0 } else { sketch.min },
            max: sketch.max,
            p50: sketch.quantile(0.5),
            p95: sketch.quantile(0.95),
            p99: sketch.quantile(0.99),
            exemplar_p50: sketch.exemplar_near(0.5),
            exemplar_p95: sketch.exemplar_near(0.95),
            exemplar_p99: sketch.exemplar_near(0.99),
        }
    }
}

/// One labelled family of quantile summaries in a snapshot (e.g.
/// per-stage latency, labelled by stage name).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SummaryFamily {
    /// The label key (e.g. `stage`).
    pub label: String,
    /// Label value → quantile readings.
    pub series: BTreeMap<String, QuantileSnapshot>,
}

/// One labelled counter family in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyedSnapshot {
    /// The label key (e.g. `transaction`).
    pub label: String,
    /// Label value → counter value.
    pub values: BTreeMap<String, u64>,
}

/// A point-in-time copy of a [`MetricsRegistry`], ready for export or
/// diffing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Labelled counter families by name.
    pub keyed: BTreeMap<String, KeyedSnapshot>,
    /// Quantile summary families by name (defaults to empty for
    /// snapshots serialized before the field existed).
    #[serde(default)]
    pub summaries: BTreeMap<String, SummaryFamily>,
}

impl MetricsSnapshot {
    /// This snapshot minus an `earlier` one: counters, histograms and
    /// keyed series subtract (saturating); gauges and quantile
    /// summaries keep this snapshot's values (a gauge is a level, and
    /// a quantile is not subtractable — diff the underlying
    /// [`SketchSnapshot`]s for windowed quantiles).
    #[must_use]
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(name, &value)| {
                let was = earlier.counters.get(name).copied().unwrap_or(0);
                (name.clone(), value.saturating_sub(was))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(name, histogram)| {
                let diffed = match earlier.histograms.get(name) {
                    Some(was) => histogram.delta(was),
                    None => histogram.clone(),
                };
                (name.clone(), diffed)
            })
            .collect();
        let keyed = self
            .keyed
            .iter()
            .map(|(name, family)| {
                let values = family
                    .values
                    .iter()
                    .map(|(label, &value)| {
                        let was = earlier
                            .keyed
                            .get(name)
                            .and_then(|f| f.values.get(label))
                            .copied()
                            .unwrap_or(0);
                        (label.clone(), value.saturating_sub(was))
                    })
                    .collect();
                (
                    name.clone(),
                    KeyedSnapshot {
                        label: family.label.clone(),
                        values,
                    },
                )
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
            keyed,
            summaries: self.summaries.clone(),
        }
    }

    /// Convenience: a counter's value (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Convenience: a gauge's value (0 when absent).
    #[must_use]
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let registry = MetricsRegistry::new();
        registry.decisions_permit.inc();
        registry.decisions_permit.add(2);
        registry.audit_retained.set(7);
        if super::ENABLED {
            assert_eq!(registry.decisions_permit.get(), 3);
            assert_eq!(registry.audit_retained.get(), 7);
        } else {
            assert_eq!(registry.decisions_permit.get(), 0);
            assert_eq!(registry.audit_retained.get(), 0);
        }
    }

    #[test]
    fn histogram_buckets_values() {
        let histogram = Histogram::new(&[10, 100, u64::MAX]);
        histogram.observe(5);
        histogram.observe(10);
        histogram.observe(50);
        histogram.observe(1_000);
        let snap = histogram.snapshot();
        if super::ENABLED {
            assert_eq!(snap.counts, vec![2, 1, 1]);
            assert_eq!(snap.count, 4);
            assert_eq!(snap.sum, 1_065);
            assert!((snap.mean() - 266.25).abs() < f64::EPSILON);
        } else {
            assert_eq!(snap.count, 0);
        }
    }

    #[test]
    #[should_panic(expected = "must end in u64::MAX")]
    fn histogram_rejects_unbounded_tails() {
        let _ = Histogram::new(&[10, 100]);
    }

    #[test]
    fn keyed_counter_widens_on_demand() {
        let keyed = KeyedCounter::new();
        keyed.add(3, 2);
        keyed.add(0, 1);
        keyed.add(3, 1);
        if super::ENABLED {
            assert_eq!(keyed.get(3), 3);
            assert_eq!(keyed.get(0), 1);
            assert_eq!(keyed.get(9), 0);
            assert_eq!(keyed.snapshot(), BTreeMap::from([(0, 1), (3, 3)]));
        } else {
            assert!(keyed.snapshot().is_empty());
        }
    }

    #[test]
    fn keyed_counter_caps_cardinality_into_other() {
        let keyed = KeyedCounter::with_cap(4);
        keyed.add(0, 1);
        keyed.add(3, 2);
        keyed.add(4, 5); // at the cap: folded
        keyed.add(1_000_000, 7); // far past it: folded, table untouched
        if super::ENABLED {
            assert_eq!(keyed.get(0), 1);
            assert_eq!(keyed.get(3), 2);
            assert_eq!(keyed.get(4), 0, "capped key never got a slot");
            assert_eq!(keyed.overflow_total(), 12);
            assert_eq!(keyed.dropped_total(), 2);
            assert_eq!(keyed.snapshot(), BTreeMap::from([(0, 1), (3, 2)]));
            // Raising the cap lets new keys through again.
            keyed.set_cap(8);
            keyed.add(4, 1);
            assert_eq!(keyed.get(4), 1);
            assert_eq!(keyed.dropped_total(), 2);
        } else {
            assert_eq!(keyed.overflow_total(), 0);
        }
    }

    #[test]
    fn registry_folds_capped_transaction_labels_into_other() {
        let registry = MetricsRegistry::new();
        registry.rule_matches_by_transaction.set_cap(2);
        registry.rule_matches_by_transaction.add(0, 3);
        registry.rule_matches_by_transaction.add(9, 4);
        registry.rule_matches_by_transaction.add(7, 1);
        let snap = registry.snapshot();
        if super::ENABLED {
            let family = &snap.keyed["grbac_rule_matches_total"];
            assert_eq!(family.values["0"], 3);
            assert_eq!(family.values["other"], 5);
            assert_eq!(snap.counter("grbac_labels_dropped_total"), 2);
        } else {
            assert_eq!(snap.counter("grbac_labels_dropped_total"), 0);
        }
    }

    #[test]
    fn recent_id_ring_windows_between_cursors() {
        let registry = MetricsRegistry::new();
        let cursor = registry.recent_decision_cursor();
        for seq in 1..=5u64 {
            registry.note_decision(DecisionId::from_parts(11, seq));
        }
        registry.note_decision(DecisionId::UNASSIGNED); // ignored
        let (ids, cursor) = registry.recent_decision_ids_since(cursor);
        if super::ENABLED {
            assert_eq!(
                ids,
                (1..=5)
                    .map(|seq| DecisionId::from_parts(11, seq))
                    .collect::<Vec<_>>()
            );
        } else {
            assert!(ids.is_empty());
        }
        // Nothing new since the fresh cursor.
        let (ids, _) = registry.recent_decision_ids_since(cursor);
        assert!(ids.is_empty());
        // Overflowing the ring keeps only the newest RECENT_IDS ids.
        for seq in 6..=(MetricsRegistry::RECENT_IDS as u64 + 10) {
            registry.note_decision(DecisionId::from_parts(11, seq));
        }
        let (ids, _) = registry.recent_decision_ids_since(0);
        if super::ENABLED {
            assert_eq!(ids.len(), MetricsRegistry::RECENT_IDS);
            assert_eq!(
                ids.last().copied(),
                Some(DecisionId::from_parts(
                    11,
                    MetricsRegistry::RECENT_IDS as u64 + 10
                ))
            );
        }
    }

    #[test]
    fn snapshot_delta_subtracts_counters_keeps_gauges() {
        let registry = MetricsRegistry::new();
        registry.decisions_permit.add(5);
        registry.audit_retained.set(2);
        let before = registry.snapshot();
        registry.decisions_permit.add(3);
        registry.audit_retained.set(9);
        registry.rule_matches_by_transaction.add(1, 4);
        let after = registry.snapshot();
        let delta = after.delta(&before);
        if super::ENABLED {
            assert_eq!(delta.counter("grbac_decisions_permit_total"), 3);
            assert_eq!(delta.gauge("grbac_audit_retained"), 9);
            assert_eq!(delta.keyed["grbac_rule_matches_total"].values["1"], 4);
        } else {
            assert_eq!(delta.counter("grbac_decisions_permit_total"), 0);
        }
    }

    #[test]
    fn latency_sampling_is_one_in_n() {
        let registry = MetricsRegistry::new();
        let sampled = (0..64)
            .filter(|_| {
                let timer = registry.decide_timer();
                registry.observe_decide_latency(timer);
                timer.is_some()
            })
            .count() as u64;
        if super::ENABLED {
            assert_eq!(sampled, 64 / MetricsRegistry::DEFAULT_LATENCY_SAMPLE);
            assert_eq!(registry.decide_latency_ns.count(), sampled);
        } else {
            assert_eq!(sampled, 0);
        }
    }

    #[test]
    fn latency_sample_rate_is_runtime_configurable() {
        let registry = MetricsRegistry::new();
        assert_eq!(
            registry.latency_sample_rate(),
            MetricsRegistry::DEFAULT_LATENCY_SAMPLE
        );
        registry.set_latency_sample_rate(1);
        assert_eq!(registry.latency_sample_rate(), 1);
        let all = (0..10)
            .filter(|_| registry.decide_timer().is_some())
            .count();
        if super::ENABLED {
            assert_eq!(all, 10, "rate 1 samples every decision");
        } else {
            assert_eq!(all, 0);
        }
        // Non-power-of-two rates round up; zero clamps to one.
        registry.set_latency_sample_rate(3);
        assert_eq!(registry.latency_sample_rate(), 4);
        registry.set_latency_sample_rate(0);
        assert_eq!(registry.latency_sample_rate(), 1);
    }

    #[test]
    fn observe_trace_feeds_every_stage_sketch() {
        use super::super::trace::{DecisionTrace, Stage, StageRecord};
        let registry = MetricsRegistry::new();
        let trace = DecisionTrace {
            decision_id: DecisionId::from_parts(3, 17),
            stages: Stage::ALL
                .iter()
                .enumerate()
                .map(|(i, &stage)| StageRecord {
                    stage,
                    nanos: (i as u64 + 1) * 100,
                    items: 1,
                })
                .collect(),
            total_nanos: 1_500,
        };
        registry.observe_trace(&trace);
        registry.observe_trace(&trace);
        let snap = registry.snapshot();
        if super::ENABLED {
            assert_eq!(snap.counter("grbac_decide_sampled_total"), 2);
            assert_eq!(snap.histograms["grbac_decide_latency_ns"].count, 2);
            let family = &snap.summaries["grbac_stage_latency_ns"];
            assert_eq!(family.label, "stage");
            assert_eq!(family.series.len(), 6, "five stages plus total");
            for stage in Stage::ALL {
                assert_eq!(family.series[stage.name()].count, 2);
            }
            let total = &family.series["total"];
            assert_eq!(total.count, 2);
            // Every observation was 1500 ns, so the quantiles agree.
            assert!(total.p50.abs_diff(1_500) as f64 / 1_500.0 <= 0.07);
            assert!(total.p99.abs_diff(1_500) as f64 / 1_500.0 <= 0.07);
            // The traced decision's id survives as the p99 exemplar.
            let exemplar = total.exemplar_p99.expect("exemplar retained");
            assert_eq!(exemplar.decision_id, DecisionId::from_parts(3, 17));
            assert_eq!(exemplar.value, 1_500);
            assert_eq!(snap.gauge("grbac_decide_sample_rate"), 8);
        } else {
            assert_eq!(snap.counter("grbac_decide_sampled_total"), 0);
            assert_eq!(
                snap.summaries["grbac_stage_latency_ns"].series["total"].count,
                0
            );
        }
    }
}
