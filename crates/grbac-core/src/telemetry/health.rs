//! Decision-stream anomaly watchdogs: EWMA baselines over the live
//! mediation counters, with structured alerts.
//!
//! A [`DecisionWatchdog`] is a *pull* detector: it holds no clock and
//! spawns no thread. The embedding layer (an operator loop,
//! `AwareHome`, a bench harness) calls [`DecisionWatchdog::tick`] at
//! whatever cadence it likes — once per virtual minute, once per N
//! workload events — and each tick reads the registry's counters,
//! diffs them against the previous tick, and folds the resulting
//! *rates* into exponentially-weighted baselines:
//!
//! * **deny rate** — denies / decisions this tick,
//! * **degraded rate** — degraded decisions / decisions,
//! * **env-role flap rate** — role activations + deactivations /
//!   provider polls,
//! * **staleness burn** — stale-served + unavailable polls / polls.
//!
//! Each signal keeps an EWMA of its mean *and* of its absolute
//! deviation; a tick alerts when the observed rate exceeds the mean by
//! more than `sensitivity × max(deviation, deviation_floor)`. The
//! deviation floor keeps a perfectly calm baseline (deviation → 0)
//! from alerting on harmless jitter, and the first
//! [`WatchdogConfig::warmup_ticks`] ticks only learn — they never
//! alert — so clean steady workloads raise **zero false alarms**
//! (experiment E13 holds this on the E11 workload). Sustained faults
//! are folded into the baseline like everything else, so a watchdog
//! alarms on the *transition* into an incident; rates that stay bad
//! become the new normal (re-arm by replacing the watchdog).
//!
//! Alerts are [`AlertRecord`]s: kept in the watchdog's bounded log,
//! counted per kind into the registry
//! (`grbac_alerts_total{kind="…"}`), with the learned baselines
//! mirrored as gauges — all of which both exporters render.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use super::metrics::MetricsRegistry;
use super::ENABLED;
use crate::id::DecisionId;

/// The four decision-stream signals a watchdog baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlertKind {
    /// Deny rate spiked above its baseline (policy drift, a hostile
    /// actor, or a newly-shadowing rule).
    DenyRateSpike,
    /// Degraded-decision rate surged (the sensing layer is limping).
    DegradedSurge,
    /// Environment roles flipped far more often than usual (a flapping
    /// sensor or an oscillating provider).
    EnvRoleFlapStorm,
    /// Polls answered stale or not at all (the provider is burning
    /// through its staleness budget).
    StalenessBurn,
}

impl AlertKind {
    /// All kinds, in the order used for dense keyed-counter slots.
    pub const ALL: [AlertKind; 4] = [
        AlertKind::DenyRateSpike,
        AlertKind::DegradedSurge,
        AlertKind::EnvRoleFlapStorm,
        AlertKind::StalenessBurn,
    ];

    /// Stable snake_case name (the `kind` label on
    /// `grbac_alerts_total`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AlertKind::DenyRateSpike => "deny_rate_spike",
            AlertKind::DegradedSurge => "degraded_surge",
            AlertKind::EnvRoleFlapStorm => "env_role_flap_storm",
            AlertKind::StalenessBurn => "staleness_burn",
        }
    }

    /// The dense slot this kind occupies in keyed counters.
    #[must_use]
    pub fn slot(self) -> u64 {
        Self::ALL.iter().position(|&k| k == self).unwrap_or(0) as u64
    }

    /// The kind for a dense slot, if in range.
    #[must_use]
    pub fn from_slot(slot: u64) -> Option<AlertKind> {
        Self::ALL.get(slot as usize).copied()
    }
}

/// One anomaly, as observed by a watchdog tick.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlertRecord {
    /// Monotonic per-watchdog sequence number.
    pub seq: u64,
    /// The tick (1-based) that raised the alert.
    pub tick: u64,
    /// Which signal breached.
    pub kind: AlertKind,
    /// The rate observed this tick.
    pub observed: f64,
    /// The EWMA mean before this tick's observation was folded in.
    pub baseline: f64,
    /// The EWMA absolute deviation before this tick (pre-floor).
    pub deviation: f64,
    /// The denominator behind `observed` (decisions or polls this
    /// tick).
    pub window: u64,
    /// Correlation ids of decisions minted inside the breaching
    /// window, newest-biased and capped at
    /// [`DecisionWatchdog::MAX_ALERT_IDS`] — the starting points for a
    /// forensic drill-down into what the engine was deciding when the
    /// signal breached. Empty for alerts recorded before ids existed
    /// and for poll-driven signals on an idle decide path.
    #[serde(default)]
    pub decision_ids: Vec<DecisionId>,
}

impl AlertRecord {
    /// How many floored deviations the observation sat above the
    /// baseline — a unitless severity (always ≥ the configured
    /// sensitivity for a raised alert).
    #[must_use]
    pub fn severity(&self, config: &WatchdogConfig) -> f64 {
        (self.observed - self.baseline) / self.deviation.max(config.deviation_floor)
    }
}

/// Tuning for a [`DecisionWatchdog`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WatchdogConfig {
    /// EWMA smoothing factor in `(0, 1]` for both the mean and the
    /// deviation (larger = faster to adapt, quicker to forgive).
    pub alpha: f64,
    /// Alert when `observed - mean > sensitivity × deviation` (after
    /// flooring the deviation).
    pub sensitivity: f64,
    /// Lower bound on the deviation used for thresholding, so a calm
    /// baseline cannot alert on noise. In rate units (0.05 = five
    /// percentage points).
    pub deviation_floor: f64,
    /// Ticks that only learn the baseline and never alert.
    pub warmup_ticks: u64,
    /// Minimum decisions in a tick for the decision-rate signals to be
    /// evaluated (thin ticks neither learn nor alert).
    pub min_decisions: u64,
    /// Minimum provider polls in a tick for the poll-rate signals.
    pub min_polls: u64,
    /// Alert-log retention; older records are dropped first.
    pub max_alerts: usize,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        Self {
            alpha: 0.3,
            sensitivity: 4.0,
            deviation_floor: 0.05,
            warmup_ticks: 5,
            min_decisions: 10,
            min_polls: 10,
            max_alerts: 1024,
        }
    }
}

/// EWMA mean + EWMA absolute deviation for one signal.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
struct Baseline {
    mean: f64,
    deviation: f64,
    samples: u64,
}

impl Baseline {
    /// Checks `observed` against the learned baseline, then folds it
    /// in. Returns the pre-update `(mean, deviation)` when the
    /// observation breaches upward (a drop in deny rate is not an
    /// anomaly worth paging on).
    fn observe(&mut self, observed: f64, config: &WatchdogConfig) -> Option<(f64, f64)> {
        let breach = if self.samples >= config.warmup_ticks {
            let threshold = config.sensitivity * self.deviation.max(config.deviation_floor);
            (observed - self.mean > threshold).then_some((self.mean, self.deviation))
        } else {
            None
        };
        if self.samples == 0 {
            self.mean = observed;
        } else {
            self.mean += config.alpha * (observed - self.mean);
            let error = (observed - self.mean).abs();
            self.deviation += config.alpha * (error - self.deviation);
        }
        self.samples += 1;
        breach
    }
}

/// The counter readings one tick is diffed against.
#[derive(Debug, Clone, Copy, Default)]
struct CounterCursor {
    decisions: u64,
    denies: u64,
    degraded: u64,
    polls: u64,
    flips: u64,
    stale: u64,
}

impl CounterCursor {
    fn read(registry: &MetricsRegistry) -> Self {
        Self {
            decisions: registry.decisions_permit.get() + registry.decisions_deny.get(),
            denies: registry.decisions_deny.get(),
            degraded: registry.decisions_degraded.get(),
            polls: registry.env_polls.get(),
            flips: registry.env_role_activations.get() + registry.env_role_deactivations.get(),
            stale: registry.env_stale_served.get() + registry.env_unavailable.get(),
        }
    }
}

/// A pull-model anomaly detector over one [`MetricsRegistry`] (see the
/// module docs for the signal definitions and alerting rule).
#[derive(Debug)]
pub struct DecisionWatchdog {
    config: WatchdogConfig,
    cursor: CounterCursor,
    /// Read position in the registry's recent-decision-id ring, so
    /// each tick sees only the ids minted since the previous tick.
    id_cursor: u64,
    baselines: [Baseline; 4],
    ticks: u64,
    next_seq: u64,
    alerts: VecDeque<AlertRecord>,
}

impl Default for DecisionWatchdog {
    fn default() -> Self {
        Self::new(WatchdogConfig::default())
    }
}

impl DecisionWatchdog {
    /// A fresh watchdog; baselines start empty and the first tick only
    /// establishes the cursor.
    #[must_use]
    pub fn new(config: WatchdogConfig) -> Self {
        Self {
            config,
            cursor: CounterCursor::default(),
            id_cursor: 0,
            baselines: [Baseline::default(); 4],
            ticks: 0,
            next_seq: 0,
            alerts: VecDeque::new(),
        }
    }

    /// Upper bound on the decision ids attached to one alert.
    pub const MAX_ALERT_IDS: usize = 32;

    /// The active tuning.
    #[must_use]
    pub fn config(&self) -> &WatchdogConfig {
        &self.config
    }

    /// Ticks evaluated so far.
    #[must_use]
    pub fn tick_count(&self) -> u64 {
        self.ticks
    }

    /// The retained alert log, oldest first.
    pub fn alerts(&self) -> impl Iterator<Item = &AlertRecord> {
        self.alerts.iter()
    }

    /// Total alerts ever raised (including any dropped from the log).
    #[must_use]
    pub fn alert_count(&self) -> u64 {
        self.next_seq
    }

    /// Evaluates one tick: diffs the registry counters against the
    /// previous tick, scores the four signals against their baselines,
    /// and returns the alerts raised (also retained in
    /// [`Self::alerts`] and counted into the registry's
    /// `grbac_alerts_total` series). The learned deny/degraded
    /// baselines are mirrored into registry gauges in parts-per-million
    /// so exporters show what the watchdog currently considers normal.
    pub fn tick(&mut self, registry: &MetricsRegistry) -> Vec<AlertRecord> {
        let now = CounterCursor::read(registry);
        let was = std::mem::replace(&mut self.cursor, now);
        self.ticks += 1;
        registry.watchdog_ticks.inc();
        if !ENABLED {
            return Vec::new();
        }

        // Ids minted inside this tick's window; attached to any alert
        // raised below so one alert resolves to concrete decisions.
        let (mut window_ids, id_cursor) = registry.recent_decision_ids_since(self.id_cursor);
        self.id_cursor = id_cursor;
        if window_ids.len() > Self::MAX_ALERT_IDS {
            // Keep the newest ids: closest to the breach the tick saw.
            window_ids.drain(..window_ids.len() - Self::MAX_ALERT_IDS);
        }

        let decisions = now.decisions.saturating_sub(was.decisions);
        let polls = now.polls.saturating_sub(was.polls);
        let rate = |delta: u64, window: u64| delta as f64 / window as f64;

        let mut signals: [Option<(f64, u64)>; 4] = [None; 4];
        if decisions >= self.config.min_decisions {
            signals[AlertKind::DenyRateSpike.slot() as usize] = Some((
                rate(now.denies.saturating_sub(was.denies), decisions),
                decisions,
            ));
            signals[AlertKind::DegradedSurge.slot() as usize] = Some((
                rate(now.degraded.saturating_sub(was.degraded), decisions),
                decisions,
            ));
        }
        if polls >= self.config.min_polls {
            signals[AlertKind::EnvRoleFlapStorm.slot() as usize] =
                Some((rate(now.flips.saturating_sub(was.flips), polls), polls));
            signals[AlertKind::StalenessBurn.slot() as usize] =
                Some((rate(now.stale.saturating_sub(was.stale), polls), polls));
        }

        let mut raised = Vec::new();
        for kind in AlertKind::ALL {
            let slot = kind.slot() as usize;
            let Some((observed, window)) = signals[slot] else {
                continue;
            };
            if let Some((baseline, deviation)) =
                self.baselines[slot].observe(observed, &self.config)
            {
                let record = AlertRecord {
                    seq: self.next_seq,
                    tick: self.ticks,
                    kind,
                    observed,
                    baseline,
                    deviation,
                    window,
                    decision_ids: window_ids.clone(),
                };
                self.next_seq += 1;
                registry.alerts_by_kind.add(kind.slot(), 1);
                registry
                    .events
                    .publish(super::events::EventData::Alert(record.clone()));
                self.alerts.push_back(record.clone());
                while self.alerts.len() > self.config.max_alerts {
                    self.alerts.pop_front();
                }
                raised.push(record);
            }
        }

        let ppm = |value: f64| (value * 1e6).round().max(0.0) as u64;
        registry.watchdog_deny_baseline_ppm.set(ppm(self.baselines
            [AlertKind::DenyRateSpike.slot() as usize]
            .mean));
        registry
            .watchdog_degraded_baseline_ppm
            .set(ppm(self.baselines
                [AlertKind::DegradedSurge.slot() as usize]
                .mean));
        registry.watchdog_flap_baseline_ppm.set(ppm(self.baselines
            [AlertKind::EnvRoleFlapStorm.slot() as usize]
            .mean));
        registry
            .watchdog_staleness_baseline_ppm
            .set(ppm(self.baselines
                [AlertKind::StalenessBurn.slot() as usize]
                .mean));
        raised
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(
        watchdog: &mut DecisionWatchdog,
        registry: &MetricsRegistry,
        permits: u64,
        denies: u64,
    ) -> Vec<AlertRecord> {
        registry.decisions_permit.add(permits);
        registry.decisions_deny.add(denies);
        watchdog.tick(registry)
    }

    #[test]
    fn steady_stream_never_alerts() {
        let registry = MetricsRegistry::new();
        let mut watchdog = DecisionWatchdog::default();
        for _ in 0..50 {
            assert!(drive(&mut watchdog, &registry, 90, 10).is_empty());
        }
        assert_eq!(watchdog.alert_count(), 0);
        assert_eq!(watchdog.tick_count(), 50);
    }

    #[test]
    fn deny_spike_alerts_once_warmed() {
        let registry = MetricsRegistry::new();
        let mut watchdog = DecisionWatchdog::default();
        for _ in 0..10 {
            assert!(drive(&mut watchdog, &registry, 95, 5).is_empty());
        }
        let raised = drive(&mut watchdog, &registry, 20, 80);
        if ENABLED {
            assert_eq!(raised.len(), 1);
            let alert = &raised[0];
            assert_eq!(alert.kind, AlertKind::DenyRateSpike);
            assert!(alert.observed > 0.7);
            assert!(alert.baseline < 0.1);
            assert!(alert.severity(watchdog.config()) >= watchdog.config().sensitivity);
            assert_eq!(watchdog.alerts().count(), 1);
            assert_eq!(
                registry.alerts_by_kind.get(AlertKind::DenyRateSpike.slot()),
                1
            );
            assert!(registry.watchdog_deny_baseline_ppm.get() > 0);
        } else {
            assert!(raised.is_empty());
        }
    }

    #[test]
    fn alerts_capture_window_decision_ids() {
        let registry = MetricsRegistry::new();
        let mut watchdog = DecisionWatchdog::default();
        for _ in 0..10 {
            drive(&mut watchdog, &registry, 95, 5);
        }
        // Ids minted during the breaching window — and a flood before
        // it that a previous tick already consumed.
        registry.note_decision(DecisionId::from_parts(5, 999));
        watchdog.tick(&registry); // thin tick consumes the stray id
        for seq in 1..=40u64 {
            registry.note_decision(DecisionId::from_parts(5, seq));
        }
        let raised = drive(&mut watchdog, &registry, 20, 80);
        if ENABLED {
            assert_eq!(raised.len(), 1);
            let ids = &raised[0].decision_ids;
            assert_eq!(ids.len(), DecisionWatchdog::MAX_ALERT_IDS);
            // Newest-biased: the tail of the window survives the cap,
            // and the pre-window id does not reappear.
            assert_eq!(ids.last().copied(), Some(DecisionId::from_parts(5, 40)));
            assert!(!ids.contains(&DecisionId::from_parts(5, 999)));
            // The retained log carries the same ids.
            let logged = watchdog.alerts().last().expect("alert retained");
            assert_eq!(&logged.decision_ids, ids);
        } else {
            assert!(raised.is_empty());
        }
    }

    #[test]
    fn warmup_suppresses_early_anomalies() {
        let registry = MetricsRegistry::new();
        let mut watchdog = DecisionWatchdog::default();
        // A wild swing inside the warmup window learns, never alerts.
        assert!(drive(&mut watchdog, &registry, 100, 0).is_empty());
        assert!(drive(&mut watchdog, &registry, 0, 100).is_empty());
        assert!(drive(&mut watchdog, &registry, 100, 0).is_empty());
        assert_eq!(watchdog.alert_count(), 0);
    }

    #[test]
    fn thin_ticks_are_skipped() {
        let registry = MetricsRegistry::new();
        let mut watchdog = DecisionWatchdog::default();
        for _ in 0..10 {
            drive(&mut watchdog, &registry, 90, 10);
        }
        // 5 decisions < min_decisions: even an all-deny tick is ignored.
        assert!(drive(&mut watchdog, &registry, 0, 5).is_empty());
    }

    #[test]
    fn staleness_burn_and_flap_storm_fire_on_poll_signals() {
        let registry = MetricsRegistry::new();
        let mut watchdog = DecisionWatchdog::default();
        for _ in 0..10 {
            registry.env_polls.add(100);
            registry.env_role_activations.add(2);
            watchdog.tick(&registry);
        }
        registry.env_polls.add(100);
        registry.env_role_activations.add(40);
        registry.env_role_deactivations.add(40);
        registry.env_stale_served.add(30);
        registry.env_unavailable.add(10);
        let raised = watchdog.tick(&registry);
        if ENABLED {
            let kinds: Vec<_> = raised.iter().map(|a| a.kind).collect();
            assert!(kinds.contains(&AlertKind::EnvRoleFlapStorm));
            assert!(kinds.contains(&AlertKind::StalenessBurn));
        } else {
            assert!(raised.is_empty());
        }
    }

    #[test]
    fn alert_log_is_bounded() {
        let registry = MetricsRegistry::new();
        let mut watchdog = DecisionWatchdog::new(WatchdogConfig {
            max_alerts: 2,
            ..WatchdogConfig::default()
        });
        for _ in 0..6 {
            drive(&mut watchdog, &registry, 100, 0);
        }
        for _ in 0..5 {
            // Alternating calm/spike keeps the deviation floor busy.
            drive(&mut watchdog, &registry, 0, 100);
            drive(&mut watchdog, &registry, 100, 0);
        }
        assert!(watchdog.alerts().count() <= 2);
        if ENABLED {
            assert!(watchdog.alert_count() >= 1);
        }
    }

    #[test]
    fn kind_slots_round_trip() {
        for kind in AlertKind::ALL {
            assert_eq!(AlertKind::from_slot(kind.slot()), Some(kind));
        }
        assert_eq!(AlertKind::from_slot(99), None);
        assert_eq!(AlertKind::DenyRateSpike.name(), "deny_rate_spike");
    }
}
