//! Per-rule heat counters: which rules actually carry traffic.
//!
//! Static analysis ([`crate::analysis`]) finds rules that *cannot*
//! fire; heat finds rules that *do not* fire. The [`RuleHeat`] table
//! counts, per rule, how often the compiled mediation path matched it
//! and how often it won the decision (split by effect), plus the
//! policy generation it last fired under — enough to join against the
//! static report into a [`PolicyHealthReport`](crate::analysis::PolicyHealthReport)
//! and to spot drift across policy edits.
//!
//! The table is written on every decision, so it is built like the
//! rest of the registry: lock-free on the hot path. Counters live in
//! a small fixed set of shards; each OS thread is pinned to one shard
//! (round-robin at first touch), so parallel `decide_batch` workers
//! never contend on the same cache line. A shard is a `RwLock` around
//! a dense `Vec` of atomic cells indexed by raw [`RuleId`] — the read
//! lock is uncontended in steady state and the write lock is taken
//! only when the table widens (new rules) — mirroring the
//! [`KeyedCounter`](super::KeyedCounter) idiom. Readers sum across
//! shards.
//!
//! Heat can be disabled at runtime ([`RuleHeat::set_enabled`]) so the
//! overhead experiment (E13) can measure the tracking cost against an
//! otherwise identical engine; under the `telemetry-off` feature every
//! update compiles to a no-op like the rest of the registry.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::RwLock;

use serde::{Deserialize, Serialize};

use super::ENABLED;

/// Number of shards; a small power of two keeps the reader merge cheap
/// while spreading batch workers across cache lines.
const SHARDS: usize = 8;

/// One rule's counters inside a shard.
#[derive(Debug, Default)]
struct HeatCell {
    /// Times the rule was applicable (appeared in a decision's matched
    /// set).
    matched: AtomicU64,
    /// Times the rule won the decision with a permit effect.
    won_permit: AtomicU64,
    /// Times the rule won the decision with a deny effect.
    won_deny: AtomicU64,
    /// `generation + 1` of the last decision this rule won or matched
    /// in (0 = never fired). Merged across shards by max, so the
    /// off-by-one encoding keeps "never" distinguishable from
    /// generation 0.
    last_gen: AtomicU64,
}

/// One shard: a dense slot table indexed by raw rule id.
#[derive(Debug, Default)]
struct Shard {
    cells: RwLock<Vec<HeatCell>>,
}

impl Shard {
    /// Runs `update` on the cell for `index`, widening the table first
    /// if the rule id is beyond the current length.
    fn with_cell(&self, index: usize, update: impl Fn(&HeatCell)) {
        {
            let cells = self
                .cells
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(cell) = cells.get(index) {
                update(cell);
                return;
            }
        }
        let mut cells = self
            .cells
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if cells.len() <= index {
            cells.resize_with(index + 1, HeatCell::default);
        }
        update(&cells[index]);
    }

    /// Pre-sizes the slot table to at least `capacity` cells. Called
    /// on every index install — including cheap incremental delta
    /// applications — so the already-sized case takes only a read
    /// lock.
    fn reserve(&self, capacity: usize) {
        let sized = self
            .cells
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
            >= capacity;
        if sized {
            return;
        }
        let mut cells = self
            .cells
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if cells.len() < capacity {
            cells.resize_with(capacity, HeatCell::default);
        }
    }
}

/// The shard this thread publishes into (assigned round-robin on first
/// touch and cached for the thread's lifetime).
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static PINNED: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    PINNED.with(|pinned| {
        let cached = pinned.get();
        if cached != usize::MAX {
            return cached;
        }
        let assigned = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
        pinned.set(assigned);
        assigned
    })
}

/// Sharded per-rule heat counters (see the module docs).
///
/// Lives inside the [`MetricsRegistry`](super::MetricsRegistry), so
/// engine clones and `decide_batch` workers share one table the same
/// way they share every other counter.
#[derive(Debug)]
pub struct RuleHeat {
    shards: [Shard; SHARDS],
    /// Runtime kill switch (heat on by default). Checked with one
    /// relaxed load per decision, so E13 can price the tracking
    /// against an otherwise identical engine.
    enabled: AtomicBool,
    /// Times [`Self::reset`] has run, so report consumers can tell a
    /// genuinely cold rule from one whose heat was wiped.
    resets: AtomicU64,
    /// Total decisions folded into the table (wins across all rules
    /// plus default-effect decisions where no rule won).
    decisions: AtomicU64,
}

impl Default for RuleHeat {
    fn default() -> Self {
        Self::new()
    }
}

impl RuleHeat {
    /// An empty, enabled heat table.
    #[must_use]
    pub fn new() -> Self {
        Self {
            shards: std::array::from_fn(|_| Shard::default()),
            enabled: AtomicBool::new(true),
            resets: AtomicU64::new(0),
            decisions: AtomicU64::new(0),
        }
    }

    /// Whether heat is currently being recorded (always false when the
    /// crate is built with `telemetry-off`).
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        ENABLED && self.enabled.load(Ordering::Relaxed)
    }

    /// Turns heat recording on or off at runtime. Readings accumulated
    /// so far are kept either way.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Times the table has been [`reset`](Self::reset).
    #[must_use]
    pub fn reset_count(&self) -> u64 {
        self.resets.load(Ordering::Relaxed)
    }

    /// Total decisions folded into the table since the last reset.
    #[must_use]
    pub fn decision_count(&self) -> u64 {
        self.decisions.load(Ordering::Relaxed)
    }

    /// Pre-sizes every shard for `rule_count` rules, so steady-state
    /// recording never takes a write lock. The engine calls this when
    /// it rebuilds the compiled index, which is exactly when the rule
    /// id ceiling can have moved.
    pub fn reserve(&self, rule_count: usize) {
        if !ENABLED {
            return;
        }
        for shard in &self.shards {
            shard.reserve(rule_count);
        }
    }

    /// Zeroes every counter (the slot tables keep their size). Bumps
    /// [`Self::reset_count`] so downstream reports can annotate the
    /// wipe.
    pub fn reset(&self) {
        for shard in &self.shards {
            let cells = shard
                .cells
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for cell in cells.iter() {
                cell.matched.store(0, Ordering::Relaxed);
                cell.won_permit.store(0, Ordering::Relaxed);
                cell.won_deny.store(0, Ordering::Relaxed);
                cell.last_gen.store(0, Ordering::Relaxed);
            }
        }
        self.decisions.store(0, Ordering::Relaxed);
        self.resets.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds one decision into the table: every applicable rule gets a
    /// match, the winner (if any) gets a win under its effect, and both
    /// stamp the policy generation they fired under. `winner_permit`
    /// is ignored when `winner` is `None` (default-effect decision).
    pub fn record_decision(
        &self,
        matched: impl IntoIterator<Item = u64>,
        winner: Option<u64>,
        winner_permit: bool,
        generation: u64,
    ) {
        if !self.is_enabled() {
            return;
        }
        let shard = &self.shards[shard_index()];
        let stamp = generation.wrapping_add(1).max(1);
        for raw in matched {
            shard.with_cell(raw as usize, |cell| {
                cell.matched.fetch_add(1, Ordering::Relaxed);
                cell.last_gen.fetch_max(stamp, Ordering::Relaxed);
            });
        }
        if let Some(raw) = winner {
            shard.with_cell(raw as usize, |cell| {
                if winner_permit {
                    cell.won_permit.fetch_add(1, Ordering::Relaxed);
                } else {
                    cell.won_deny.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        self.decisions.fetch_add(1, Ordering::Relaxed);
    }

    /// Heat for one rule (zeros if it never fired), summed across
    /// shards.
    #[must_use]
    pub fn get(&self, raw_rule: u64) -> RuleHeatEntry {
        let mut entry = RuleHeatEntry::default();
        let mut stamp = 0u64;
        for shard in &self.shards {
            let cells = shard
                .cells
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(cell) = cells.get(raw_rule as usize) {
                entry.matched += cell.matched.load(Ordering::Relaxed);
                entry.won_permit += cell.won_permit.load(Ordering::Relaxed);
                entry.won_deny += cell.won_deny.load(Ordering::Relaxed);
                stamp = stamp.max(cell.last_gen.load(Ordering::Relaxed));
            }
        }
        entry.last_fired_generation = stamp.checked_sub(1);
        entry
    }

    /// A point-in-time merge of all shards: every rule with any heat,
    /// keyed by raw rule id, plus the table-level accumulators.
    #[must_use]
    pub fn snapshot(&self) -> RuleHeatSnapshot {
        let mut merged: BTreeMap<u64, (RuleHeatEntry, u64)> = BTreeMap::new();
        for shard in &self.shards {
            let cells = shard
                .cells
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for (raw, cell) in cells.iter().enumerate() {
                let matched = cell.matched.load(Ordering::Relaxed);
                let won_permit = cell.won_permit.load(Ordering::Relaxed);
                let won_deny = cell.won_deny.load(Ordering::Relaxed);
                let stamp = cell.last_gen.load(Ordering::Relaxed);
                if matched == 0 && won_permit == 0 && won_deny == 0 && stamp == 0 {
                    continue;
                }
                let (entry, max_stamp) = merged.entry(raw as u64).or_default();
                entry.matched += matched;
                entry.won_permit += won_permit;
                entry.won_deny += won_deny;
                *max_stamp = (*max_stamp).max(stamp);
            }
        }
        RuleHeatSnapshot {
            rules: merged
                .into_iter()
                .map(|(raw, (mut entry, stamp))| {
                    entry.last_fired_generation = stamp.checked_sub(1);
                    (raw, entry)
                })
                .collect(),
            decisions: self.decision_count(),
            resets: self.reset_count(),
        }
    }
}

/// One rule's accumulated heat.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuleHeatEntry {
    /// Times the rule was applicable.
    pub matched: u64,
    /// Times the rule won with a permit effect.
    pub won_permit: u64,
    /// Times the rule won with a deny effect.
    pub won_deny: u64,
    /// Policy generation of the rule's most recent firing (`None` =
    /// never fired).
    pub last_fired_generation: Option<u64>,
}

impl RuleHeatEntry {
    /// Total wins (either effect).
    #[must_use]
    pub fn won(&self) -> u64 {
        self.won_permit + self.won_deny
    }
}

/// A point-in-time copy of a [`RuleHeat`] table.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuleHeatSnapshot {
    /// Raw rule id → accumulated heat (rules that never fired are
    /// absent).
    pub rules: BTreeMap<u64, RuleHeatEntry>,
    /// Total decisions folded into the table.
    pub decisions: u64,
    /// Times the table has been reset.
    pub resets: u64,
}

impl RuleHeatSnapshot {
    /// Heat for one rule (zeros if absent from the snapshot).
    #[must_use]
    pub fn get(&self, raw_rule: u64) -> RuleHeatEntry {
        self.rules.get(&raw_rule).copied().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_matches_wins_and_generations() {
        let heat = RuleHeat::new();
        heat.record_decision([0, 2], Some(2), true, 7);
        heat.record_decision([2], Some(2), false, 9);
        heat.record_decision([1], None, false, 9);
        let snap = heat.snapshot();
        if ENABLED {
            assert_eq!(snap.decisions, 3);
            assert_eq!(snap.get(0).matched, 1);
            assert_eq!(snap.get(0).won(), 0);
            assert_eq!(snap.get(0).last_fired_generation, Some(7));
            assert_eq!(snap.get(2).matched, 2);
            assert_eq!(snap.get(2).won_permit, 1);
            assert_eq!(snap.get(2).won_deny, 1);
            assert_eq!(snap.get(2).last_fired_generation, Some(9));
            assert_eq!(snap.get(1).matched, 1);
            assert_eq!(snap.get(5).matched, 0);
            assert_eq!(snap.get(5).last_fired_generation, None);
            assert_eq!(heat.get(2), snap.get(2));
        } else {
            assert!(snap.rules.is_empty());
        }
    }

    #[test]
    fn generation_zero_is_distinguishable_from_never() {
        let heat = RuleHeat::new();
        heat.record_decision([3], Some(3), true, 0);
        if ENABLED {
            assert_eq!(heat.get(3).last_fired_generation, Some(0));
        }
        assert_eq!(heat.get(4).last_fired_generation, None);
    }

    #[test]
    fn runtime_disable_stops_recording() {
        let heat = RuleHeat::new();
        heat.set_enabled(false);
        assert!(!heat.is_enabled());
        heat.record_decision([0], Some(0), true, 1);
        assert_eq!(heat.snapshot().decisions, 0);
        heat.set_enabled(true);
        heat.record_decision([0], Some(0), true, 1);
        if ENABLED {
            assert_eq!(heat.snapshot().decisions, 1);
        }
    }

    #[test]
    fn reset_zeroes_but_counts() {
        let heat = RuleHeat::new();
        heat.reserve(4);
        heat.record_decision([1], Some(1), true, 5);
        heat.reset();
        assert_eq!(heat.reset_count(), 1);
        assert_eq!(heat.decision_count(), 0);
        assert_eq!(heat.get(1), RuleHeatEntry::default());
        assert!(heat.snapshot().rules.is_empty());
    }

    #[test]
    fn concurrent_writers_land_in_shards_and_merge() {
        let heat = std::sync::Arc::new(RuleHeat::new());
        heat.reserve(8);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let heat = std::sync::Arc::clone(&heat);
                std::thread::spawn(move || {
                    for _ in 0..250 {
                        heat.record_decision([0, 1], Some(1), true, 3);
                    }
                })
            })
            .collect();
        for thread in threads {
            thread.join().unwrap();
        }
        let snap = heat.snapshot();
        if ENABLED {
            assert_eq!(snap.decisions, 1_000);
            assert_eq!(snap.get(0).matched, 1_000);
            assert_eq!(snap.get(1).matched, 1_000);
            assert_eq!(snap.get(1).won_permit, 1_000);
            assert_eq!(snap.get(1).last_fired_generation, Some(3));
        }
    }
}
