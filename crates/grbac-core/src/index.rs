//! Compiled mediation index: precomputed role closures, a
//! transaction-keyed rule index, and cached entity expansions.
//!
//! [`Grbac::decide`](crate::engine::Grbac::decide) answers each request
//! by (1) hierarchy-expanding the requester's, object's and
//! environment's role sets and (2) scanning the policy for applicable
//! rules. Done naively — breadth-first searches per expansion, a full
//! rule scan per request — mediation cost grows with policy size even
//! when almost no rule can apply (the Aware Home's policy mentions
//! `use` rules when the request is `unlock`). This module compiles the
//! engine's slow-moving state into flat lookup structures so the
//! per-request path touches only candidate rules and never re-walks
//! the hierarchy:
//!
//! * [`RoleClosures`] — per-role upward-closure **bitsets** over the
//!   dense role-id space, plus sorted `(ancestor, distance)` rows that
//!   answer [`distance_up`](crate::hierarchy::RoleHierarchy::distance_up)
//!   queries by binary search instead of BFS;
//! * [`RuleIndex`] — rule positions bucketed by their
//!   [`TransactionSpec`](crate::rule::TransactionSpec): an exact bucket
//!   per transaction plus one `Any` bucket, merged in policy order so
//!   conflict resolution sees the same sequence the naive scan
//!   produces;
//! * [`CachedExpansion`] — hierarchy-expanded role sets (as both
//!   `BTreeSet` and bitset) for every assigned subject and object.
//!
//! The index is **derived state**: it is rebuilt lazily (behind
//! [`IndexCell`]) whenever the engine's generation counter says roles,
//! assignments or rules changed, is skipped by serialization, and must
//! never influence a decision — `tests/prop_index.rs` holds the engine
//! to that by comparing every compiled decision against the retained
//! naive scan.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::{Arc, RwLock};

use crate::assignment::Assignments;
use crate::id::{ObjectId, RoleId, SubjectId, TransactionId};
use crate::role::RoleCatalog;
use crate::rule::{Rule, TransactionSpec};
use crate::telemetry::MetricsRegistry;

/// Precomputed upward closures and pairwise upward distances for every
/// declared role, laid out over the dense role-id space (role ids are
/// allocated sequentially and never retired, so `id.as_raw()` doubles
/// as a dense index).
#[derive(Debug)]
pub(crate) struct RoleClosures {
    role_count: usize,
    /// Words per bitset row.
    words: usize,
    /// `role_count` rows of `words` words; row `r` holds closure(r).
    closure_bits: Vec<u64>,
    /// Row `r`: `(ancestor_raw, distance)` sorted by ancestor id.
    /// Always contains `(r, 0)` — a role is in its own closure.
    ancestors: Vec<Vec<(u32, u32)>>,
}

impl RoleClosures {
    fn build(catalog: &RoleCatalog) -> Self {
        let role_count = catalog
            .iter()
            .map(|role| role.id().as_raw() as usize + 1)
            .max()
            .unwrap_or(0);
        let words = role_count.div_ceil(64);
        let mut closure_bits = vec![0u64; role_count * words];
        let mut ancestors = vec![Vec::new(); role_count];

        for role in catalog.iter() {
            let raw = role.id().as_raw() as usize;
            let hierarchy = catalog.hierarchy(role.kind());
            // BFS upward, recording the shortest distance to each
            // ancestor — the same walk RoleHierarchy::distance_up does
            // per query, performed once here.
            let mut dist: HashMap<RoleId, u32> = HashMap::new();
            dist.insert(role.id(), 0);
            let mut frontier = VecDeque::from([role.id()]);
            while let Some(current) = frontier.pop_front() {
                let next = dist[&current] + 1;
                for general in hierarchy.direct_generalizations(current) {
                    dist.entry(general).or_insert_with(|| {
                        frontier.push_back(general);
                        next
                    });
                }
            }
            let mut row: Vec<(u32, u32)> = dist
                .into_iter()
                .map(|(ancestor, d)| (ancestor.as_raw() as u32, d))
                .collect();
            row.sort_unstable();
            for &(ancestor, _) in &row {
                closure_bits[raw * words + ancestor as usize / 64] |= 1 << (ancestor % 64);
            }
            ancestors[raw] = row;
        }

        Self {
            role_count,
            words,
            closure_bits,
            ancestors,
        }
    }

    /// Number of dense role slots (max raw id + 1 at build time).
    pub(crate) fn role_count(&self) -> usize {
        self.role_count
    }

    /// Words per bitset row.
    pub(crate) fn words(&self) -> usize {
        self.words
    }

    /// True if `role` was declared at build time. Role ids are
    /// allocated densely with no retirement, so this is a bound check.
    pub(crate) fn is_declared(&self, role: RoleId) -> bool {
        (role.as_raw() as usize) < self.role_count
    }

    /// Members of `role`'s upward closure (the role itself included),
    /// in ascending id order; empty for undeclared roles.
    pub(crate) fn closure_members(&self, role: RoleId) -> impl Iterator<Item = RoleId> + '_ {
        let row: &[(u32, u32)] = if self.is_declared(role) {
            &self.ancestors[role.as_raw() as usize]
        } else {
            &[]
        };
        row.iter().map(|&(raw, _)| RoleId::from_raw(u64::from(raw)))
    }

    /// Shortest upward distance from `specific` to `general`;
    /// `Some(0)` when equal, `None` when unrelated or undeclared.
    pub(crate) fn distance_up(&self, specific: RoleId, general: RoleId) -> Option<usize> {
        if !self.is_declared(specific) {
            return None;
        }
        let row = &self.ancestors[specific.as_raw() as usize];
        let target = general.as_raw() as u32;
        row.binary_search_by_key(&target, |&(ancestor, _)| ancestor)
            .ok()
            .map(|i| row[i].1 as usize)
    }

    /// Shortest upward distance from any role in `direct` to `target`
    /// (`usize::MAX` when unrelated), mirroring the naive
    /// `min_distance` helper.
    pub(crate) fn min_distance(&self, direct: &BTreeSet<RoleId>, target: RoleId) -> usize {
        direct
            .iter()
            .filter_map(|&held| self.distance_up(held, target))
            .min()
            .unwrap_or(usize::MAX)
    }

    /// Hierarchy-expands `roles` into a sorted set and a bitset,
    /// skipping undeclared ids exactly like
    /// [`RoleCatalog::expand`](crate::role::RoleCatalog::expand).
    pub(crate) fn expand(&self, roles: impl IntoIterator<Item = RoleId>) -> CachedExpansion {
        let mut direct = BTreeSet::new();
        let mut bits = vec![0u64; self.words];
        for role in roles {
            if !self.is_declared(role) {
                continue;
            }
            direct.insert(role);
            let raw = role.as_raw() as usize;
            for (word, row_word) in bits
                .iter_mut()
                .zip(&self.closure_bits[raw * self.words..(raw + 1) * self.words])
            {
                *word |= row_word;
            }
        }
        let mut expanded = BTreeSet::new();
        for (index, &word) in bits.iter().enumerate() {
            let mut remaining = word;
            while remaining != 0 {
                let bit = remaining.trailing_zeros() as u64;
                expanded.insert(RoleId::from_raw(index as u64 * 64 + bit));
                remaining &= remaining - 1;
            }
        }
        CachedExpansion {
            direct,
            expanded,
            bits,
        }
    }
}

/// A role set with its hierarchy expansion, in both ordered-set form
/// (for explanations and confidence lookups) and bitset form (for
/// subset tests against rule masks).
#[derive(Debug, Clone)]
pub(crate) struct CachedExpansion {
    /// The direct (unexpanded) roles.
    pub(crate) direct: BTreeSet<RoleId>,
    /// The upward closure of `direct`.
    pub(crate) expanded: BTreeSet<RoleId>,
    /// `expanded` as a bitset over the dense role space.
    pub(crate) bits: Vec<u64>,
}

impl CachedExpansion {
    /// True if the expansion contains `role`.
    pub(crate) fn contains(&self, role: RoleId) -> bool {
        let raw = role.as_raw() as usize;
        let word = raw / 64;
        word < self.bits.len() && self.bits[word] & (1 << (raw % 64)) != 0
    }

    /// True if every bit of `mask` is set in this expansion.
    pub(crate) fn covers(&self, mask: &[u64]) -> bool {
        debug_assert_eq!(mask.len(), self.bits.len());
        mask.iter()
            .zip(&self.bits)
            .all(|(required, held)| required & !held == 0)
    }
}

/// Rule positions bucketed by transaction, plus per-rule environment
/// masks, so `decide` visits only rules that could match the request's
/// transaction and tests their environment guard in `O(words)`.
#[derive(Debug)]
pub(crate) struct RuleIndex {
    /// Positions of rules with `TransactionSpec::Is(t)`, keyed by raw
    /// transaction id, each ascending.
    exact: HashMap<u64, Vec<u32>>,
    /// Positions of rules with `TransactionSpec::Any`, ascending.
    any_bucket: Vec<u32>,
    /// `rules.len()` rows of `words` words: row `p` is the bitset of
    /// rule `p`'s (expanded-by-nothing, direct) environment roles.
    env_masks: Vec<u64>,
    words: usize,
}

impl RuleIndex {
    fn build(rules: &[Rule], words: usize) -> Self {
        let mut exact: HashMap<u64, Vec<u32>> = HashMap::new();
        let mut any_bucket = Vec::new();
        let mut env_masks = vec![0u64; rules.len() * words];
        for (position, rule) in rules.iter().enumerate() {
            match rule.transaction() {
                TransactionSpec::Is(t) => {
                    exact.entry(t.as_raw()).or_default().push(position as u32);
                }
                TransactionSpec::Any => any_bucket.push(position as u32),
            }
            for &env in rule.environment_roles() {
                let raw = env.as_raw() as usize;
                env_masks[position * words + raw / 64] |= 1 << (raw % 64);
            }
        }
        Self {
            exact,
            any_bucket,
            env_masks,
            words,
        }
    }

    /// Rule positions that could match `transaction`, in policy order —
    /// the exact bucket merged with the `Any` bucket.
    pub(crate) fn candidates(&self, transaction: TransactionId) -> Candidates<'_> {
        Candidates {
            exact: self
                .exact
                .get(&transaction.as_raw())
                .map_or(&[][..], Vec::as_slice),
            any: &self.any_bucket,
        }
    }

    /// The environment-role bitset of the rule at `position`.
    pub(crate) fn env_mask(&self, position: usize) -> &[u64] {
        &self.env_masks[position * self.words..(position + 1) * self.words]
    }

    /// Number of non-empty buckets (exact transactions plus the `Any`
    /// bucket when populated).
    fn bucket_count(&self) -> usize {
        self.exact.len() + usize::from(!self.any_bucket.is_empty())
    }

    /// Size of the largest bucket.
    fn max_bucket(&self) -> usize {
        self.exact
            .values()
            .map(Vec::len)
            .chain([self.any_bucket.len()])
            .max()
            .unwrap_or(0)
    }
}

/// Position-ordered merge of a transaction's exact bucket with the
/// `Any` bucket.
pub(crate) struct Candidates<'a> {
    exact: &'a [u32],
    any: &'a [u32],
}

impl Candidates<'_> {
    /// Upper bound on matches — used to size the `matched` vector.
    pub(crate) fn len(&self) -> usize {
        self.exact.len() + self.any.len()
    }
}

impl Iterator for Candidates<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        let next = match (self.exact.first(), self.any.first()) {
            (Some(&e), Some(&a)) => {
                if e < a {
                    self.exact = &self.exact[1..];
                    e
                } else {
                    self.any = &self.any[1..];
                    a
                }
            }
            (Some(&e), None) => {
                self.exact = &self.exact[1..];
                e
            }
            (None, Some(&a)) => {
                self.any = &self.any[1..];
                a
            }
            (None, None) => return None,
        };
        Some(next as usize)
    }
}

/// Everything `decide` needs that depends only on roles, assignments
/// and rules — rebuilt as a unit when any of those change.
#[derive(Debug)]
pub(crate) struct CompiledIndex {
    pub(crate) closures: RoleClosures,
    pub(crate) rules: RuleIndex,
    subjects: HashMap<u64, CachedExpansion>,
    objects: HashMap<u64, CachedExpansion>,
    /// Returned for entities with no assignments, so lookups are
    /// infallible and bitset-sized correctly.
    empty: CachedExpansion,
}

impl CompiledIndex {
    pub(crate) fn build(catalog: &RoleCatalog, assignments: &Assignments, rules: &[Rule]) -> Self {
        let closures = RoleClosures::build(catalog);
        let rule_index = RuleIndex::build(rules, closures.words());
        let subjects = assignments
            .subjects_with_roles()
            .map(|(id, roles)| (id.as_raw(), closures.expand(roles.iter().copied())))
            .collect();
        let objects = assignments
            .objects_with_roles()
            .map(|(id, roles)| (id.as_raw(), closures.expand(roles.iter().copied())))
            .collect();
        let empty = CachedExpansion {
            direct: BTreeSet::new(),
            expanded: BTreeSet::new(),
            bits: vec![0u64; closures.words()],
        };
        Self {
            closures,
            rules: rule_index,
            subjects,
            objects,
            empty,
        }
    }

    /// The cached expansion of a subject's authorized role set.
    pub(crate) fn subject(&self, id: SubjectId) -> &CachedExpansion {
        self.subjects.get(&id.as_raw()).unwrap_or(&self.empty)
    }

    /// The cached expansion of an object's role set.
    pub(crate) fn object(&self, id: ObjectId) -> &CachedExpansion {
        self.objects.get(&id.as_raw()).unwrap_or(&self.empty)
    }

    /// Publishes the index's shape into the registry's gauges.
    fn publish_shape(&self, metrics: &MetricsRegistry) {
        metrics.index_roles.set(self.closures.role_count() as u64);
        metrics
            .index_rule_buckets
            .set(self.rules.bucket_count() as u64);
        metrics.index_max_bucket.set(self.rules.max_bucket() as u64);
    }
}

/// Lazily-built, generation-checked holder of the [`CompiledIndex`].
///
/// The engine bumps its generation counter in every `&mut self` method
/// that touches roles, assignments or rules; `decide` (`&self`) asks
/// the cell for an index matching the current generation and rebuilds
/// on mismatch. Interior mutability keeps mediation `&self`-pure, and
/// the `Arc` lets `decide_batch` workers share one build.
pub(crate) struct IndexCell {
    slot: RwLock<Option<(u64, Arc<CompiledIndex>)>>,
}

impl IndexCell {
    /// Returns the index for `generation`, building it at most once
    /// per generation under contention. Generation hits count into
    /// `index_cache_hits`; rebuilds count into `index_rebuilds` and
    /// `index_rebuild_ns`.
    pub(crate) fn get_or_build(
        &self,
        generation: u64,
        metrics: &MetricsRegistry,
        build: impl FnOnce() -> CompiledIndex,
    ) -> Arc<CompiledIndex> {
        if let Some((built_for, index)) = self
            .slot
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .as_ref()
        {
            if *built_for == generation {
                metrics.index_cache_hits.inc();
                return Arc::clone(index);
            }
        }
        let mut slot = self
            .slot
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Double-check: another thread may have rebuilt while we
        // waited for the write lock.
        if let Some((built_for, index)) = slot.as_ref() {
            if *built_for == generation {
                metrics.index_cache_hits.inc();
                return Arc::clone(index);
            }
        }
        let rebuild_started = std::time::Instant::now();
        let index = Arc::new(build());
        metrics.index_rebuilds.inc();
        metrics
            .index_rebuild_ns
            .add(u64::try_from(rebuild_started.elapsed().as_nanos()).unwrap_or(u64::MAX));
        index.publish_shape(metrics);
        *slot = Some((generation, Arc::clone(&index)));
        index
    }
}

impl Default for IndexCell {
    fn default() -> Self {
        Self {
            slot: RwLock::new(None),
        }
    }
}

impl Clone for IndexCell {
    fn clone(&self) -> Self {
        // The index is pure derived state keyed by generation, so
        // sharing the Arc with the clone is safe and skips a rebuild.
        Self {
            slot: RwLock::new(
                self.slot
                    .read()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .clone(),
            ),
        }
    }
}

impl std::fmt::Debug for IndexCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = match self
            .slot
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .as_ref()
        {
            Some((generation, _)) => format!("built@{generation}"),
            None => "empty".to_owned(),
        };
        f.debug_struct("IndexCell").field("state", &state).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::role::RoleKind;

    fn catalog_with_chain() -> (RoleCatalog, [RoleId; 4]) {
        let mut catalog = RoleCatalog::new();
        let home_user = catalog.declare("home_user", RoleKind::Subject).unwrap();
        let family = catalog.declare("family", RoleKind::Subject).unwrap();
        let parent = catalog.declare("parent", RoleKind::Subject).unwrap();
        let device = catalog.declare("device", RoleKind::Object).unwrap();
        catalog.specialize(family, home_user).unwrap();
        catalog.specialize(parent, family).unwrap();
        (catalog, [home_user, family, parent, device])
    }

    #[test]
    fn closures_match_catalog_expansion() {
        let (catalog, [home_user, family, parent, device]) = catalog_with_chain();
        let closures = RoleClosures::build(&catalog);
        assert_eq!(closures.role_count(), 4);
        for role in [home_user, family, parent, device] {
            let expansion = closures.expand([role]);
            assert_eq!(
                expansion.expanded,
                catalog.expand(&BTreeSet::from([role])),
                "closure mismatch for {role}"
            );
            for member in &expansion.expanded {
                assert!(expansion.contains(*member));
            }
        }
    }

    #[test]
    fn distances_match_hierarchy_bfs() {
        let (catalog, [home_user, family, parent, device]) = catalog_with_chain();
        let closures = RoleClosures::build(&catalog);
        let hierarchy = catalog.hierarchy(RoleKind::Subject);
        for &a in &[home_user, family, parent] {
            for &b in &[home_user, family, parent] {
                assert_eq!(
                    closures.distance_up(a, b),
                    hierarchy.distance_up(a, b),
                    "distance mismatch {a} -> {b}"
                );
            }
        }
        assert_eq!(closures.distance_up(parent, parent), Some(0));
        assert_eq!(closures.distance_up(parent, home_user), Some(2));
        assert_eq!(closures.distance_up(home_user, parent), None);
        assert_eq!(closures.distance_up(device, home_user), None);
        assert_eq!(closures.distance_up(RoleId::from_raw(99), parent), None);
    }

    #[test]
    fn expansion_skips_undeclared_roles() {
        let (catalog, [_, family, ..]) = catalog_with_chain();
        let closures = RoleClosures::build(&catalog);
        let expansion = closures.expand([family, RoleId::from_raw(77)]);
        assert!(!expansion.direct.contains(&RoleId::from_raw(77)));
        assert!(!expansion.contains(RoleId::from_raw(77)));
        assert_eq!(
            expansion.expanded,
            catalog.expand(&BTreeSet::from([family, RoleId::from_raw(77)]))
        );
    }

    #[test]
    fn candidates_merge_preserves_policy_order() {
        let candidates = Candidates {
            exact: &[1, 4, 6],
            any: &[0, 5],
        };
        assert_eq!(candidates.len(), 5);
        let order: Vec<usize> = candidates.collect();
        assert_eq!(order, vec![0, 1, 4, 5, 6]);
    }

    #[test]
    fn index_cell_rebuilds_only_on_generation_change() {
        let (catalog, _) = catalog_with_chain();
        let assignments = Assignments::new();
        let cell = IndexCell::default();
        let metrics = MetricsRegistry::new();
        let first = cell.get_or_build(3, &metrics, || {
            CompiledIndex::build(&catalog, &assignments, &[])
        });
        let second = cell.get_or_build(3, &metrics, || {
            panic!("same generation must reuse the index")
        });
        assert!(Arc::ptr_eq(&first, &second));
        let third = cell.get_or_build(4, &metrics, || {
            CompiledIndex::build(&catalog, &assignments, &[])
        });
        assert!(!Arc::ptr_eq(&first, &third));
        if crate::telemetry::ENABLED {
            assert_eq!(metrics.index_rebuilds.get(), 2);
            assert_eq!(metrics.index_cache_hits.get(), 1);
            assert_eq!(metrics.index_roles.get(), 4);
        }
    }
}
