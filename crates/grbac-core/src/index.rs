//! Compiled mediation index: precomputed role closures, a
//! transaction-keyed rule index, and cached entity expansions.
//!
//! [`Grbac::decide`](crate::engine::Grbac::decide) answers each request
//! by (1) hierarchy-expanding the requester's, object's and
//! environment's role sets and (2) scanning the policy for applicable
//! rules. Done naively — breadth-first searches per expansion, a full
//! rule scan per request — mediation cost grows with policy size even
//! when almost no rule can apply (the Aware Home's policy mentions
//! `use` rules when the request is `unlock`). This module compiles the
//! engine's slow-moving state into flat lookup structures so the
//! per-request path touches only candidate rules and never re-walks
//! the hierarchy:
//!
//! * [`RoleClosures`] — per-role upward-closure **bitsets** over the
//!   dense role-id space, plus sorted `(ancestor, distance)` rows that
//!   answer [`distance_up`](crate::hierarchy::RoleHierarchy::distance_up)
//!   queries by binary search instead of BFS;
//! * [`RuleIndex`] — rule positions bucketed by their
//!   [`TransactionSpec`](crate::rule::TransactionSpec): an exact bucket
//!   per transaction plus one `Any` bucket, merged in policy order so
//!   conflict resolution sees the same sequence the naive scan
//!   produces;
//! * [`CachedExpansion`] — hierarchy-expanded role sets (as both
//!   `BTreeSet` and bitset) for every assigned subject and object.
//!
//! The index is **derived state**: it is maintained lazily (behind
//! [`IndexCell`]) whenever the engine's generation counter says roles,
//! assignments or rules changed, is skipped by serialization, and must
//! never influence a decision — `tests/prop_index.rs` holds the engine
//! to that by comparing every compiled decision against the retained
//! naive scan.
//!
//! # Incremental maintenance
//!
//! The index is split into four independently `Arc`'d shards —
//! closures, rule buckets, subject expansions, object expansions.
//! When the engine's [`DeltaLog`](crate::delta::DeltaLog) still covers
//! the gap between the cached generation and the current one,
//! [`CompiledIndex::apply_deltas`] builds the next index by cloning
//! and patching only the shards a delta touches and `Arc`-sharing the
//! rest; publication is an RCU-style swap of the whole
//! `Arc<CompiledIndex>` inside the cell, so in-flight decides keep
//! their old snapshot and never observe a torn shard. Edge inserts
//! frontier-propagate (the edge's lower endpoint plus all its
//! specializations recompute their closure rows); past a damage
//! threshold — or when the dense role space outgrows its bitset word
//! budget — the planner falls back to a full rebuild.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::{Arc, RwLock};

use crate::assignment::Assignments;
use crate::delta::PolicyDelta;
use crate::hierarchy::RoleHierarchy;
use crate::id::{ObjectId, RoleId, SubjectId, TransactionId};
use crate::role::RoleCatalog;
use crate::rule::{Rule, TransactionSpec};
use crate::telemetry::MetricsRegistry;

/// Precomputed upward closures and pairwise upward distances for every
/// declared role, laid out over the dense role-id space (role ids are
/// allocated sequentially and never retired, so `id.as_raw()` doubles
/// as a dense index).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct RoleClosures {
    role_count: usize,
    /// Words per bitset row.
    words: usize,
    /// `role_count` rows of `words` words; row `r` holds closure(r).
    closure_bits: Vec<u64>,
    /// Row `r`: `(ancestor_raw, distance)` sorted by ancestor id.
    /// Always contains `(r, 0)` — a role is in its own closure.
    ancestors: Vec<Vec<(u32, u32)>>,
}

/// BFS upward from `role`, recording the shortest distance to each
/// ancestor — the same walk [`RoleHierarchy::distance_up`] does per
/// query, performed once per (re)compiled closure row. Returns the
/// `(ancestor_raw, distance)` row sorted by ancestor id.
fn upward_row(hierarchy: &RoleHierarchy, role: RoleId) -> Vec<(u32, u32)> {
    let mut dist: HashMap<RoleId, u32> = HashMap::new();
    dist.insert(role, 0);
    let mut frontier = VecDeque::from([role]);
    while let Some(current) = frontier.pop_front() {
        let next = dist[&current] + 1;
        for general in hierarchy.direct_generalizations(current) {
            dist.entry(general).or_insert_with(|| {
                frontier.push_back(general);
                next
            });
        }
    }
    let mut row: Vec<(u32, u32)> = dist
        .into_iter()
        .map(|(ancestor, d)| (ancestor.as_raw() as u32, d))
        .collect();
    row.sort_unstable();
    row
}

impl RoleClosures {
    fn build(catalog: &RoleCatalog) -> Self {
        let role_count = catalog
            .iter()
            .map(|role| role.id().as_raw() as usize + 1)
            .max()
            .unwrap_or(0);
        let words = role_count.div_ceil(64);
        let mut closures = Self {
            role_count,
            words,
            closure_bits: vec![0u64; role_count * words],
            ancestors: vec![Vec::new(); role_count],
        };
        for role in catalog.iter() {
            closures.set_row(
                role.id().as_raw() as usize,
                upward_row(catalog.hierarchy(role.kind()), role.id()),
            );
        }
        closures
    }

    /// Installs a freshly-derived ancestor row, rewriting the role's
    /// closure bitset to match.
    fn set_row(&mut self, raw: usize, row: Vec<(u32, u32)>) {
        let bits = &mut self.closure_bits[raw * self.words..(raw + 1) * self.words];
        bits.fill(0);
        for &(ancestor, _) in &row {
            bits[ancestor as usize / 64] |= 1 << (ancestor % 64);
        }
        self.ancestors[raw] = row;
    }

    /// Grows the dense role space to `role_count` slots, each new slot
    /// seeded with its reflexive closure (a fresh role has no edges).
    /// Returns `false` when growth would widen the bitset rows — every
    /// row and mask in the index would need re-laying, which is a full
    /// rebuild's job.
    fn try_extend(&mut self, role_count: usize) -> bool {
        if role_count <= self.role_count {
            return true;
        }
        if role_count.div_ceil(64) != self.words {
            return false;
        }
        self.closure_bits.resize(role_count * self.words, 0);
        self.ancestors.resize(role_count, Vec::new());
        for raw in self.role_count..role_count {
            self.set_row(raw, vec![(raw as u32, 0)]);
        }
        self.role_count = role_count;
        true
    }

    /// Recomputes the closure rows of `dirty` from the current catalog
    /// — the frontier-propagation step of an edge-insert delta, run on
    /// the edge's lower endpoint and all its specializations.
    fn recompute_rows(&mut self, catalog: &RoleCatalog, dirty: &BTreeSet<RoleId>) {
        for &role in dirty {
            let Ok(entry) = catalog.role(role) else {
                continue;
            };
            if !self.is_declared(role) {
                continue;
            }
            self.set_row(
                role.as_raw() as usize,
                upward_row(catalog.hierarchy(entry.kind()), role),
            );
        }
    }

    /// Number of dense role slots (max raw id + 1 at build time).
    pub(crate) fn role_count(&self) -> usize {
        self.role_count
    }

    /// Words per bitset row.
    pub(crate) fn words(&self) -> usize {
        self.words
    }

    /// True if `role` was declared at build time. Role ids are
    /// allocated densely with no retirement, so this is a bound check.
    pub(crate) fn is_declared(&self, role: RoleId) -> bool {
        (role.as_raw() as usize) < self.role_count
    }

    /// Members of `role`'s upward closure (the role itself included),
    /// in ascending id order; empty for undeclared roles.
    pub(crate) fn closure_members(&self, role: RoleId) -> impl Iterator<Item = RoleId> + '_ {
        let row: &[(u32, u32)] = if self.is_declared(role) {
            &self.ancestors[role.as_raw() as usize]
        } else {
            &[]
        };
        row.iter().map(|&(raw, _)| RoleId::from_raw(u64::from(raw)))
    }

    /// Shortest upward distance from `specific` to `general`;
    /// `Some(0)` when equal, `None` when unrelated or undeclared.
    pub(crate) fn distance_up(&self, specific: RoleId, general: RoleId) -> Option<usize> {
        if !self.is_declared(specific) {
            return None;
        }
        let row = &self.ancestors[specific.as_raw() as usize];
        let target = general.as_raw() as u32;
        row.binary_search_by_key(&target, |&(ancestor, _)| ancestor)
            .ok()
            .map(|i| row[i].1 as usize)
    }

    /// Shortest upward distance from any role in `direct` to `target`
    /// (`usize::MAX` when unrelated), mirroring the naive
    /// `min_distance` helper.
    pub(crate) fn min_distance(&self, direct: &BTreeSet<RoleId>, target: RoleId) -> usize {
        direct
            .iter()
            .filter_map(|&held| self.distance_up(held, target))
            .min()
            .unwrap_or(usize::MAX)
    }

    /// Hierarchy-expands `roles` into a sorted set and a bitset,
    /// skipping undeclared ids exactly like
    /// [`RoleCatalog::expand`](crate::role::RoleCatalog::expand).
    pub(crate) fn expand(&self, roles: impl IntoIterator<Item = RoleId>) -> CachedExpansion {
        let mut direct = BTreeSet::new();
        let mut bits = vec![0u64; self.words];
        for role in roles {
            if !self.is_declared(role) {
                continue;
            }
            direct.insert(role);
            let raw = role.as_raw() as usize;
            for (word, row_word) in bits
                .iter_mut()
                .zip(&self.closure_bits[raw * self.words..(raw + 1) * self.words])
            {
                *word |= row_word;
            }
        }
        let mut expanded = BTreeSet::new();
        for (index, &word) in bits.iter().enumerate() {
            let mut remaining = word;
            while remaining != 0 {
                let bit = remaining.trailing_zeros() as u64;
                expanded.insert(RoleId::from_raw(index as u64 * 64 + bit));
                remaining &= remaining - 1;
            }
        }
        CachedExpansion {
            direct,
            expanded,
            bits,
        }
    }
}

/// A role set with its hierarchy expansion, in both ordered-set form
/// (for explanations and confidence lookups) and bitset form (for
/// subset tests against rule masks).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CachedExpansion {
    /// The direct (unexpanded) roles.
    pub(crate) direct: BTreeSet<RoleId>,
    /// The upward closure of `direct`.
    pub(crate) expanded: BTreeSet<RoleId>,
    /// `expanded` as a bitset over the dense role space.
    pub(crate) bits: Vec<u64>,
}

impl CachedExpansion {
    /// True if the expansion contains `role`.
    pub(crate) fn contains(&self, role: RoleId) -> bool {
        let raw = role.as_raw() as usize;
        let word = raw / 64;
        word < self.bits.len() && self.bits[word] & (1 << (raw % 64)) != 0
    }

    /// True if every bit of `mask` is set in this expansion.
    pub(crate) fn covers(&self, mask: &[u64]) -> bool {
        debug_assert_eq!(mask.len(), self.bits.len());
        mask.iter()
            .zip(&self.bits)
            .all(|(required, held)| required & !held == 0)
    }
}

/// Rule positions bucketed by transaction, plus per-rule environment
/// masks, so `decide` visits only rules that could match the request's
/// transaction and tests their environment guard in `O(words)`.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct RuleIndex {
    /// Positions of rules with `TransactionSpec::Is(t)`, keyed by raw
    /// transaction id, each ascending.
    exact: HashMap<u64, Vec<u32>>,
    /// Positions of rules with `TransactionSpec::Any`, ascending.
    any_bucket: Vec<u32>,
    /// `rules.len()` rows of `words` words: row `p` is the bitset of
    /// rule `p`'s (expanded-by-nothing, direct) environment roles.
    env_masks: Vec<u64>,
    words: usize,
}

impl RuleIndex {
    fn build(rules: &[Rule], words: usize) -> Self {
        let mut exact: HashMap<u64, Vec<u32>> = HashMap::new();
        let mut any_bucket = Vec::new();
        let mut env_masks = vec![0u64; rules.len() * words];
        for (position, rule) in rules.iter().enumerate() {
            match rule.transaction() {
                TransactionSpec::Is(t) => {
                    exact.entry(t.as_raw()).or_default().push(position as u32);
                }
                TransactionSpec::Any => any_bucket.push(position as u32),
            }
            for &env in rule.environment_roles() {
                let raw = env.as_raw() as usize;
                env_masks[position * words + raw / 64] |= 1 << (raw % 64);
            }
        }
        Self {
            exact,
            any_bucket,
            env_masks,
            words,
        }
    }

    /// Patches in a rule appended at `position` (which must equal the
    /// pre-push policy length): one push into its transaction bucket
    /// plus one fresh environment-mask row. Returns `false` when the
    /// delta does not line up with this index's shape or an
    /// environment role falls outside the current word budget.
    fn apply_add(
        &mut self,
        position: u32,
        transaction: TransactionSpec,
        environment: &[RoleId],
    ) -> bool {
        if position as usize * self.words != self.env_masks.len() {
            return false;
        }
        match transaction {
            TransactionSpec::Is(t) => self.exact.entry(t.as_raw()).or_default().push(position),
            TransactionSpec::Any => self.any_bucket.push(position),
        }
        let offset = self.env_masks.len();
        self.env_masks.resize(offset + self.words, 0);
        for &env in environment {
            let raw = env.as_raw() as usize;
            if raw / 64 >= self.words {
                return false;
            }
            self.env_masks[offset + raw / 64] |= 1 << (raw % 64);
        }
        true
    }

    /// Patches out the rule at `position`: drop it from its
    /// transaction bucket, renumber every later position down by one
    /// (the bounded cost of positional bucket encoding), and splice
    /// its environment-mask row out. Returns `false` when the delta
    /// does not line up with this index's shape.
    fn apply_remove(&mut self, position: u32, transaction: TransactionSpec) -> bool {
        let bucket = match transaction {
            TransactionSpec::Is(t) => match self.exact.get_mut(&t.as_raw()) {
                Some(bucket) => bucket,
                None => return false,
            },
            TransactionSpec::Any => &mut self.any_bucket,
        };
        let Ok(slot) = bucket.binary_search(&position) else {
            return false;
        };
        bucket.remove(slot);
        if let TransactionSpec::Is(t) = transaction {
            // Drained exact buckets vanish, matching a fresh build.
            if self.exact.get(&t.as_raw()).is_some_and(Vec::is_empty) {
                self.exact.remove(&t.as_raw());
            }
        }
        for bucket in self.exact.values_mut().chain([&mut self.any_bucket]) {
            for p in bucket.iter_mut() {
                if *p > position {
                    *p -= 1;
                }
            }
        }
        let start = position as usize * self.words;
        if start + self.words > self.env_masks.len() {
            return false;
        }
        self.env_masks.drain(start..start + self.words);
        true
    }

    /// Rule positions that could match `transaction`, in policy order —
    /// the exact bucket merged with the `Any` bucket.
    pub(crate) fn candidates(&self, transaction: TransactionId) -> Candidates<'_> {
        Candidates {
            exact: self
                .exact
                .get(&transaction.as_raw())
                .map_or(&[][..], Vec::as_slice),
            any: &self.any_bucket,
        }
    }

    /// The environment-role bitset of the rule at `position`.
    pub(crate) fn env_mask(&self, position: usize) -> &[u64] {
        &self.env_masks[position * self.words..(position + 1) * self.words]
    }

    /// Number of non-empty buckets (exact transactions plus the `Any`
    /// bucket when populated).
    fn bucket_count(&self) -> usize {
        self.exact.len() + usize::from(!self.any_bucket.is_empty())
    }

    /// Size of the largest bucket.
    fn max_bucket(&self) -> usize {
        self.exact
            .values()
            .map(Vec::len)
            .chain([self.any_bucket.len()])
            .max()
            .unwrap_or(0)
    }
}

/// Position-ordered merge of a transaction's exact bucket with the
/// `Any` bucket.
pub(crate) struct Candidates<'a> {
    exact: &'a [u32],
    any: &'a [u32],
}

impl Candidates<'_> {
    /// Upper bound on matches — used to size the `matched` vector.
    pub(crate) fn len(&self) -> usize {
        self.exact.len() + self.any.len()
    }
}

impl Iterator for Candidates<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        let next = match (self.exact.first(), self.any.first()) {
            (Some(&e), Some(&a)) => {
                if e < a {
                    self.exact = &self.exact[1..];
                    e
                } else {
                    self.any = &self.any[1..];
                    a
                }
            }
            (Some(&e), None) => {
                self.exact = &self.exact[1..];
                e
            }
            (None, Some(&a)) => {
                self.any = &self.any[1..];
                a
            }
            (None, None) => return None,
        };
        Some(next as usize)
    }
}

/// Everything `decide` needs that depends only on roles, assignments
/// and rules. The four shards are individually `Arc`'d so an
/// incremental advance clones and patches only the shards a delta
/// touches and shares the rest with the previous generation.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CompiledIndex {
    pub(crate) closures: Arc<RoleClosures>,
    pub(crate) rules: Arc<RuleIndex>,
    pub(crate) subjects: Arc<HashMap<u64, CachedExpansion>>,
    pub(crate) objects: Arc<HashMap<u64, CachedExpansion>>,
    /// Returned for entities with no assignments, so lookups are
    /// infallible and bitset-sized correctly.
    empty: CachedExpansion,
}

/// Past this many dirty closure rows, recomputing the affected region
/// stops beating a from-scratch rebuild (floor; scaled by role count
/// in [`CompiledIndex::apply_deltas`]).
const DAMAGE_FLOOR: usize = 8;

impl CompiledIndex {
    pub(crate) fn build(catalog: &RoleCatalog, assignments: &Assignments, rules: &[Rule]) -> Self {
        let closures = RoleClosures::build(catalog);
        let rule_index = RuleIndex::build(rules, closures.words());
        let subjects = assignments
            .subjects_with_roles()
            .map(|(id, roles)| (id.as_raw(), closures.expand(roles.iter().copied())))
            .collect();
        let objects = assignments
            .objects_with_roles()
            .map(|(id, roles)| (id.as_raw(), closures.expand(roles.iter().copied())))
            .collect();
        let empty = CachedExpansion {
            direct: BTreeSet::new(),
            expanded: BTreeSet::new(),
            bits: vec![0u64; closures.words()],
        };
        Self {
            closures: Arc::new(closures),
            rules: Arc::new(rule_index),
            subjects: Arc::new(subjects),
            objects: Arc::new(objects),
            empty,
        }
    }

    /// Builds the index for the current engine state by patching this
    /// (older-generation) index with `deltas`, touching only the
    /// affected shards. Returns `None` when a full rebuild is the
    /// better (or only safe) move: the dense role space outgrew its
    /// bitset word budget, the dirty closure region crossed the damage
    /// threshold, or a rule delta does not line up with this index.
    ///
    /// Region deltas recompute their targets from the *current*
    /// catalog/assignments, so replaying a batch converges to exactly
    /// the from-scratch index regardless of intra-batch ordering; rule
    /// deltas are positional and are replayed in schedule order.
    pub(crate) fn apply_deltas(
        &self,
        deltas: &[PolicyDelta],
        catalog: &RoleCatalog,
        assignments: &Assignments,
    ) -> Option<CompiledIndex> {
        // Plan: fold every delta into the dirty regions it invalidates.
        let mut required_roles = self.closures.role_count();
        let mut dirty_roles: BTreeSet<RoleId> = BTreeSet::new();
        let mut dirty_subjects: BTreeSet<SubjectId> = BTreeSet::new();
        let mut dirty_objects: BTreeSet<ObjectId> = BTreeSet::new();
        let mut rule_edits = false;
        for delta in deltas {
            match delta {
                PolicyDelta::RoleDeclared { role } => {
                    required_roles = required_roles.max(role.as_raw() as usize + 1);
                }
                PolicyDelta::EdgeAdded { kind, specific } => {
                    dirty_roles.extend(catalog.hierarchy(*kind).closure_dirty_region(*specific));
                }
                PolicyDelta::RuleAdded { .. } | PolicyDelta::RuleRemoved { .. } => {
                    rule_edits = true;
                }
                PolicyDelta::SubjectAssignment { subject } => {
                    dirty_subjects.insert(*subject);
                }
                PolicyDelta::ObjectAssignment { object } => {
                    dirty_objects.insert(*object);
                }
            }
        }
        if required_roles.div_ceil(64) != self.closures.words() {
            return None; // bitset rows would widen — full rebuild
        }
        if dirty_roles.len() > DAMAGE_FLOOR.max(required_roles / 4) {
            return None; // damage threshold: recompute would not pay
        }

        // Closures shard: extend the dense space, then re-derive the
        // dirty frontier from the current hierarchy.
        let closures = if required_roles > self.closures.role_count() || !dirty_roles.is_empty() {
            let mut next = RoleClosures::clone(&self.closures);
            if !next.try_extend(required_roles) {
                return None;
            }
            next.recompute_rows(catalog, &dirty_roles);
            Arc::new(next)
        } else {
            Arc::clone(&self.closures)
        };

        // A changed closure row invalidates the cached expansion of
        // every entity that *directly* holds the role.
        for &role in &dirty_roles {
            dirty_subjects.extend(assignments.subjects_in(role));
            dirty_objects.extend(assignments.objects_in(role));
        }

        let subjects = if dirty_subjects.is_empty() {
            Arc::clone(&self.subjects)
        } else {
            let mut next = HashMap::clone(&self.subjects);
            for &subject in &dirty_subjects {
                // Mirror `build` exactly: an entry exists iff the
                // assignments map tracks the subject, even when every
                // direct role has since been revoked.
                if assignments.subject_is_tracked(subject) {
                    let roles = assignments.subject_roles(subject);
                    next.insert(subject.as_raw(), closures.expand(roles));
                } else {
                    next.remove(&subject.as_raw());
                }
            }
            Arc::new(next)
        };
        let objects = if dirty_objects.is_empty() {
            Arc::clone(&self.objects)
        } else {
            let mut next = HashMap::clone(&self.objects);
            for &object in &dirty_objects {
                if assignments.object_is_tracked(object) {
                    let roles = assignments.object_roles(object);
                    next.insert(object.as_raw(), closures.expand(roles));
                } else {
                    next.remove(&object.as_raw());
                }
            }
            Arc::new(next)
        };

        let rules = if rule_edits {
            let mut next = RuleIndex::clone(&self.rules);
            for delta in deltas {
                let applied = match delta {
                    PolicyDelta::RuleAdded {
                        position,
                        transaction,
                        environment,
                    } => next.apply_add(*position, *transaction, environment),
                    PolicyDelta::RuleRemoved {
                        position,
                        transaction,
                    } => next.apply_remove(*position, *transaction),
                    _ => true,
                };
                if !applied {
                    return None;
                }
            }
            Arc::new(next)
        } else {
            Arc::clone(&self.rules)
        };

        Some(CompiledIndex {
            closures,
            rules,
            subjects,
            objects,
            empty: self.empty.clone(),
        })
    }

    /// The cached expansion of a subject's authorized role set.
    pub(crate) fn subject(&self, id: SubjectId) -> &CachedExpansion {
        self.subjects.get(&id.as_raw()).unwrap_or(&self.empty)
    }

    /// The cached expansion of an object's role set.
    pub(crate) fn object(&self, id: ObjectId) -> &CachedExpansion {
        self.objects.get(&id.as_raw()).unwrap_or(&self.empty)
    }

    /// Publishes the index's shape into the registry's gauges.
    fn publish_shape(&self, metrics: &MetricsRegistry) {
        metrics.index_roles.set(self.closures.role_count() as u64);
        metrics
            .index_rule_buckets
            .set(self.rules.bucket_count() as u64);
        metrics.index_max_bucket.set(self.rules.max_bucket() as u64);
    }
}

/// How an [`IndexCell`] advance produced the next index.
pub(crate) enum Advance {
    /// Built from scratch (cold cell, trimmed delta history, widened
    /// bitsets, or damage past the planner's threshold).
    Rebuilt(CompiledIndex),
    /// Patched incrementally from the previous generation's shards;
    /// the planner has already counted the applied deltas.
    Patched(CompiledIndex),
}

/// Lazily-maintained, generation-checked holder of the
/// [`CompiledIndex`].
///
/// The engine bumps its generation counter in every `&mut self` method
/// that touches roles, assignments or rules; `decide` (`&self`) asks
/// the cell for an index matching the current generation and advances
/// on mismatch — incrementally when the delta log allows, from scratch
/// otherwise. Publication is an RCU-style swap of the slot's `Arc`:
/// in-flight decides keep the snapshot they cloned and never observe a
/// torn shard. Interior mutability keeps mediation `&self`-pure, and
/// the `Arc` lets `decide_batch` workers share one advance.
pub(crate) struct IndexCell {
    slot: RwLock<Option<(u64, Arc<CompiledIndex>)>>,
}

impl IndexCell {
    /// The cached index, if it matches `generation`.
    fn cached(&self, generation: u64) -> Option<Arc<CompiledIndex>> {
        self.slot
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .as_ref()
            .filter(|(built_for, _)| *built_for == generation)
            .map(|(_, index)| Arc::clone(index))
    }

    /// Returns the index for `generation`, advancing it at most once
    /// per generation under contention. `advance` receives the stale
    /// `(generation, index)` snapshot (if any) to patch from.
    ///
    /// Generation hits count into `index_cache_hits`; every install
    /// counts into `index_rebuilds`, split into
    /// `index_full_rebuilds` plus `index_rebuild_ns` (from-scratch)
    /// and `index_delta_applied` plus `index_delta_apply_ns`
    /// (incremental).
    pub(crate) fn get_or_advance(
        &self,
        generation: u64,
        metrics: &MetricsRegistry,
        advance: impl FnOnce(Option<(u64, &CompiledIndex)>) -> Advance,
    ) -> Arc<CompiledIndex> {
        if let Some(index) = self.cached(generation) {
            metrics.index_cache_hits.inc();
            return index;
        }
        {
            let mut slot = self
                .slot
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            // Double-check: another thread may have advanced while we
            // waited for the write lock.
            let raced = matches!(slot.as_ref(), Some((built_for, _)) if *built_for == generation);
            if !raced {
                let started = std::time::Instant::now();
                let stale = slot
                    .as_ref()
                    .map(|(built_for, index)| (*built_for, &**index));
                let (index, patched) = match advance(stale) {
                    Advance::Patched(next) => (Arc::new(next), true),
                    Advance::Rebuilt(next) => (Arc::new(next), false),
                };
                let elapsed = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                metrics.index_rebuilds.inc();
                if patched {
                    metrics.index_delta_apply_ns.observe(elapsed);
                } else {
                    metrics.index_full_rebuilds.inc();
                    metrics.index_rebuild_ns.add(elapsed);
                }
                index.publish_shape(metrics);
                metrics
                    .events
                    .publish(crate::telemetry::EventData::DeltaApplied {
                        generation,
                        patched,
                        install_ns: elapsed,
                    });
                *slot = Some((generation, Arc::clone(&index)));
                return index;
            }
        }
        // Lost the race: the winner already published this generation.
        // Serve it from the read path so the hot-path Arc clone never
        // happens under the write lock. Mutations take `&mut self`, so
        // no third thread can move the generation underneath us.
        metrics.index_cache_hits.inc();
        self.cached(generation)
            .expect("racing advance published this generation")
    }
}

impl Default for IndexCell {
    fn default() -> Self {
        Self {
            slot: RwLock::new(None),
        }
    }
}

impl Clone for IndexCell {
    fn clone(&self) -> Self {
        // The index is pure derived state keyed by generation, so
        // sharing the Arc with the clone is safe and skips a rebuild.
        Self {
            slot: RwLock::new(
                self.slot
                    .read()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .clone(),
            ),
        }
    }
}

impl std::fmt::Debug for IndexCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = match self
            .slot
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .as_ref()
        {
            Some((generation, _)) => format!("built@{generation}"),
            None => "empty".to_owned(),
        };
        f.debug_struct("IndexCell").field("state", &state).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::role::RoleKind;

    fn catalog_with_chain() -> (RoleCatalog, [RoleId; 4]) {
        let mut catalog = RoleCatalog::new();
        let home_user = catalog.declare("home_user", RoleKind::Subject).unwrap();
        let family = catalog.declare("family", RoleKind::Subject).unwrap();
        let parent = catalog.declare("parent", RoleKind::Subject).unwrap();
        let device = catalog.declare("device", RoleKind::Object).unwrap();
        catalog.specialize(family, home_user).unwrap();
        catalog.specialize(parent, family).unwrap();
        (catalog, [home_user, family, parent, device])
    }

    #[test]
    fn closures_match_catalog_expansion() {
        let (catalog, [home_user, family, parent, device]) = catalog_with_chain();
        let closures = RoleClosures::build(&catalog);
        assert_eq!(closures.role_count(), 4);
        for role in [home_user, family, parent, device] {
            let expansion = closures.expand([role]);
            assert_eq!(
                expansion.expanded,
                catalog.expand(&BTreeSet::from([role])),
                "closure mismatch for {role}"
            );
            for member in &expansion.expanded {
                assert!(expansion.contains(*member));
            }
        }
    }

    #[test]
    fn distances_match_hierarchy_bfs() {
        let (catalog, [home_user, family, parent, device]) = catalog_with_chain();
        let closures = RoleClosures::build(&catalog);
        let hierarchy = catalog.hierarchy(RoleKind::Subject);
        for &a in &[home_user, family, parent] {
            for &b in &[home_user, family, parent] {
                assert_eq!(
                    closures.distance_up(a, b),
                    hierarchy.distance_up(a, b),
                    "distance mismatch {a} -> {b}"
                );
            }
        }
        assert_eq!(closures.distance_up(parent, parent), Some(0));
        assert_eq!(closures.distance_up(parent, home_user), Some(2));
        assert_eq!(closures.distance_up(home_user, parent), None);
        assert_eq!(closures.distance_up(device, home_user), None);
        assert_eq!(closures.distance_up(RoleId::from_raw(99), parent), None);
    }

    #[test]
    fn expansion_skips_undeclared_roles() {
        let (catalog, [_, family, ..]) = catalog_with_chain();
        let closures = RoleClosures::build(&catalog);
        let expansion = closures.expand([family, RoleId::from_raw(77)]);
        assert!(!expansion.direct.contains(&RoleId::from_raw(77)));
        assert!(!expansion.contains(RoleId::from_raw(77)));
        assert_eq!(
            expansion.expanded,
            catalog.expand(&BTreeSet::from([family, RoleId::from_raw(77)]))
        );
    }

    #[test]
    fn candidates_merge_preserves_policy_order() {
        let candidates = Candidates {
            exact: &[1, 4, 6],
            any: &[0, 5],
        };
        assert_eq!(candidates.len(), 5);
        let order: Vec<usize> = candidates.collect();
        assert_eq!(order, vec![0, 1, 4, 5, 6]);
    }

    #[test]
    fn index_cell_rebuilds_only_on_generation_change() {
        let (catalog, _) = catalog_with_chain();
        let assignments = Assignments::new();
        let cell = IndexCell::default();
        let metrics = MetricsRegistry::new();
        let first = cell.get_or_advance(3, &metrics, |_| {
            Advance::Rebuilt(CompiledIndex::build(&catalog, &assignments, &[]))
        });
        let second = cell.get_or_advance(3, &metrics, |_| {
            panic!("same generation must reuse the index")
        });
        assert!(Arc::ptr_eq(&first, &second));
        let third = cell.get_or_advance(4, &metrics, |stale| {
            let (built_for, index) = stale.expect("previous generation cached");
            assert_eq!(built_for, 3);
            assert!(Arc::ptr_eq(&first.closures, &index.closures));
            Advance::Rebuilt(CompiledIndex::build(&catalog, &assignments, &[]))
        });
        assert!(!Arc::ptr_eq(&first, &third));
        if crate::telemetry::ENABLED {
            assert_eq!(metrics.index_rebuilds.get(), 2);
            assert_eq!(metrics.index_full_rebuilds.get(), 2);
            assert_eq!(metrics.index_cache_hits.get(), 1);
            assert_eq!(metrics.index_roles.get(), 4);
        }
    }

    #[test]
    fn patched_installs_count_separately_from_rebuilds() {
        let (catalog, [home_user, family, ..]) = catalog_with_chain();
        let assignments = Assignments::new();
        let cell = IndexCell::default();
        let metrics = MetricsRegistry::new();
        let first = cell.get_or_advance(1, &metrics, |_| {
            Advance::Rebuilt(CompiledIndex::build(&catalog, &assignments, &[]))
        });
        let second = cell.get_or_advance(2, &metrics, |stale| {
            let (_, index) = stale.expect("stale index available to patch");
            let next = index
                .apply_deltas(&[], &catalog, &assignments)
                .expect("empty delta batch applies");
            Advance::Patched(next)
        });
        // An untouched patch shares every shard with its predecessor.
        assert!(Arc::ptr_eq(&first.closures, &second.closures));
        assert!(Arc::ptr_eq(&first.rules, &second.rules));
        assert_eq!(
            second.closures.distance_up(family, home_user),
            Some(1),
            "patched index answers closure queries"
        );
        if crate::telemetry::ENABLED {
            assert_eq!(metrics.index_rebuilds.get(), 2);
            assert_eq!(metrics.index_full_rebuilds.get(), 1);
            assert_eq!(metrics.index_delta_apply_ns.snapshot().count, 1);
        }
    }

    #[test]
    fn edge_delta_matches_rebuilt_closures() {
        let (mut catalog, [home_user, _, parent, device]) = catalog_with_chain();
        let assignments = Assignments::new();
        let stale = CompiledIndex::build(&catalog, &assignments, &[]);
        // New edge: parent specializes... device? Same-kind only — use
        // a fresh subject role chain instead.
        let guest = catalog.declare("guest", RoleKind::Subject).unwrap();
        catalog.specialize(guest, home_user).unwrap();
        let deltas = [
            PolicyDelta::RoleDeclared { role: guest },
            PolicyDelta::EdgeAdded {
                kind: RoleKind::Subject,
                specific: guest,
            },
        ];
        let patched = stale
            .apply_deltas(&deltas, &catalog, &assignments)
            .expect("single edge insert is incremental");
        let rebuilt = CompiledIndex::build(&catalog, &assignments, &[]);
        assert_eq!(patched, rebuilt, "patched index must equal a rebuild");
        assert_eq!(patched.closures.distance_up(guest, home_user), Some(1));
        assert_eq!(patched.closures.distance_up(parent, home_user), Some(2));
        assert!(patched.closures.is_declared(device));
    }

    #[test]
    fn damage_threshold_falls_back_to_rebuild() {
        let mut catalog = RoleCatalog::new();
        let root = catalog.declare("root", RoleKind::Subject).unwrap();
        let mut leaves = Vec::new();
        for i in 0..40 {
            let leaf = catalog
                .declare(format!("leaf{i}"), RoleKind::Subject)
                .unwrap();
            catalog.specialize(leaf, root).unwrap();
            leaves.push(leaf);
        }
        let assignments = Assignments::new();
        let stale = CompiledIndex::build(&catalog, &assignments, &[]);
        // An edge under `root` dirties root's entire specialization
        // frontier (40 roles > max(8, 41/4)): the planner must refuse.
        let deep = catalog.declare("deep", RoleKind::Subject).unwrap();
        catalog.specialize(root, deep).unwrap();
        let deltas = [
            PolicyDelta::RoleDeclared { role: deep },
            PolicyDelta::EdgeAdded {
                kind: RoleKind::Subject,
                specific: root,
            },
        ];
        assert!(
            stale
                .apply_deltas(&deltas, &catalog, &assignments)
                .is_none(),
            "wide damage must fall back to a full rebuild"
        );
        // A narrow edge still patches.
        let narrow = [PolicyDelta::EdgeAdded {
            kind: RoleKind::Subject,
            specific: leaves[0],
        }];
        assert!(stale
            .apply_deltas(&narrow, &catalog, &assignments)
            .is_some());
    }
}
