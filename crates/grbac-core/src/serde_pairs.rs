//! Serde adapters that serialize maps as sequences of `(key, value)`
//! pairs.
//!
//! The catalogs key their maps by typed ids (and one by a
//! `(RoleKind, String)` tuple); self-describing formats like JSON only
//! allow string map keys, so fields tagged
//! `#[serde(with = "crate::serde_pairs::hash")]` round-trip as pair
//! lists instead. This is what makes a whole
//! [`Grbac`](crate::engine::Grbac) engine storable as a JSON document —
//! the persistence story a real deployment needs.

/// Adapter for `HashMap<K, V>` with non-string keys.
pub mod hash {
    use std::collections::HashMap;
    use std::hash::Hash;

    use serde::de::{Deserialize, Deserializer};
    use serde::ser::{Serialize, Serializer};

    /// Serializes the map as a sequence of pairs.
    ///
    /// # Errors
    ///
    /// Whatever the underlying serializer reports.
    pub fn serialize<K, V, S>(map: &HashMap<K, V>, serializer: S) -> Result<S::Ok, S::Error>
    where
        K: Serialize,
        V: Serialize,
        S: Serializer,
    {
        serializer.collect_seq(map.iter())
    }

    /// Deserializes a sequence of pairs back into a map.
    ///
    /// # Errors
    ///
    /// Whatever the underlying deserializer reports.
    pub fn deserialize<'de, K, V, D>(deserializer: D) -> Result<HashMap<K, V>, D::Error>
    where
        K: Deserialize<'de> + Eq + Hash,
        V: Deserialize<'de>,
        D: Deserializer<'de>,
    {
        Ok(Vec::<(K, V)>::deserialize(deserializer)?
            .into_iter()
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    use serde::{Deserialize, Serialize};

    use crate::id::RoleId;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Wrapper {
        #[serde(with = "crate::serde_pairs::hash")]
        map: HashMap<RoleId, u32>,
    }

    #[test]
    fn round_trips_through_json() {
        let mut map = HashMap::new();
        map.insert(RoleId::from_raw(0), 10);
        map.insert(RoleId::from_raw(7), 70);
        let wrapper = Wrapper { map };
        let json = serde_json::to_string(&wrapper).expect("pairs serialize");
        let back: Wrapper = serde_json::from_str(&json).expect("pairs deserialize");
        assert_eq!(wrapper, back);
    }

    #[test]
    fn empty_map_round_trips() {
        let wrapper = Wrapper { map: HashMap::new() };
        let json = serde_json::to_string(&wrapper).unwrap();
        let back: Wrapper = serde_json::from_str(&json).unwrap();
        assert_eq!(wrapper, back);
    }
}
