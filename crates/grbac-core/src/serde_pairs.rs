//! Serde adapters that serialize maps as sequences of `(key, value)`
//! pairs.
//!
//! The catalogs key their maps by typed ids (and one by a
//! `(RoleKind, String)` tuple); self-describing formats like JSON only
//! allow string map keys, so fields tagged
//! `#[serde(with = "crate::serde_pairs::hash")]` round-trip as pair
//! lists instead. This is what makes a whole
//! [`Grbac`](crate::engine::Grbac) engine storable as a JSON document —
//! the persistence story a real deployment needs.

/// Adapter for `HashMap<K, V>` with non-string keys.
pub mod hash {
    use std::collections::HashMap;
    use std::hash::Hash;

    use serde::{Deserialize, Error, Serialize, Value};

    /// Serializes the map as a sequence of pairs.
    pub fn to_value<K, V>(map: &HashMap<K, V>) -> Value
    where
        K: Serialize,
        V: Serialize,
    {
        Value::Seq(
            map.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }

    /// Deserializes a sequence of pairs back into a map.
    ///
    /// # Errors
    ///
    /// Rejects values that are not sequences of two-element sequences,
    /// or whose elements fail their own deserialization.
    pub fn from_value<K, V>(value: &Value) -> Result<HashMap<K, V>, Error>
    where
        K: Deserialize + Eq + Hash,
        V: Deserialize,
    {
        let items = value
            .as_seq()
            .ok_or_else(|| Error::expected("pair sequence", value))?;
        let mut map = HashMap::with_capacity(items.len());
        for item in items {
            let pair = item
                .as_seq()
                .ok_or_else(|| Error::expected("(key, value) pair", item))?;
            if pair.len() != 2 {
                return Err(Error::expected("(key, value) pair", item));
            }
            map.insert(K::from_value(&pair[0])?, V::from_value(&pair[1])?);
        }
        Ok(map)
    }
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    use serde::{Deserialize, Serialize};

    use crate::id::RoleId;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Wrapper {
        #[serde(with = "crate::serde_pairs::hash")]
        map: HashMap<RoleId, u32>,
    }

    #[test]
    fn round_trips_through_json() {
        let mut map = HashMap::new();
        map.insert(RoleId::from_raw(0), 10);
        map.insert(RoleId::from_raw(7), 70);
        let wrapper = Wrapper { map };
        let json = serde_json::to_string(&wrapper).expect("pairs serialize");
        let back: Wrapper = serde_json::from_str(&json).expect("pairs deserialize");
        assert_eq!(wrapper, back);
    }

    #[test]
    fn empty_map_round_trips() {
        let wrapper = Wrapper {
            map: HashMap::new(),
        };
        let json = serde_json::to_string(&wrapper).unwrap();
        let back: Wrapper = serde_json::from_str(&json).unwrap();
        assert_eq!(wrapper, back);
    }
}
