//! Role assignments: authorized role sets for subjects and objects.
//!
//! `R(s)` in Figure 1 — the *authorized role set* — generalizes in GRBAC
//! to both subjects and objects. (Environment roles are not assigned;
//! they *activate* based on system state, see the `grbac-env` crate.)

use std::collections::{BTreeSet, HashMap};

use serde::{Deserialize, Serialize};

use crate::id::{ObjectId, RoleId, SubjectId};

/// Subject-to-role and object-to-role assignment tables.
///
/// The tables store only *direct* assignments; hierarchy expansion
/// (closure) is applied by the caller via
/// [`RoleCatalog::expand`](crate::role::RoleCatalog::expand) so that
/// assignment stays a cheap, pure bookkeeping structure.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Assignments {
    #[serde(with = "crate::serde_pairs::hash")]
    subject_roles: HashMap<SubjectId, BTreeSet<RoleId>>,
    #[serde(with = "crate::serde_pairs::hash")]
    object_roles: HashMap<ObjectId, BTreeSet<RoleId>>,
    // Reverse indexes for membership queries and analysis.
    #[serde(with = "crate::serde_pairs::hash")]
    subjects_in_role: HashMap<RoleId, BTreeSet<SubjectId>>,
    #[serde(with = "crate::serde_pairs::hash")]
    objects_in_role: HashMap<RoleId, BTreeSet<ObjectId>>,
}

impl Assignments {
    /// Creates empty assignment tables.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Grants `role` to `subject`. Returns true if newly added.
    pub fn assign_subject(&mut self, subject: SubjectId, role: RoleId) -> bool {
        let added = self.subject_roles.entry(subject).or_default().insert(role);
        if added {
            self.subjects_in_role
                .entry(role)
                .or_default()
                .insert(subject);
        }
        added
    }

    /// Revokes `role` from `subject`. Returns true if it was present.
    pub fn revoke_subject(&mut self, subject: SubjectId, role: RoleId) -> bool {
        let removed = self
            .subject_roles
            .get_mut(&subject)
            .is_some_and(|s| s.remove(&role));
        if removed {
            if let Some(set) = self.subjects_in_role.get_mut(&role) {
                set.remove(&subject);
            }
        }
        removed
    }

    /// Maps `object` into `role`. Returns true if newly added.
    pub fn assign_object(&mut self, object: ObjectId, role: RoleId) -> bool {
        let added = self.object_roles.entry(object).or_default().insert(role);
        if added {
            self.objects_in_role.entry(role).or_default().insert(object);
        }
        added
    }

    /// Removes `object` from `role`. Returns true if it was present.
    pub fn revoke_object(&mut self, object: ObjectId, role: RoleId) -> bool {
        let removed = self
            .object_roles
            .get_mut(&object)
            .is_some_and(|s| s.remove(&role));
        if removed {
            if let Some(set) = self.objects_in_role.get_mut(&role) {
                set.remove(&object);
            }
        }
        removed
    }

    /// Direct (unexpanded) authorized role set of a subject.
    #[must_use]
    pub fn subject_roles(&self, subject: SubjectId) -> BTreeSet<RoleId> {
        self.subject_roles
            .get(&subject)
            .cloned()
            .unwrap_or_default()
    }

    /// Direct (unexpanded) role set of an object.
    #[must_use]
    pub fn object_roles(&self, object: ObjectId) -> BTreeSet<RoleId> {
        self.object_roles.get(&object).cloned().unwrap_or_default()
    }

    /// True if `subject` is directly assigned `role`.
    #[must_use]
    pub fn subject_has(&self, subject: SubjectId, role: RoleId) -> bool {
        self.subject_roles
            .get(&subject)
            .is_some_and(|s| s.contains(&role))
    }

    /// True if `object` is directly assigned `role`.
    #[must_use]
    pub fn object_has(&self, object: ObjectId, role: RoleId) -> bool {
        self.object_roles
            .get(&object)
            .is_some_and(|s| s.contains(&role))
    }

    /// Subjects directly assigned to `role`.
    #[must_use]
    pub fn subjects_in(&self, role: RoleId) -> BTreeSet<SubjectId> {
        self.subjects_in_role
            .get(&role)
            .cloned()
            .unwrap_or_default()
    }

    /// Objects directly assigned to `role`.
    #[must_use]
    pub fn objects_in(&self, role: RoleId) -> BTreeSet<ObjectId> {
        self.objects_in_role.get(&role).cloned().unwrap_or_default()
    }

    /// Whether the subject has (or once had) a direct assignment —
    /// i.e. whether [`subjects_with_roles`](Self::subjects_with_roles)
    /// would yield it. The compiled index mirrors this set exactly so
    /// an incremental patch converges on the same cache entries as a
    /// from-scratch build.
    #[must_use]
    pub fn subject_is_tracked(&self, subject: SubjectId) -> bool {
        self.subject_roles.contains_key(&subject)
    }

    /// Whether the object has (or once had) a direct assignment —
    /// the object-side counterpart of
    /// [`subject_is_tracked`](Self::subject_is_tracked).
    #[must_use]
    pub fn object_is_tracked(&self, object: ObjectId) -> bool {
        self.object_roles.contains_key(&object)
    }

    /// Iterates over every subject that has (or once had) a direct
    /// assignment, with its current direct role set. Order is
    /// unspecified; used by the compiled index to precompute
    /// hierarchy expansions.
    pub fn subjects_with_roles(&self) -> impl Iterator<Item = (SubjectId, &BTreeSet<RoleId>)> {
        self.subject_roles.iter().map(|(&id, roles)| (id, roles))
    }

    /// Iterates over every object that has (or once had) a direct
    /// assignment, with its current direct role set.
    pub fn objects_with_roles(&self) -> impl Iterator<Item = (ObjectId, &BTreeSet<RoleId>)> {
        self.object_roles.iter().map(|(&id, roles)| (id, roles))
    }

    /// Total number of subject-role assignment pairs.
    #[must_use]
    pub fn subject_assignment_count(&self) -> usize {
        self.subject_roles.values().map(BTreeSet::len).sum()
    }

    /// Total number of object-role assignment pairs.
    #[must_use]
    pub fn object_assignment_count(&self) -> usize {
        self.object_roles.values().map(BTreeSet::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(n: u64) -> SubjectId {
        SubjectId::from_raw(n)
    }
    fn o(n: u64) -> ObjectId {
        ObjectId::from_raw(n)
    }
    fn r(n: u64) -> RoleId {
        RoleId::from_raw(n)
    }

    #[test]
    fn assign_and_query_subject() {
        let mut a = Assignments::new();
        assert!(a.assign_subject(s(0), r(1)));
        assert!(!a.assign_subject(s(0), r(1)), "re-assignment is a no-op");
        assert!(a.subject_has(s(0), r(1)));
        assert!(!a.subject_has(s(0), r(2)));
        assert_eq!(a.subject_roles(s(0)), BTreeSet::from([r(1)]));
        assert_eq!(a.subjects_in(r(1)), BTreeSet::from([s(0)]));
    }

    #[test]
    fn revoke_subject_updates_both_indexes() {
        let mut a = Assignments::new();
        a.assign_subject(s(0), r(1));
        assert!(a.revoke_subject(s(0), r(1)));
        assert!(!a.revoke_subject(s(0), r(1)));
        assert!(!a.subject_has(s(0), r(1)));
        assert!(a.subjects_in(r(1)).is_empty());
    }

    #[test]
    fn assign_and_revoke_object() {
        let mut a = Assignments::new();
        assert!(a.assign_object(o(0), r(5)));
        assert!(a.object_has(o(0), r(5)));
        assert_eq!(a.objects_in(r(5)), BTreeSet::from([o(0)]));
        assert!(a.revoke_object(o(0), r(5)));
        assert!(a.object_roles(o(0)).is_empty());
    }

    #[test]
    fn counts() {
        let mut a = Assignments::new();
        a.assign_subject(s(0), r(0));
        a.assign_subject(s(0), r(1));
        a.assign_subject(s(1), r(0));
        a.assign_object(o(0), r(2));
        assert_eq!(a.subject_assignment_count(), 3);
        assert_eq!(a.object_assignment_count(), 1);
    }

    #[test]
    fn unassigned_entities_have_empty_sets() {
        let a = Assignments::new();
        assert!(a.subject_roles(s(9)).is_empty());
        assert!(a.object_roles(o(9)).is_empty());
        assert!(a.subjects_in(r(9)).is_empty());
        assert!(a.objects_in(r(9)).is_empty());
    }
}
