//! Policy rules: the GRBAC authorization relation (§4.2.4).
//!
//! A [`Rule`] permits or denies a *transaction* for the triple
//! (subject role, object role, environment roles). The §5.1 policy
//! "any child can use entertainment devices on weekdays during free time"
//! is exactly one rule:
//!
//! ```text
//! permit  subject:child  transaction:use  object:entertainment_devices
//!         when weekdays ∧ free_time
//! ```
//!
//! Negative authorizations ("children are denied access to dangerous
//! appliances", §3) are rules with [`Effect::Deny`]; conflicts between
//! positive and negative rules are settled by a
//! [`ConflictStrategy`](crate::precedence::ConflictStrategy).

use serde::{Deserialize, Serialize};

use crate::confidence::Confidence;
use crate::id::{RoleId, RuleId, TransactionId};

/// Whether a rule grants or forbids access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Effect {
    /// The rule grants the transaction.
    Permit,
    /// The rule forbids the transaction.
    Deny,
}

impl std::fmt::Display for Effect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Effect::Permit => "permit",
            Effect::Deny => "deny",
        })
    }
}

impl std::ops::Not for Effect {
    type Output = Effect;

    fn not(self) -> Effect {
        match self {
            Effect::Permit => Effect::Deny,
            Effect::Deny => Effect::Permit,
        }
    }
}

/// Constrains the subject-role or object-role position of a rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoleSpec {
    /// Matches any requester/object regardless of roles.
    Any,
    /// Matches when the entity possesses (directly or through the
    /// hierarchy) the named role.
    Is(RoleId),
}

impl RoleSpec {
    /// The constrained role, if any.
    #[must_use]
    pub fn role(self) -> Option<RoleId> {
        match self {
            RoleSpec::Any => None,
            RoleSpec::Is(r) => Some(r),
        }
    }

    /// True if this spec constrains nothing.
    #[must_use]
    pub fn is_any(self) -> bool {
        matches!(self, RoleSpec::Any)
    }
}

/// Constrains the transaction position of a rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransactionSpec {
    /// Matches every transaction.
    Any,
    /// Matches one specific transaction.
    Is(TransactionId),
}

impl TransactionSpec {
    /// The constrained transaction, if any.
    #[must_use]
    pub fn transaction(self) -> Option<TransactionId> {
        match self {
            TransactionSpec::Any => None,
            TransactionSpec::Is(t) => Some(t),
        }
    }

    /// True if this spec constrains nothing.
    #[must_use]
    pub fn is_any(self) -> bool {
        matches!(self, TransactionSpec::Any)
    }
}

/// A single authorization rule.
///
/// Built through [`RuleDef`] (validated and registered by
/// [`crate::engine::Grbac::add_rule`]), after which it is immutable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    id: RuleId,
    name: Option<String>,
    effect: Effect,
    subject_role: RoleSpec,
    object_role: RoleSpec,
    /// All listed environment roles must be active (conjunction); an
    /// empty list means the rule applies in any environment.
    environment_roles: Vec<RoleId>,
    transaction: TransactionSpec,
    /// Minimum authentication confidence required of the subject-role
    /// binding for a Permit rule to apply. `None` falls back to the
    /// engine-wide default threshold.
    min_confidence: Option<Confidence>,
}

impl Rule {
    pub(crate) fn from_def(id: RuleId, def: RuleDef) -> Self {
        Self {
            id,
            name: def.name,
            effect: def.effect,
            subject_role: def.subject_role,
            object_role: def.object_role,
            environment_roles: def.environment_roles,
            transaction: def.transaction,
            min_confidence: def.min_confidence,
        }
    }

    /// Extracts the delta recorded when this rule is appended at
    /// `position`: the transaction bucket it lands in and its direct
    /// environment guard, which is everything the incremental
    /// [`RuleIndex`](crate::index) patch needs.
    pub(crate) fn added_delta(&self, position: u32) -> crate::delta::PolicyDelta {
        crate::delta::PolicyDelta::RuleAdded {
            position,
            transaction: self.transaction,
            environment: self.environment_roles.clone(),
        }
    }

    /// Extracts the delta recorded when this rule is removed from
    /// `position`: the policy no longer knows where the rule sat, so
    /// the bucket spec travels with the delta.
    pub(crate) fn removed_delta(&self, position: u32) -> crate::delta::PolicyDelta {
        crate::delta::PolicyDelta::RuleRemoved {
            position,
            transaction: self.transaction,
        }
    }

    /// The rule's identifier.
    #[must_use]
    pub fn id(&self) -> RuleId {
        self.id
    }

    /// Optional human-readable name.
    #[must_use]
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// Permit or Deny.
    #[must_use]
    pub fn effect(&self) -> Effect {
        self.effect
    }

    /// The subject-role constraint.
    #[must_use]
    pub fn subject_role(&self) -> RoleSpec {
        self.subject_role
    }

    /// The object-role constraint.
    #[must_use]
    pub fn object_role(&self) -> RoleSpec {
        self.object_role
    }

    /// The environment roles that must all be active.
    #[must_use]
    pub fn environment_roles(&self) -> &[RoleId] {
        &self.environment_roles
    }

    /// The transaction constraint.
    #[must_use]
    pub fn transaction(&self) -> TransactionSpec {
        self.transaction
    }

    /// The rule-specific confidence threshold, if any.
    #[must_use]
    pub fn min_confidence(&self) -> Option<Confidence> {
        self.min_confidence
    }

    /// A rough specificity count: how many positions are constrained.
    /// Used as a tie-breaker by the most-specific strategy.
    #[must_use]
    pub fn constraint_count(&self) -> usize {
        usize::from(!self.subject_role.is_any())
            + usize::from(!self.object_role.is_any())
            + usize::from(!self.transaction.is_any())
            + self.environment_roles.len()
    }
}

/// Declarative description of a rule, consumed by
/// [`crate::engine::Grbac::add_rule`].
///
/// # Examples
///
/// ```
/// use grbac_core::rule::{Effect, RuleDef};
/// use grbac_core::id::RoleId;
///
/// let child = RoleId::from_raw(0);
/// let entertainment = RoleId::from_raw(1);
/// let weekdays = RoleId::from_raw(2);
/// let free_time = RoleId::from_raw(3);
///
/// let def = RuleDef::permit()
///     .named("kids tv policy")
///     .subject_role(child)
///     .object_role(entertainment)
///     .when(weekdays)
///     .when(free_time);
/// assert_eq!(def.effect, Effect::Permit);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuleDef {
    /// Permit or Deny.
    pub effect: Effect,
    /// Optional diagnostic name.
    pub name: Option<String>,
    /// Subject-role constraint (default `Any`).
    pub subject_role: RoleSpec,
    /// Object-role constraint (default `Any`).
    pub object_role: RoleSpec,
    /// Environment-role conjunction (default empty = always).
    pub environment_roles: Vec<RoleId>,
    /// Transaction constraint (default `Any`).
    pub transaction: TransactionSpec,
    /// Optional rule-specific confidence threshold.
    pub min_confidence: Option<Confidence>,
}

impl RuleDef {
    /// Starts a rule with the given effect and no constraints.
    #[must_use]
    pub fn new(effect: Effect) -> Self {
        Self {
            effect,
            name: None,
            subject_role: RoleSpec::Any,
            object_role: RoleSpec::Any,
            environment_roles: Vec::new(),
            transaction: TransactionSpec::Any,
            min_confidence: None,
        }
    }

    /// Starts an unconstrained Permit rule.
    #[must_use]
    pub fn permit() -> Self {
        Self::new(Effect::Permit)
    }

    /// Starts an unconstrained Deny rule.
    #[must_use]
    pub fn deny() -> Self {
        Self::new(Effect::Deny)
    }

    /// Names the rule for diagnostics and explanations.
    #[must_use]
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Constrains the subject role.
    #[must_use]
    pub fn subject_role(mut self, role: RoleId) -> Self {
        self.subject_role = RoleSpec::Is(role);
        self
    }

    /// Constrains the object role.
    #[must_use]
    pub fn object_role(mut self, role: RoleId) -> Self {
        self.object_role = RoleSpec::Is(role);
        self
    }

    /// Adds an environment role that must be active (conjunction).
    #[must_use]
    pub fn when(mut self, role: RoleId) -> Self {
        if !self.environment_roles.contains(&role) {
            self.environment_roles.push(role);
        }
        self
    }

    /// Constrains the transaction.
    #[must_use]
    pub fn transaction(mut self, transaction: TransactionId) -> Self {
        self.transaction = TransactionSpec::Is(transaction);
        self
    }

    /// Requires at least this confidence in the subject-role binding.
    #[must_use]
    pub fn min_confidence(mut self, confidence: Confidence) -> Self {
        self.min_confidence = Some(confidence);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: u64) -> RoleId {
        RoleId::from_raw(n)
    }

    #[test]
    fn effect_negation() {
        assert_eq!(!Effect::Permit, Effect::Deny);
        assert_eq!(!Effect::Deny, Effect::Permit);
        assert_eq!(Effect::Permit.to_string(), "permit");
    }

    #[test]
    fn specs_expose_constraints() {
        assert!(RoleSpec::Any.is_any());
        assert_eq!(RoleSpec::Any.role(), None);
        assert_eq!(RoleSpec::Is(r(3)).role(), Some(r(3)));
        assert!(TransactionSpec::Any.is_any());
        assert_eq!(
            TransactionSpec::Is(TransactionId::from_raw(1)).transaction(),
            Some(TransactionId::from_raw(1))
        );
    }

    #[test]
    fn builder_accumulates_constraints() {
        let def = RuleDef::permit()
            .named("kids tv policy")
            .subject_role(r(0))
            .object_role(r(1))
            .when(r(2))
            .when(r(3))
            .when(r(2)) // duplicate ignored
            .transaction(TransactionId::from_raw(0))
            .min_confidence(Confidence::new(0.9).unwrap());
        assert_eq!(def.name.as_deref(), Some("kids tv policy"));
        assert_eq!(def.environment_roles, vec![r(2), r(3)]);
        assert_eq!(def.subject_role, RoleSpec::Is(r(0)));
        assert_eq!(def.object_role, RoleSpec::Is(r(1)));
        assert!(def.min_confidence.is_some());
    }

    #[test]
    fn constraint_count_reflects_specificity() {
        let rule = Rule::from_def(RuleId::from_raw(0), RuleDef::permit());
        assert_eq!(rule.constraint_count(), 0);
        let rule = Rule::from_def(
            RuleId::from_raw(1),
            RuleDef::deny()
                .subject_role(r(0))
                .object_role(r(1))
                .when(r(2))
                .when(r(3))
                .transaction(TransactionId::from_raw(0)),
        );
        assert_eq!(rule.constraint_count(), 5);
    }

    #[test]
    fn rule_accessors() {
        let rule = Rule::from_def(
            RuleId::from_raw(7),
            RuleDef::deny()
                .named("no dangerous appliances")
                .subject_role(r(0)),
        );
        assert_eq!(rule.id(), RuleId::from_raw(7));
        assert_eq!(rule.name(), Some("no dangerous appliances"));
        assert_eq!(rule.effect(), Effect::Deny);
        assert!(rule.object_role().is_any());
        assert!(rule.environment_roles().is_empty());
        assert_eq!(rule.min_confidence(), None);
    }
}
