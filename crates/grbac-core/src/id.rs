//! Strongly-typed identifiers for every entity class in a GRBAC system.
//!
//! Each identifier is a newtype over `u64` ([C-NEWTYPE]): a [`SubjectId`]
//! can never be confused with an [`ObjectId`] at compile time, which rules
//! out an entire class of policy-plumbing bugs. Identifiers are allocated
//! by the owning catalog (e.g. [`crate::engine::Grbac::declare_subject`])
//! and are opaque: the numeric value is an implementation detail exposed
//! only through [`Display`](std::fmt::Display) for diagnostics.

use serde::{Deserialize, Serialize};

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(u64);

        impl $name {
            /// Creates an identifier from a raw index.
            ///
            /// Intended for catalogs that allocate identifiers densely and
            /// for test fixtures; library users normally receive ids from
            /// `declare_*` methods instead of constructing them.
            #[must_use]
            pub const fn from_raw(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw index backing this identifier.
            #[must_use]
            pub const fn as_raw(self) -> u64 {
                self.0
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for u64 {
            fn from(id: $name) -> u64 {
                id.0
            }
        }
    };
}

define_id!(
    /// Identifier of a *subject*: a user of the system (a resident, guest,
    /// pet, or remote principal in the Aware Home setting).
    SubjectId,
    "s"
);

define_id!(
    /// Identifier of an *object*: any protected resource — an appliance,
    /// a media stream, a document, a sensor feed.
    ObjectId,
    "o"
);

define_id!(
    /// Identifier of a *role* of any kind (subject, object or environment
    /// role — see [`crate::role::RoleKind`]).
    RoleId,
    "r"
);

define_id!(
    /// Identifier of a *transaction*: a named series of accesses to
    /// objects (e.g. `use`, `view_stream`, `read`).
    TransactionId,
    "t"
);

define_id!(
    /// Identifier of a policy rule.
    RuleId,
    "rule"
);

define_id!(
    /// Identifier of a session (a subject's activation context).
    SessionId,
    "sess"
);

define_id!(
    /// Identifier of a delegation grant.
    DelegationId,
    "dlg"
);

/// Monotonic id allocator used by the catalogs in this crate.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub(crate) struct IdAllocator {
    next: u64,
}

impl IdAllocator {
    pub(crate) fn new() -> Self {
        Self { next: 0 }
    }

    pub(crate) fn next(&mut self) -> u64 {
        let id = self.next;
        self.next += 1;
        id
    }

    /// The id the next call to [`Self::next`] will hand out — i.e. the
    /// current ceiling of the dense id space (ids are never reused).
    pub(crate) fn peek(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_distinct_types() {
        fn takes_subject(_: SubjectId) {}
        takes_subject(SubjectId::from_raw(1));
        // `takes_subject(ObjectId::from_raw(1))` would not compile.
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(SubjectId::from_raw(3).to_string(), "s3");
        assert_eq!(ObjectId::from_raw(0).to_string(), "o0");
        assert_eq!(RoleId::from_raw(42).to_string(), "r42");
        assert_eq!(TransactionId::from_raw(7).to_string(), "t7");
        assert_eq!(RuleId::from_raw(9).to_string(), "rule9");
        assert_eq!(SessionId::from_raw(5).to_string(), "sess5");
    }

    #[test]
    fn raw_round_trip() {
        let id = RoleId::from_raw(123);
        assert_eq!(id.as_raw(), 123);
        assert_eq!(u64::from(id), 123);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(RoleId::from_raw(1) < RoleId::from_raw(2));
        assert_eq!(RoleId::from_raw(5), RoleId::from_raw(5));
    }

    #[test]
    fn allocator_is_dense_and_monotonic() {
        let mut alloc = IdAllocator::new();
        assert_eq!(alloc.next(), 0);
        assert_eq!(alloc.next(), 1);
        assert_eq!(alloc.next(), 2);
    }

    #[test]
    fn serde_round_trip() {
        let id = SubjectId::from_raw(17);
        let json = serde_json::to_string(&id).expect("serialize");
        let back: SubjectId = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(id, back);
    }
}
