//! Strongly-typed identifiers for every entity class in a GRBAC system.
//!
//! Each identifier is a newtype over `u64` ([C-NEWTYPE]): a [`SubjectId`]
//! can never be confused with an [`ObjectId`] at compile time, which rules
//! out an entire class of policy-plumbing bugs. Identifiers are allocated
//! by the owning catalog (e.g. [`crate::engine::Grbac::declare_subject`])
//! and are opaque: the numeric value is an implementation detail exposed
//! only through [`Display`](std::fmt::Display) for diagnostics.

use serde::{Deserialize, Serialize};

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(u64);

        impl $name {
            /// Creates an identifier from a raw index.
            ///
            /// Intended for catalogs that allocate identifiers densely and
            /// for test fixtures; library users normally receive ids from
            /// `declare_*` methods instead of constructing them.
            #[must_use]
            pub const fn from_raw(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw index backing this identifier.
            #[must_use]
            pub const fn as_raw(self) -> u64 {
                self.0
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for u64 {
            fn from(id: $name) -> u64 {
                id.0
            }
        }
    };
}

define_id!(
    /// Identifier of a *subject*: a user of the system (a resident, guest,
    /// pet, or remote principal in the Aware Home setting).
    SubjectId,
    "s"
);

define_id!(
    /// Identifier of an *object*: any protected resource — an appliance,
    /// a media stream, a document, a sensor feed.
    ObjectId,
    "o"
);

define_id!(
    /// Identifier of a *role* of any kind (subject, object or environment
    /// role — see [`crate::role::RoleKind`]).
    RoleId,
    "r"
);

define_id!(
    /// Identifier of a *transaction*: a named series of accesses to
    /// objects (e.g. `use`, `view_stream`, `read`).
    TransactionId,
    "t"
);

define_id!(
    /// Identifier of a policy rule.
    RuleId,
    "rule"
);

define_id!(
    /// Identifier of a session (a subject's activation context).
    SessionId,
    "sess"
);

define_id!(
    /// Identifier of a delegation grant.
    DelegationId,
    "dlg"
);

/// Correlation identifier minted for every mediated decision.
///
/// A `DecisionId` is a 128-bit value split into an *engine epoch*
/// (upper 64 bits, drawn once per [`Grbac`](crate::engine::Grbac)
/// instantiation so ids from different engine lifetimes never collide)
/// and a *per-engine monotonic sequence* (lower 64 bits). The same id
/// is threaded through every telemetry surface one decision touches —
/// its [`DecisionTrace`](crate::telemetry::DecisionTrace), its
/// [`ProvenanceRecord`](crate::provenance::ProvenanceRecord), its
/// [`AuditRecord`](crate::audit::AuditRecord), the latency-sketch
/// exemplars, and any watchdog
/// [`AlertRecord`](crate::telemetry::AlertRecord) whose breaching
/// window it fell inside — so one id resolves a decision's full story.
///
/// Ids render as (and parse from) 32 lowercase hex digits, the form
/// used by exported exemplars and the `/decision/<id>` observability
/// endpoint. [`DecisionId::UNASSIGNED`] (all zeros) marks surfaces the
/// minting path never reached (e.g. a replay through
/// [`decide_naive`](crate::engine::Grbac::decide_naive), which never
/// mints — replays must not pollute the correlation space).
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct DecisionId {
    epoch: u64,
    seq: u64,
}

impl DecisionId {
    /// The zero id: no decision was minted for this surface.
    pub const UNASSIGNED: DecisionId = DecisionId { epoch: 0, seq: 0 };

    /// Builds an id from its engine epoch and sequence parts.
    #[must_use]
    pub const fn from_parts(epoch: u64, seq: u64) -> Self {
        Self { epoch, seq }
    }

    /// The engine-lifetime epoch (upper 64 bits).
    #[must_use]
    pub const fn epoch(self) -> u64 {
        self.epoch
    }

    /// The per-engine monotonic sequence (lower 64 bits).
    #[must_use]
    pub const fn seq(self) -> u64 {
        self.seq
    }

    /// The id as one 128-bit value (`epoch << 64 | seq`).
    #[must_use]
    pub const fn as_u128(self) -> u128 {
        ((self.epoch as u128) << 64) | self.seq as u128
    }

    /// Rebuilds an id from its 128-bit form.
    #[must_use]
    pub const fn from_u128(raw: u128) -> Self {
        Self {
            epoch: (raw >> 64) as u64,
            seq: raw as u64,
        }
    }

    /// True when this id was actually minted (non-zero).
    #[must_use]
    pub const fn is_assigned(self) -> bool {
        self.epoch != 0 || self.seq != 0
    }
}

impl std::fmt::Display for DecisionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.as_u128())
    }
}

impl std::str::FromStr for DecisionId {
    type Err = std::num::ParseIntError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        u128::from_str_radix(s, 16).map(Self::from_u128)
    }
}

/// The shared mint behind one engine's [`DecisionId`]s: an epoch drawn
/// at construction plus a relaxed atomic sequence. Engine clones share
/// the mint (like the metrics registry and the flight recorder), so a
/// batch fanned out across threads still mints globally-unique,
/// monotonically-claimed ids.
#[derive(Debug)]
pub(crate) struct DecisionIdMint {
    epoch: u64,
    next_seq: std::sync::atomic::AtomicU64,
}

impl Default for DecisionIdMint {
    fn default() -> Self {
        Self::new()
    }
}

impl DecisionIdMint {
    pub(crate) fn new() -> Self {
        Self {
            epoch: fresh_epoch(),
            next_seq: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Claims the next id (sequence starts at 1 so the zero id stays
    /// reserved for [`DecisionId::UNASSIGNED`]).
    pub(crate) fn mint(&self) -> DecisionId {
        let seq = self
            .next_seq
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            .wrapping_add(1);
        DecisionId {
            epoch: self.epoch,
            seq,
        }
    }
}

/// A non-zero epoch unique within this process (a global counter) and
/// overwhelmingly unique across processes (wall-clock nanoseconds
/// folded in).
fn fresh_epoch() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    let ordinal = NEXT.fetch_add(1, Ordering::Relaxed);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    // Spread the ordinal across the high bits so epochs minted in the
    // same nanosecond still differ; keep the result non-zero.
    (nanos ^ ordinal.rotate_left(40)).max(1)
}

/// Monotonic id allocator used by the catalogs in this crate.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub(crate) struct IdAllocator {
    next: u64,
}

impl IdAllocator {
    pub(crate) fn new() -> Self {
        Self { next: 0 }
    }

    pub(crate) fn next(&mut self) -> u64 {
        let id = self.next;
        self.next += 1;
        id
    }

    /// The id the next call to [`Self::next`] will hand out — i.e. the
    /// current ceiling of the dense id space (ids are never reused).
    pub(crate) fn peek(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_distinct_types() {
        fn takes_subject(_: SubjectId) {}
        takes_subject(SubjectId::from_raw(1));
        // `takes_subject(ObjectId::from_raw(1))` would not compile.
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(SubjectId::from_raw(3).to_string(), "s3");
        assert_eq!(ObjectId::from_raw(0).to_string(), "o0");
        assert_eq!(RoleId::from_raw(42).to_string(), "r42");
        assert_eq!(TransactionId::from_raw(7).to_string(), "t7");
        assert_eq!(RuleId::from_raw(9).to_string(), "rule9");
        assert_eq!(SessionId::from_raw(5).to_string(), "sess5");
    }

    #[test]
    fn raw_round_trip() {
        let id = RoleId::from_raw(123);
        assert_eq!(id.as_raw(), 123);
        assert_eq!(u64::from(id), 123);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(RoleId::from_raw(1) < RoleId::from_raw(2));
        assert_eq!(RoleId::from_raw(5), RoleId::from_raw(5));
    }

    #[test]
    fn allocator_is_dense_and_monotonic() {
        let mut alloc = IdAllocator::new();
        assert_eq!(alloc.next(), 0);
        assert_eq!(alloc.next(), 1);
        assert_eq!(alloc.next(), 2);
    }

    #[test]
    fn serde_round_trip() {
        let id = SubjectId::from_raw(17);
        let json = serde_json::to_string(&id).expect("serialize");
        let back: SubjectId = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(id, back);
    }

    #[test]
    fn decision_id_round_trips_through_hex_and_u128() {
        let id = DecisionId::from_parts(0xDEAD_BEEF, 42);
        assert_eq!(id.to_string(), "00000000deadbeef000000000000002a");
        let parsed: DecisionId = id.to_string().parse().expect("hex parses");
        assert_eq!(parsed, id);
        assert_eq!(DecisionId::from_u128(id.as_u128()), id);
        assert!(id.is_assigned());
        assert!(!DecisionId::UNASSIGNED.is_assigned());
        assert_eq!(DecisionId::default(), DecisionId::UNASSIGNED);
        assert!("not-hex".parse::<DecisionId>().is_err());
    }

    #[test]
    fn mint_is_monotonic_and_never_unassigned() {
        let mint = DecisionIdMint::new();
        let a = mint.mint();
        let b = mint.mint();
        assert!(a.is_assigned());
        assert_eq!(a.epoch(), mint.epoch);
        assert_eq!(b.seq(), a.seq() + 1);
        assert_ne!(DecisionIdMint::new().epoch, 0);
    }
}
