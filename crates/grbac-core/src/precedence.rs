//! Role precedence / conflict resolution (§4.1.2 "Role Precedence").
//!
//! When a subject possesses multiple roles, rules keyed on those roles
//! can disagree — Bobby's `family_member` role may read the medical
//! records his `child` role is denied. The paper surveys the standard
//! resolutions ("give precedence to the role that denies", "…that
//! allows", "some other predefined rule"); all of them are implemented
//! here as [`ConflictStrategy`] variants, selectable per engine.

use serde::{Deserialize, Serialize};

use crate::explain::MatchedRule;
use crate::rule::Effect;

/// How the engine picks a winner among matching rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConflictStrategy {
    /// Any matching Deny rule wins (the paper's "precedence to the role
    /// that denies access"). The safe default.
    DenyOverrides,
    /// Any matching Permit rule wins ("precedence to the role that
    /// allows access").
    PermitOverrides,
    /// The earliest rule in policy order wins (the "predefined rule"
    /// option; makes policies read top-to-bottom like a firewall).
    FirstApplicable,
    /// The rule matched through the shortest hierarchy path wins: a rule
    /// about `child` beats a rule about `family_member` for a subject
    /// directly assigned `child`. Ties break toward more-constrained
    /// rules, then toward Deny, then toward policy order.
    MostSpecific,
}

impl Default for ConflictStrategy {
    /// Defaults to the fail-safe [`ConflictStrategy::DenyOverrides`].
    fn default() -> Self {
        ConflictStrategy::DenyOverrides
    }
}

impl std::fmt::Display for ConflictStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ConflictStrategy::DenyOverrides => "deny-overrides",
            ConflictStrategy::PermitOverrides => "permit-overrides",
            ConflictStrategy::FirstApplicable => "first-applicable",
            ConflictStrategy::MostSpecific => "most-specific",
        })
    }
}

impl ConflictStrategy {
    /// All strategies, for sweeps and tests.
    pub const ALL: [ConflictStrategy; 4] = [
        ConflictStrategy::DenyOverrides,
        ConflictStrategy::PermitOverrides,
        ConflictStrategy::FirstApplicable,
        ConflictStrategy::MostSpecific,
    ];

    /// Picks the winning match among `matches` (which must be in policy
    /// order). Returns `None` when `matches` is empty.
    #[must_use]
    pub fn resolve<'a>(&self, matches: &'a [MatchedRule]) -> Option<&'a MatchedRule> {
        if matches.is_empty() {
            return None;
        }
        match self {
            ConflictStrategy::DenyOverrides => matches
                .iter()
                .find(|m| m.effect == Effect::Deny)
                .or_else(|| matches.first()),
            ConflictStrategy::PermitOverrides => matches
                .iter()
                .find(|m| m.effect == Effect::Permit)
                .or_else(|| matches.first()),
            ConflictStrategy::FirstApplicable => matches.first(),
            ConflictStrategy::MostSpecific => matches.iter().min_by(|a, b| {
                a.total_distance()
                    .cmp(&b.total_distance())
                    // more constraints = more specific = preferred
                    .then_with(|| b.constraint_count.cmp(&a.constraint_count))
                    // deny beats permit on a full tie
                    .then_with(|| {
                        specificity_effect_rank(a.effect).cmp(&specificity_effect_rank(b.effect))
                    })
                    // stable: earlier rule wins
                    .then_with(|| a.position.cmp(&b.position))
            }),
        }
    }
}

fn specificity_effect_rank(effect: Effect) -> u8 {
    match effect {
        Effect::Deny => 0,
        Effect::Permit => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::confidence::Confidence;
    use crate::id::RuleId;

    fn m(
        id: u64,
        position: usize,
        effect: Effect,
        subject_distance: usize,
        object_distance: usize,
        constraint_count: usize,
    ) -> MatchedRule {
        MatchedRule {
            rule: RuleId::from_raw(id),
            effect,
            position,
            subject_confidence: Confidence::FULL,
            subject_distance,
            object_distance,
            constraint_count,
        }
    }

    #[test]
    fn empty_matches_resolve_to_none() {
        for s in ConflictStrategy::ALL {
            assert!(s.resolve(&[]).is_none());
        }
    }

    #[test]
    fn deny_overrides_prefers_deny() {
        let matches = [
            m(0, 0, Effect::Permit, 0, 0, 2),
            m(1, 1, Effect::Deny, 5, 5, 1),
        ];
        let w = ConflictStrategy::DenyOverrides.resolve(&matches).unwrap();
        assert_eq!(w.rule, RuleId::from_raw(1));
    }

    #[test]
    fn deny_overrides_with_only_permits_takes_first() {
        let matches = [
            m(0, 0, Effect::Permit, 0, 0, 1),
            m(1, 1, Effect::Permit, 0, 0, 1),
        ];
        let w = ConflictStrategy::DenyOverrides.resolve(&matches).unwrap();
        assert_eq!(w.rule, RuleId::from_raw(0));
    }

    #[test]
    fn permit_overrides_prefers_permit() {
        let matches = [
            m(0, 0, Effect::Deny, 0, 0, 2),
            m(1, 1, Effect::Permit, 5, 5, 1),
        ];
        let w = ConflictStrategy::PermitOverrides.resolve(&matches).unwrap();
        assert_eq!(w.rule, RuleId::from_raw(1));
    }

    #[test]
    fn first_applicable_respects_policy_order() {
        let matches = [
            m(7, 0, Effect::Deny, 9, 9, 0),
            m(3, 1, Effect::Permit, 0, 0, 9),
        ];
        let w = ConflictStrategy::FirstApplicable.resolve(&matches).unwrap();
        assert_eq!(w.rule, RuleId::from_raw(7));
    }

    #[test]
    fn most_specific_prefers_shorter_distance() {
        // Bobby: rule about `child` (distance 0) vs rule about
        // `family_member` (distance 1).
        let matches = [
            m(0, 0, Effect::Permit, 1, 0, 2), // family_member may read records
            m(1, 1, Effect::Deny, 0, 0, 2),   // child may not
        ];
        let w = ConflictStrategy::MostSpecific.resolve(&matches).unwrap();
        assert_eq!(w.rule, RuleId::from_raw(1));
        assert_eq!(w.effect, Effect::Deny);
    }

    #[test]
    fn most_specific_ties_break_to_more_constraints_then_deny() {
        let matches = [
            m(0, 0, Effect::Permit, 1, 1, 4),
            m(1, 1, Effect::Deny, 1, 1, 2),
        ];
        let w = ConflictStrategy::MostSpecific.resolve(&matches).unwrap();
        assert_eq!(w.rule, RuleId::from_raw(0), "more constraints wins the tie");

        let matches = [
            m(0, 0, Effect::Permit, 1, 1, 2),
            m(1, 1, Effect::Deny, 1, 1, 2),
        ];
        let w = ConflictStrategy::MostSpecific.resolve(&matches).unwrap();
        assert_eq!(w.effect, Effect::Deny, "deny wins a full tie");
    }

    #[test]
    fn default_strategy_is_deny_overrides() {
        assert_eq!(ConflictStrategy::default(), ConflictStrategy::DenyOverrides);
    }

    #[test]
    fn display_names() {
        assert_eq!(ConflictStrategy::MostSpecific.to_string(), "most-specific");
    }
}
