//! Separation of duty (§4.1.2).
//!
//! Two flavours, both generalized from pairs to role *sets* with a
//! cardinality bound (the ANSI-RBAC style `(set, n)` form; the paper's
//! pairwise teller/account-holder example is the `n = 1` two-role case):
//!
//! * **Static** SoD constrains the *authorized* role set: a subject may
//!   never be assigned more than `max_concurrent` roles from the set.
//! * **Dynamic** SoD constrains the *active* role set of a session: the
//!   roles may be authorized together but not activated simultaneously.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::error::{GrbacError, Result};
use crate::id::RoleId;

/// Whether a constraint restricts authorization or activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SodKind {
    /// No subject may be *authorized* for too many of the roles.
    Static,
    /// No session may have too many of the roles *active* at once.
    Dynamic,
}

impl std::fmt::Display for SodKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SodKind::Static => "static",
            SodKind::Dynamic => "dynamic",
        })
    }
}

/// A single separation-of-duty constraint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SodConstraint {
    name: String,
    kind: SodKind,
    roles: BTreeSet<RoleId>,
    max_concurrent: usize,
}

impl SodConstraint {
    /// Creates a constraint limiting a subject (static) or session
    /// (dynamic) to at most `max_concurrent` roles from `roles`.
    ///
    /// # Errors
    ///
    /// [`GrbacError::InvalidSodCardinality`] when `max_concurrent` is zero
    /// or not smaller than the size of the role set (such a constraint
    /// would be vacuous or unsatisfiable).
    pub fn new(
        name: impl Into<String>,
        kind: SodKind,
        roles: impl IntoIterator<Item = RoleId>,
        max_concurrent: usize,
    ) -> Result<Self> {
        let name = name.into();
        let roles: BTreeSet<RoleId> = roles.into_iter().collect();
        if max_concurrent == 0 || max_concurrent >= roles.len() {
            return Err(GrbacError::InvalidSodCardinality {
                constraint: name,
                max: max_concurrent,
                set: roles.len(),
            });
        }
        Ok(Self {
            name,
            kind,
            roles,
            max_concurrent,
        })
    }

    /// The classic mutual-exclusion pair: at most one of two roles.
    ///
    /// # Errors
    ///
    /// [`GrbacError::InvalidSodCardinality`] if `a == b` (a one-role set).
    pub fn mutual_exclusion(
        name: impl Into<String>,
        kind: SodKind,
        a: RoleId,
        b: RoleId,
    ) -> Result<Self> {
        Self::new(name, kind, [a, b], 1)
    }

    /// The constraint's diagnostic name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Static or dynamic.
    #[must_use]
    pub fn kind(&self) -> SodKind {
        self.kind
    }

    /// The constrained role set.
    #[must_use]
    pub fn roles(&self) -> &BTreeSet<RoleId> {
        &self.roles
    }

    /// Maximum number of constrained roles held/active concurrently.
    #[must_use]
    pub fn max_concurrent(&self) -> usize {
        self.max_concurrent
    }

    /// True if `held ∪ {candidate}` would violate this constraint.
    ///
    /// `held` should already be hierarchy-expanded by the caller so that
    /// holding `teller_supervisor` (a specialization of `teller`) counts
    /// as holding `teller`.
    #[must_use]
    pub fn violated_by(&self, held: &BTreeSet<RoleId>, candidate: RoleId) -> bool {
        if !self.roles.contains(&candidate)
            && self.roles.intersection(held).count() <= self.max_concurrent
        {
            // Fast path: candidate not constrained and held set already fine.
            return false;
        }
        let mut hypothetical: BTreeSet<RoleId> = held.intersection(&self.roles).copied().collect();
        if self.roles.contains(&candidate) {
            hypothetical.insert(candidate);
        }
        hypothetical.len() > self.max_concurrent
    }

    /// True if the set itself (no candidate) violates the constraint.
    #[must_use]
    pub fn violated_by_set(&self, held: &BTreeSet<RoleId>) -> bool {
        self.roles.intersection(held).count() > self.max_concurrent
    }
}

/// An ordered collection of SoD constraints with bulk checks.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SodPolicy {
    constraints: Vec<SodConstraint>,
}

impl SodPolicy {
    /// Creates an empty policy.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a constraint.
    pub fn add(&mut self, constraint: SodConstraint) {
        self.constraints.push(constraint);
    }

    /// Iterates over the constraints in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &SodConstraint> {
        self.constraints.iter()
    }

    /// Number of constraints.
    #[must_use]
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// True if no constraints are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Checks that adding `candidate` to an (expanded) held set does not
    /// violate any constraint of the given kind.
    ///
    /// # Errors
    ///
    /// [`GrbacError::SodViolation`] naming the first violated constraint.
    pub fn check(&self, kind: SodKind, held: &BTreeSet<RoleId>, candidate: RoleId) -> Result<()> {
        for c in self.constraints.iter().filter(|c| c.kind == kind) {
            if c.violated_by(held, candidate) {
                return Err(GrbacError::SodViolation {
                    constraint: c.name.clone(),
                    role: candidate,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: u64) -> RoleId {
        RoleId::from_raw(n)
    }

    #[test]
    fn mutual_exclusion_pair() {
        let c = SodConstraint::mutual_exclusion("teller-vs-holder", SodKind::Static, r(0), r(1))
            .unwrap();
        assert_eq!(c.max_concurrent(), 1);
        assert!(!c.violated_by(&BTreeSet::new(), r(0)));
        assert!(
            !c.violated_by(&BTreeSet::from([r(0)]), r(2)),
            "unrelated role ok"
        );
        assert!(c.violated_by(&BTreeSet::from([r(0)]), r(1)));
        assert!(c.violated_by(&BTreeSet::from([r(1)]), r(0)));
    }

    #[test]
    fn degenerate_cardinalities_rejected() {
        assert!(matches!(
            SodConstraint::new("zero", SodKind::Static, [r(0), r(1)], 0),
            Err(GrbacError::InvalidSodCardinality { .. })
        ));
        assert!(SodConstraint::new("vacuous", SodKind::Static, [r(0), r(1)], 2).is_err());
        assert!(SodConstraint::mutual_exclusion("same", SodKind::Static, r(3), r(3)).is_err());
    }

    #[test]
    fn cardinality_constraint() {
        // At most 2 of {auditor, approver, signer}.
        let c = SodConstraint::new("finance", SodKind::Dynamic, [r(0), r(1), r(2)], 2).unwrap();
        assert!(!c.violated_by(&BTreeSet::from([r(0)]), r(1)));
        assert!(c.violated_by(&BTreeSet::from([r(0), r(1)]), r(2)));
        assert!(!c.violated_by(&BTreeSet::from([r(0), r(1)]), r(9)));
    }

    #[test]
    fn violated_by_set_checks_existing_sets() {
        let c = SodConstraint::new("x", SodKind::Static, [r(0), r(1), r(2)], 1).unwrap();
        assert!(!c.violated_by_set(&BTreeSet::from([r(0), r(7)])));
        assert!(c.violated_by_set(&BTreeSet::from([r(0), r(1)])));
    }

    #[test]
    fn policy_filters_by_kind() {
        let mut p = SodPolicy::new();
        p.add(SodConstraint::mutual_exclusion("static", SodKind::Static, r(0), r(1)).unwrap());
        p.add(SodConstraint::mutual_exclusion("dynamic", SodKind::Dynamic, r(2), r(3)).unwrap());
        assert_eq!(p.len(), 2);

        // The static constraint does not block dynamic activation.
        assert!(p
            .check(SodKind::Dynamic, &BTreeSet::from([r(0)]), r(1))
            .is_ok());
        assert!(p
            .check(SodKind::Static, &BTreeSet::from([r(0)]), r(1))
            .is_err());
        assert!(p
            .check(SodKind::Dynamic, &BTreeSet::from([r(2)]), r(3))
            .is_err());
    }

    #[test]
    fn violation_error_names_constraint() {
        let mut p = SodPolicy::new();
        p.add(
            SodConstraint::mutual_exclusion("teller-vs-holder", SodKind::Static, r(0), r(1))
                .unwrap(),
        );
        let err = p
            .check(SodKind::Static, &BTreeSet::from([r(0)]), r(1))
            .unwrap_err();
        match err {
            GrbacError::SodViolation { constraint, role } => {
                assert_eq!(constraint, "teller-vs-holder");
                assert_eq!(role, r(1));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }
}
