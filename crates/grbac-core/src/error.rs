//! Error type shared by every fallible operation in `grbac-core`.

use crate::id::{ObjectId, RoleId, SessionId, SubjectId, TransactionId};
use crate::role::RoleKind;

/// Errors produced by GRBAC catalogs, sessions and the mediation engine.
///
/// Every public fallible function in this crate returns
/// `Result<_, GrbacError>`; the variants carry enough context to render a
/// precise diagnostic without access to the engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
#[allow(missing_docs)] // variant fields are self-describing; variants are documented
pub enum GrbacError {
    /// A role id was used that the catalog has never issued.
    UnknownRole(RoleId),
    /// A role name was looked up that is not declared for the given kind.
    UnknownRoleName { kind: RoleKind, name: String },
    /// A subject id was used that the catalog has never issued.
    UnknownSubject(SubjectId),
    /// An object id was used that the catalog has never issued.
    UnknownObject(ObjectId),
    /// A transaction id was used that the catalog has never issued.
    UnknownTransaction(TransactionId),
    /// A transaction name was looked up that is not declared.
    UnknownTransactionName(String),
    /// A session id was used that is not (or no longer) open.
    UnknownSession(SessionId),
    /// A name was declared twice within the same namespace.
    DuplicateName { kind: &'static str, name: String },
    /// Adding a specialization edge would create a cycle in the hierarchy.
    HierarchyCycle { from: RoleId, to: RoleId },
    /// A specialization edge was attempted between roles of different kinds.
    KindMismatch {
        role: RoleId,
        expected: RoleKind,
        found: RoleKind,
    },
    /// A role was used in a position reserved for a different role kind
    /// (e.g. an environment role in a rule's subject-role slot).
    WrongRoleKind {
        role: RoleId,
        expected: RoleKind,
        found: RoleKind,
    },
    /// An assignment or activation would violate a separation-of-duty
    /// constraint.
    SodViolation { constraint: String, role: RoleId },
    /// A subject tried to activate a role outside its authorized role set.
    RoleNotAuthorized { subject: SubjectId, role: RoleId },
    /// A confidence value outside `[0, 1]` was supplied.
    InvalidConfidence(f64),
    /// A separation-of-duty constraint was declared with an impossible
    /// cardinality (e.g. `max_active = 0` or larger than the role set).
    InvalidSodCardinality {
        constraint: String,
        max: usize,
        set: usize,
    },
    /// No delegation rule authorizes this subject to delegate this role.
    NotAuthorizedToDelegate { delegator: SubjectId, role: RoleId },
    /// The delegator does not themselves possess the role being
    /// delegated.
    DelegatorLacksRole { delegator: SubjectId, role: RoleId },
    /// Re-delegating would exceed the rule's maximum chain depth.
    DelegationDepthExceeded { max_depth: u32 },
    /// A delegation id that was never issued or was already revoked.
    UnknownDelegation(crate::id::DelegationId),
    /// A delegation rule with a zero maximum depth can never be used.
    InvalidDelegationDepth,
}

impl std::fmt::Display for GrbacError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownRole(id) => write!(f, "unknown role {id}"),
            Self::UnknownRoleName { kind, name } => {
                write!(f, "unknown {kind} role name {name:?}")
            }
            Self::UnknownSubject(id) => write!(f, "unknown subject {id}"),
            Self::UnknownObject(id) => write!(f, "unknown object {id}"),
            Self::UnknownTransaction(id) => write!(f, "unknown transaction {id}"),
            Self::UnknownTransactionName(name) => {
                write!(f, "unknown transaction name {name:?}")
            }
            Self::UnknownSession(id) => write!(f, "unknown session {id}"),
            Self::DuplicateName { kind, name } => {
                write!(f, "duplicate {kind} name {name:?}")
            }
            Self::HierarchyCycle { from, to } => write!(
                f,
                "specializing {from} from {to} would create a role hierarchy cycle"
            ),
            Self::KindMismatch {
                role,
                expected,
                found,
            } => write!(
                f,
                "role {role} has kind {found} but the hierarchy edge requires {expected}"
            ),
            Self::WrongRoleKind {
                role,
                expected,
                found,
            } => write!(
                f,
                "role {role} has kind {found} but this position requires a {expected} role"
            ),
            Self::SodViolation { constraint, role } => write!(
                f,
                "separation-of-duty constraint {constraint:?} forbids adding role {role}"
            ),
            Self::RoleNotAuthorized { subject, role } => {
                write!(f, "subject {subject} is not authorized for role {role}")
            }
            Self::InvalidConfidence(v) => {
                write!(f, "confidence {v} is outside the unit interval")
            }
            Self::InvalidSodCardinality {
                constraint,
                max,
                set,
            } => write!(
                f,
                "separation-of-duty constraint {constraint:?} allows {max} of a {set}-role set"
            ),
            Self::NotAuthorizedToDelegate { delegator, role } => write!(
                f,
                "subject {delegator} is not authorized to delegate role {role}"
            ),
            Self::DelegatorLacksRole { delegator, role } => write!(
                f,
                "subject {delegator} does not possess role {role} and so cannot delegate it"
            ),
            Self::DelegationDepthExceeded { max_depth } => write!(
                f,
                "re-delegation would exceed the maximum chain depth of {max_depth}"
            ),
            Self::UnknownDelegation(id) => write!(f, "unknown delegation {id}"),
            Self::InvalidDelegationDepth => {
                write!(f, "delegation rules require a maximum depth of at least 1")
            }
        }
    }
}

impl std::error::Error for GrbacError {}

/// Convenient result alias used across the crate.
pub type Result<T, E = GrbacError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn error_is_send_sync() {
        assert_send_sync::<GrbacError>();
    }

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = GrbacError::UnknownRole(RoleId::from_raw(4));
        assert_eq!(e.to_string(), "unknown role r4");
        let e = GrbacError::DuplicateName {
            kind: "subject role",
            name: "child".into(),
        };
        assert!(e.to_string().contains("child"));
        let e = GrbacError::InvalidConfidence(1.5);
        assert!(e.to_string().contains("1.5"));
    }

    #[test]
    fn implements_std_error() {
        let e: Box<dyn std::error::Error> =
            Box::new(GrbacError::UnknownSubject(SubjectId::from_raw(0)));
        assert!(e.source().is_none());
    }
}
