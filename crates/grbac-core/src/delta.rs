//! Typed policy deltas: the churn log behind incremental index
//! maintenance.
//!
//! Every engine mutation that can change a decision used to bump an
//! opaque generation counter, forcing the next mediation to rebuild the
//! whole [`CompiledIndex`](crate::index::CompiledIndex). Mutations now
//! also record a [`PolicyDelta`] describing *what* changed, kept in a
//! bounded [`DeltaLog`] keyed by generation. When a decide path finds
//! its cached index one-or-more generations stale, it asks the log for
//! the exact deltas spanning the gap and patches only the touched
//! shards (see `CompiledIndex::apply_deltas`), falling back to a full
//! rebuild when the log has been trimmed or the damage is too wide.
//!
//! Deltas name the *invalidated region*, not the new values — the new
//! values are always recomputed from the engine's current state, which
//! makes application idempotent and order-insensitive for everything
//! except rule-position edits (those are replayed in schedule order,
//! carrying the spec extracted by [`Rule`](crate::rule::Rule) at
//! mutation time).

use crate::id::{ObjectId, RoleId, SubjectId};
use crate::role::RoleKind;
use crate::rule::TransactionSpec;

/// The kinds of incremental policy change the index maintainer can
/// apply, in dense-slot order (the `kind` label on
/// `grbac_index_delta_applied_total`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaKind {
    /// A role was declared (the dense role space grew by one slot).
    RoleDeclared,
    /// A specialization edge was inserted into a role hierarchy.
    EdgeAdded,
    /// A rule was appended to the policy.
    RuleAdded,
    /// A rule was removed from the policy.
    RuleRemoved,
    /// A subject's direct role set changed (assign or revoke).
    SubjectAssignment,
    /// An object's direct role set changed (assign or revoke).
    ObjectAssignment,
}

impl DeltaKind {
    /// All kinds, in the order used for dense keyed-counter slots.
    pub const ALL: [DeltaKind; 6] = [
        DeltaKind::RoleDeclared,
        DeltaKind::EdgeAdded,
        DeltaKind::RuleAdded,
        DeltaKind::RuleRemoved,
        DeltaKind::SubjectAssignment,
        DeltaKind::ObjectAssignment,
    ];

    /// Stable snake_case name (the `kind` label on
    /// `grbac_index_delta_applied_total`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DeltaKind::RoleDeclared => "role_declared",
            DeltaKind::EdgeAdded => "edge_added",
            DeltaKind::RuleAdded => "rule_added",
            DeltaKind::RuleRemoved => "rule_removed",
            DeltaKind::SubjectAssignment => "subject_assignment",
            DeltaKind::ObjectAssignment => "object_assignment",
        }
    }

    /// The dense slot this kind occupies in keyed counters.
    #[must_use]
    pub fn slot(self) -> u64 {
        Self::ALL.iter().position(|&k| k == self).unwrap_or(0) as u64
    }

    /// The kind for a dense slot, if in range.
    #[must_use]
    pub fn from_slot(slot: u64) -> Option<DeltaKind> {
        Self::ALL.get(slot as usize).copied()
    }
}

/// One decision-relevant mutation, as recorded at the engine API
/// boundary. Region deltas (roles, edges, assignments) carry only the
/// invalidated identity; rule deltas additionally carry the bucket
/// spec extracted from the rule at mutation time, because the final
/// policy no longer knows where a since-removed rule used to sit.
#[derive(Debug, Clone)]
pub(crate) enum PolicyDelta {
    /// `role` joined the dense role space.
    RoleDeclared {
        /// The newly-declared role.
        role: RoleId,
    },
    /// `specific` gained a generalization in the `kind` hierarchy:
    /// the upward closures of `specific` and everything below it are
    /// stale.
    EdgeAdded {
        /// Which of the three hierarchies gained the edge.
        kind: RoleKind,
        /// The specializing (lower) endpoint.
        specific: RoleId,
    },
    /// A rule was appended at `position` (== policy length before the
    /// push).
    RuleAdded {
        /// Position the rule was appended at.
        position: u32,
        /// The rule's transaction bucket.
        transaction: TransactionSpec,
        /// The rule's direct environment guard roles.
        environment: Vec<RoleId>,
    },
    /// The rule at `position` was removed; later positions shifted
    /// down by one.
    RuleRemoved {
        /// Position the rule occupied when removed.
        position: u32,
        /// The transaction bucket it occupied.
        transaction: TransactionSpec,
    },
    /// `subject`'s direct role set changed; its cached expansion is
    /// stale.
    SubjectAssignment {
        /// The affected subject.
        subject: SubjectId,
    },
    /// `object`'s direct role set changed; its cached expansion is
    /// stale.
    ObjectAssignment {
        /// The affected object.
        object: ObjectId,
    },
}

impl PolicyDelta {
    /// The metrics kind of this delta.
    pub(crate) fn kind(&self) -> DeltaKind {
        match self {
            PolicyDelta::RoleDeclared { .. } => DeltaKind::RoleDeclared,
            PolicyDelta::EdgeAdded { .. } => DeltaKind::EdgeAdded,
            PolicyDelta::RuleAdded { .. } => DeltaKind::RuleAdded,
            PolicyDelta::RuleRemoved { .. } => DeltaKind::RuleRemoved,
            PolicyDelta::SubjectAssignment { .. } => DeltaKind::SubjectAssignment,
            PolicyDelta::ObjectAssignment { .. } => DeltaKind::ObjectAssignment,
        }
    }
}

/// A bounded, generation-keyed window of recent [`PolicyDelta`]s.
///
/// Entry `i` advances generation `base + i` to `base + i + 1`, so an
/// index cached at generation `g` can be patched to the current
/// generation `t` exactly when the log still holds entries
/// `g - base .. t - base`. The window is capped at
/// [`Self::CAPACITY`]; older entries are trimmed and any index older
/// than the trimmed head must rebuild from scratch.
#[derive(Debug, Clone, Default)]
pub(crate) struct DeltaLog {
    /// Generation *before* `entries[0]` applies.
    base: u64,
    entries: Vec<PolicyDelta>,
}

impl DeltaLog {
    /// Maximum retained entries. Bounds both memory and the worst-case
    /// patch cost of a single advance; a cold index (no decide for
    /// more than this many edits) rebuilds instead.
    pub(crate) const CAPACITY: usize = 128;

    /// Records the delta that produced `generation_after`.
    pub(crate) fn record(&mut self, generation_after: u64, delta: PolicyDelta) {
        if self.entries.is_empty() {
            self.base = generation_after.wrapping_sub(1);
        }
        debug_assert_eq!(
            self.base.wrapping_add(self.entries.len() as u64 + 1),
            generation_after,
            "delta log out of step with the generation counter"
        );
        self.entries.push(delta);
        if self.entries.len() > Self::CAPACITY {
            let excess = self.entries.len() - Self::CAPACITY;
            self.entries.drain(..excess);
            self.base = self.base.wrapping_add(excess as u64);
        }
    }

    /// Forgets all history; indexes older than `generation` must now
    /// rebuild from scratch.
    pub(crate) fn reset(&mut self, generation: u64) {
        self.base = generation;
        self.entries.clear();
    }

    /// The deltas advancing generation `from` to generation `to`, if
    /// the window still covers that exact span.
    pub(crate) fn entries_between(&self, from: u64, to: u64) -> Option<&[PolicyDelta]> {
        let tail = self.base.wrapping_add(self.entries.len() as u64);
        if tail != to {
            return None;
        }
        let offset = from.wrapping_sub(self.base);
        if offset > self.entries.len() as u64 {
            return None;
        }
        Some(&self.entries[offset as usize..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn role_declared(raw: u64) -> PolicyDelta {
        PolicyDelta::RoleDeclared {
            role: RoleId::from_raw(raw),
        }
    }

    #[test]
    fn spans_are_exact_and_trimmed() {
        let mut log = DeltaLog::default();
        assert!(log.entries_between(0, 1).is_none());

        log.record(6, role_declared(0));
        log.record(7, role_declared(1));
        assert_eq!(log.entries_between(5, 7).map(<[_]>::len), Some(2));
        assert_eq!(log.entries_between(6, 7).map(<[_]>::len), Some(1));
        assert_eq!(log.entries_between(7, 7).map(<[_]>::len), Some(0));
        assert!(log.entries_between(4, 7).is_none(), "before the window");
        assert!(log.entries_between(5, 8).is_none(), "past the tail");

        for generation in 8..8 + DeltaLog::CAPACITY as u64 {
            log.record(generation, role_declared(generation));
        }
        assert!(
            log.entries_between(5, 7 + DeltaLog::CAPACITY as u64)
                .is_none(),
            "trimmed history must refuse the span"
        );
        assert_eq!(
            log.entries_between(
                7 + DeltaLog::CAPACITY as u64 - 1,
                7 + DeltaLog::CAPACITY as u64
            )
            .map(<[_]>::len),
            Some(1)
        );
    }

    #[test]
    fn reset_refuses_prior_generations() {
        let mut log = DeltaLog::default();
        log.record(1, role_declared(0));
        log.reset(5);
        assert!(log.entries_between(1, 5).is_none());
        log.record(6, role_declared(1));
        assert_eq!(log.entries_between(5, 6).map(<[_]>::len), Some(1));
    }

    #[test]
    fn kind_slots_round_trip() {
        for kind in DeltaKind::ALL {
            assert_eq!(DeltaKind::from_slot(kind.slot()), Some(kind));
        }
        assert!(DeltaKind::from_slot(DeltaKind::ALL.len() as u64).is_none());
    }
}
