//! Environment snapshots: which environment roles are active *right now*.
//!
//! Environment roles are not assigned like subject/object roles — they
//! *activate* when the system state they describe holds (§4.2.2). The
//! engine is deliberately agnostic about how activation is determined: a
//! trusted environment source (see the `grbac-env` crate) evaluates its
//! conditions and hands the engine an [`EnvironmentSnapshot`] per request.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::id::RoleId;

/// The set of environment roles active at the moment of an access request.
///
/// Stores directly-active roles; the engine expands the set through the
/// environment-role hierarchy, so a snapshot containing `monday` also
/// satisfies a rule requiring `weekdays` when `monday` specializes it.
///
/// # Examples
///
/// ```
/// use grbac_core::environment::EnvironmentSnapshot;
/// use grbac_core::id::RoleId;
///
/// let weekdays = RoleId::from_raw(0);
/// let snapshot = EnvironmentSnapshot::new().with_active(weekdays);
/// assert!(snapshot.is_active(weekdays));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnvironmentSnapshot {
    active: BTreeSet<RoleId>,
}

impl EnvironmentSnapshot {
    /// An empty snapshot: no environment role is active.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a snapshot from any collection of active role ids.
    #[must_use]
    pub fn from_active(roles: impl IntoIterator<Item = RoleId>) -> Self {
        Self {
            active: roles.into_iter().collect(),
        }
    }

    /// Returns the snapshot with `role` added (builder style).
    #[must_use]
    pub fn with_active(mut self, role: RoleId) -> Self {
        self.active.insert(role);
        self
    }

    /// Marks a role active. Returns true if newly added.
    pub fn activate(&mut self, role: RoleId) -> bool {
        self.active.insert(role)
    }

    /// Marks a role inactive. Returns true if it was active.
    pub fn deactivate(&mut self, role: RoleId) -> bool {
        self.active.remove(&role)
    }

    /// True if `role` is directly active (no hierarchy expansion).
    #[must_use]
    pub fn is_active(&self, role: RoleId) -> bool {
        self.active.contains(&role)
    }

    /// The directly-active role set.
    #[must_use]
    pub fn active(&self) -> &BTreeSet<RoleId> {
        &self.active
    }

    /// Number of directly-active roles.
    #[must_use]
    pub fn len(&self) -> usize {
        self.active.len()
    }

    /// True if nothing is active.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.active.is_empty()
    }

    /// Merges another snapshot into this one.
    pub fn merge(&mut self, other: &EnvironmentSnapshot) {
        self.active.extend(other.active.iter().copied());
    }
}

impl FromIterator<RoleId> for EnvironmentSnapshot {
    fn from_iter<I: IntoIterator<Item = RoleId>>(iter: I) -> Self {
        Self::from_active(iter)
    }
}

impl Extend<RoleId> for EnvironmentSnapshot {
    fn extend<I: IntoIterator<Item = RoleId>>(&mut self, iter: I) {
        self.active.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: u64) -> RoleId {
        RoleId::from_raw(n)
    }

    #[test]
    fn activate_deactivate() {
        let mut s = EnvironmentSnapshot::new();
        assert!(s.is_empty());
        assert!(s.activate(r(0)));
        assert!(!s.activate(r(0)));
        assert!(s.is_active(r(0)));
        assert_eq!(s.len(), 1);
        assert!(s.deactivate(r(0)));
        assert!(!s.deactivate(r(0)));
        assert!(s.is_empty());
    }

    #[test]
    fn builders_and_collect() {
        let a = EnvironmentSnapshot::from_active([r(0), r(1)]);
        let b: EnvironmentSnapshot = [r(0), r(1)].into_iter().collect();
        let c = EnvironmentSnapshot::new()
            .with_active(r(0))
            .with_active(r(1));
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn merge_unions() {
        let mut a = EnvironmentSnapshot::from_active([r(0)]);
        let b = EnvironmentSnapshot::from_active([r(1)]);
        a.merge(&b);
        assert!(a.is_active(r(0)) && a.is_active(r(1)));
    }

    #[test]
    fn extend_adds() {
        let mut a = EnvironmentSnapshot::new();
        a.extend([r(2), r(3)]);
        assert_eq!(a.len(), 2);
    }
}
