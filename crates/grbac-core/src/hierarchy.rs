//! Role specialization hierarchies (§4.1.2 "Role Hierarchies").
//!
//! A [`RoleHierarchy`] is a directed acyclic graph over [`RoleId`]s where
//! an edge `specific → general` means *specific is-a general*. Possession
//! propagates upward: Figure 2's `Mom` is assigned `Parent`, and because
//! `Parent → Family Member → Home User`, a rule written once against
//! `Home User` covers `Mom` (and everyone else) without repetition.
//!
//! The structure is kind-agnostic; [`crate::role::RoleCatalog`] keeps one
//! hierarchy per [`crate::role::RoleKind`] and enforces that edges never
//! cross kinds.

use std::collections::{BTreeSet, HashMap, VecDeque};

use serde::{Deserialize, Serialize};

use crate::error::{GrbacError, Result};
use crate::id::RoleId;

/// A DAG of specialization edges over roles.
///
/// # Examples
///
/// ```
/// use grbac_core::hierarchy::RoleHierarchy;
/// use grbac_core::id::RoleId;
///
/// # fn main() -> Result<(), grbac_core::GrbacError> {
/// let (child, family) = (RoleId::from_raw(0), RoleId::from_raw(1));
/// let mut h = RoleHierarchy::new();
/// h.add_role(child);
/// h.add_role(family);
/// h.add_specialization(child, family)?;
/// assert!(h.is_specialization_of(child, family));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RoleHierarchy {
    /// `generals[r]` = direct generalizations (parents) of `r`.
    #[serde(with = "crate::serde_pairs::hash")]
    generals: HashMap<RoleId, BTreeSet<RoleId>>,
    /// `specifics[r]` = direct specializations (children) of `r`.
    #[serde(with = "crate::serde_pairs::hash")]
    specifics: HashMap<RoleId, BTreeSet<RoleId>>,
}

impl RoleHierarchy {
    /// Creates an empty hierarchy.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a role with no edges. Idempotent.
    pub fn add_role(&mut self, id: RoleId) {
        self.generals.entry(id).or_default();
        self.specifics.entry(id).or_default();
    }

    /// True if the role has been registered.
    #[must_use]
    pub fn contains(&self, id: RoleId) -> bool {
        self.generals.contains_key(&id)
    }

    /// Number of registered roles.
    #[must_use]
    pub fn len(&self) -> usize {
        self.generals.len()
    }

    /// True if no roles are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.generals.is_empty()
    }

    /// Number of specialization edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.generals.values().map(BTreeSet::len).sum()
    }

    /// Adds an edge meaning `specific` *is-a* `general`.
    ///
    /// Both endpoints are registered on demand. Self-edges and edges that
    /// would create a cycle are rejected; duplicate edges are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`GrbacError::HierarchyCycle`] if `general` already
    /// (transitively) specializes `specific`, or if `specific == general`.
    pub fn add_specialization(&mut self, specific: RoleId, general: RoleId) -> Result<()> {
        if specific == general || self.is_specialization_of(general, specific) {
            return Err(GrbacError::HierarchyCycle {
                from: specific,
                to: general,
            });
        }
        self.add_role(specific);
        self.add_role(general);
        self.generals
            .get_mut(&specific)
            .expect("just added")
            .insert(general);
        self.specifics
            .get_mut(&general)
            .expect("just added")
            .insert(specific);
        Ok(())
    }

    /// Direct generalizations (parents) of a role.
    #[must_use]
    pub fn direct_generalizations(&self, id: RoleId) -> BTreeSet<RoleId> {
        self.generals.get(&id).cloned().unwrap_or_default()
    }

    /// Direct specializations (children) of a role.
    #[must_use]
    pub fn direct_specializations(&self, id: RoleId) -> BTreeSet<RoleId> {
        self.specifics.get(&id).cloned().unwrap_or_default()
    }

    /// Every role that `id` transitively specializes, excluding `id`.
    #[must_use]
    pub fn ancestors(&self, id: RoleId) -> BTreeSet<RoleId> {
        let mut out = self.closure(id);
        out.remove(&id);
        out
    }

    /// Every role that transitively specializes `id`, excluding `id`.
    #[must_use]
    pub fn descendants(&self, id: RoleId) -> BTreeSet<RoleId> {
        let mut out = BTreeSet::new();
        let mut queue: VecDeque<RoleId> = self.direct_specializations(id).into_iter().collect();
        while let Some(r) = queue.pop_front() {
            if out.insert(r) {
                queue.extend(self.direct_specializations(r));
            }
        }
        out
    }

    /// The roles whose *upward closures* change when `specific` gains
    /// a generalization edge: `specific` itself plus every transitive
    /// specialization below it. This is the frontier an incremental
    /// closure delta must recompute (the `EdgeAdded` policy
    /// delta); everything outside
    /// it keeps its old closure row verbatim. Edges are never removed,
    /// so evaluating the region against the *post-edit* hierarchy is
    /// always a (safe) superset of the region at edit time.
    #[must_use]
    pub fn closure_dirty_region(&self, specific: RoleId) -> BTreeSet<RoleId> {
        let mut region = self.descendants(specific);
        region.insert(specific);
        region
    }

    /// The upward closure: `id` plus all its ancestors.
    ///
    /// This is the set of roles *possessed* by holding `id`. Unregistered
    /// ids yield a singleton set, so callers can use closures uniformly.
    #[must_use]
    pub fn closure(&self, id: RoleId) -> BTreeSet<RoleId> {
        let mut out = BTreeSet::new();
        let mut queue = VecDeque::from([id]);
        while let Some(r) = queue.pop_front() {
            if out.insert(r) {
                if let Some(parents) = self.generals.get(&r) {
                    queue.extend(parents.iter().copied());
                }
            }
        }
        out
    }

    /// True if `specific` equals `general` or transitively specializes it.
    #[must_use]
    pub fn is_specialization_of(&self, specific: RoleId, general: RoleId) -> bool {
        if specific == general {
            return true;
        }
        // BFS upward from `specific`.
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::from([specific]);
        while let Some(r) = queue.pop_front() {
            if !seen.insert(r) {
                continue;
            }
            if let Some(parents) = self.generals.get(&r) {
                if parents.contains(&general) {
                    return true;
                }
                queue.extend(parents.iter().copied());
            }
        }
        false
    }

    /// Length of the shortest upward path from `specific` to `general`
    /// (`Some(0)` when equal, `None` when unrelated).
    ///
    /// Used by the *most-specific* conflict-resolution strategy: a rule
    /// matched through a shorter specialization path is considered more
    /// specific than one matched through a longer path.
    #[must_use]
    pub fn distance_up(&self, specific: RoleId, general: RoleId) -> Option<usize> {
        if specific == general {
            return Some(0);
        }
        let mut seen = BTreeSet::from([specific]);
        let mut frontier = VecDeque::from([(specific, 0usize)]);
        while let Some((r, d)) = frontier.pop_front() {
            if let Some(parents) = self.generals.get(&r) {
                for &p in parents {
                    if p == general {
                        return Some(d + 1);
                    }
                    if seen.insert(p) {
                        frontier.push_back((p, d + 1));
                    }
                }
            }
        }
        None
    }

    /// Roles with no generalizations (the most general roles).
    #[must_use]
    pub fn maximal_roles(&self) -> BTreeSet<RoleId> {
        self.generals
            .iter()
            .filter(|(_, parents)| parents.is_empty())
            .map(|(&r, _)| r)
            .collect()
    }

    /// Roles with no specializations (the most specific roles).
    #[must_use]
    pub fn minimal_roles(&self) -> BTreeSet<RoleId> {
        self.specifics
            .iter()
            .filter(|(_, children)| children.is_empty())
            .map(|(&r, _)| r)
            .collect()
    }

    /// Maximum edge length of any upward chain starting at `id`.
    #[must_use]
    pub fn depth(&self, id: RoleId) -> usize {
        self.direct_generalizations(id)
            .iter()
            .map(|&p| 1 + self.depth(p))
            .max()
            .unwrap_or(0)
    }

    /// True if `a` and `b` have a common descendant — i.e. some role whose
    /// possession implies possessing both. Used by policy conflict
    /// analysis: two rules keyed on `a` and `b` can fire for the same
    /// request only when such a role (or an entity assigned both) exists.
    #[must_use]
    pub fn have_common_descendant(&self, a: RoleId, b: RoleId) -> bool {
        if self.is_specialization_of(a, b) || self.is_specialization_of(b, a) {
            return true;
        }
        let mut below_a = self.descendants(a);
        below_a.insert(a);
        let mut below_b = self.descendants(b);
        below_b.insert(b);
        below_a.intersection(&below_b).next().is_some()
    }

    /// Iterates over all registered roles in ascending id order.
    pub fn roles(&self) -> impl Iterator<Item = RoleId> + '_ {
        let mut ids: Vec<RoleId> = self.generals.keys().copied().collect();
        ids.sort_unstable();
        ids.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: u64) -> RoleId {
        RoleId::from_raw(n)
    }

    /// Builds Figure 2's subject role hierarchy (roles only; user
    /// assignment lives in the engine): specific → general edges.
    fn figure2() -> (RoleHierarchy, [RoleId; 6]) {
        let home_user = r(0);
        let family = r(1);
        let parent = r(2);
        let child = r(3);
        let guest = r(4);
        let service = r(5);
        let mut h = RoleHierarchy::new();
        h.add_specialization(family, home_user).unwrap();
        h.add_specialization(parent, family).unwrap();
        h.add_specialization(child, family).unwrap();
        h.add_specialization(guest, home_user).unwrap();
        h.add_specialization(service, guest).unwrap();
        (h, [home_user, family, parent, child, guest, service])
    }

    #[test]
    fn empty_hierarchy() {
        let h = RoleHierarchy::new();
        assert!(h.is_empty());
        assert_eq!(h.len(), 0);
        assert_eq!(h.edge_count(), 0);
        assert_eq!(h.closure(r(7)), BTreeSet::from([r(7)]));
    }

    #[test]
    fn figure2_relations() {
        let (h, [home_user, family, parent, child, guest, service]) = figure2();
        assert!(h.is_specialization_of(parent, home_user));
        assert!(h.is_specialization_of(child, family));
        assert!(h.is_specialization_of(service, home_user));
        assert!(!h.is_specialization_of(child, guest));
        assert!(!h.is_specialization_of(family, parent));
        assert_eq!(h.closure(child), BTreeSet::from([child, family, home_user]));
        assert_eq!(h.ancestors(service), BTreeSet::from([guest, home_user]));
        assert_eq!(
            h.descendants(home_user),
            BTreeSet::from([family, parent, child, guest, service])
        );
        assert_eq!(h.maximal_roles(), BTreeSet::from([home_user]));
        assert_eq!(h.minimal_roles(), BTreeSet::from([parent, child, service]));
    }

    #[test]
    fn self_edge_rejected() {
        let mut h = RoleHierarchy::new();
        assert!(matches!(
            h.add_specialization(r(1), r(1)),
            Err(GrbacError::HierarchyCycle { .. })
        ));
    }

    #[test]
    fn cycle_rejected() {
        let mut h = RoleHierarchy::new();
        h.add_specialization(r(1), r(2)).unwrap();
        h.add_specialization(r(2), r(3)).unwrap();
        assert!(matches!(
            h.add_specialization(r(3), r(1)),
            Err(GrbacError::HierarchyCycle { .. })
        ));
    }

    #[test]
    fn duplicate_edge_is_idempotent() {
        let mut h = RoleHierarchy::new();
        h.add_specialization(r(1), r(2)).unwrap();
        h.add_specialization(r(1), r(2)).unwrap();
        assert_eq!(h.edge_count(), 1);
    }

    #[test]
    fn multiple_inheritance_supported() {
        // A DAG, not a tree: `nurse_parent` is both a `parent` and a
        // `care_specialist`.
        let (parent, care, nurse) = (r(0), r(1), r(2));
        let mut h = RoleHierarchy::new();
        h.add_specialization(nurse, parent).unwrap();
        h.add_specialization(nurse, care).unwrap();
        assert_eq!(h.closure(nurse), BTreeSet::from([nurse, parent, care]));
    }

    #[test]
    fn distance_up_shortest_path() {
        let (h, [home_user, family, _parent, child, _guest, service]) = figure2();
        assert_eq!(h.distance_up(child, child), Some(0));
        assert_eq!(h.distance_up(child, family), Some(1));
        assert_eq!(h.distance_up(child, home_user), Some(2));
        assert_eq!(h.distance_up(service, home_user), Some(2));
        assert_eq!(h.distance_up(home_user, child), None);
        assert_eq!(h.distance_up(child, service), None);
    }

    #[test]
    fn distance_prefers_shortest_of_multiple_paths() {
        // diamond: d → b → a, d → c → a, and a shortcut d → a.
        let (a, b, c, d) = (r(0), r(1), r(2), r(3));
        let mut h = RoleHierarchy::new();
        h.add_specialization(b, a).unwrap();
        h.add_specialization(c, a).unwrap();
        h.add_specialization(d, b).unwrap();
        h.add_specialization(d, c).unwrap();
        h.add_specialization(d, a).unwrap();
        assert_eq!(h.distance_up(d, a), Some(1));
    }

    #[test]
    fn depth_measures_longest_chain() {
        let (h, [home_user, _family, _parent, child, _guest, service]) = figure2();
        assert_eq!(h.depth(home_user), 0);
        assert_eq!(h.depth(child), 2);
        assert_eq!(h.depth(service), 2);
    }

    #[test]
    fn common_descendants() {
        let (h, [home_user, family, parent, child, guest, service]) = figure2();
        // comparable pairs have a common descendant trivially
        assert!(h.have_common_descendant(child, family));
        assert!(h.have_common_descendant(home_user, service));
        // siblings with no shared children do not
        assert!(!h.have_common_descendant(parent, child));
        assert!(!h.have_common_descendant(family, guest));
        // add a role that is both a child and a service agent
        let mut h2 = h.clone();
        let robot = r(9);
        h2.add_specialization(robot, child).unwrap();
        h2.add_specialization(robot, service).unwrap();
        assert!(h2.have_common_descendant(family, guest));
    }

    #[test]
    fn roles_iterates_sorted() {
        let (h, _) = figure2();
        let ids: Vec<RoleId> = h.roles().collect();
        assert_eq!(ids, (0..6).map(r).collect::<Vec<_>>());
    }
}
