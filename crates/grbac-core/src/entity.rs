//! Subjects, objects and transactions — the non-role entities of Figure 1.
//!
//! * A **subject** is a user of the system.
//! * An **object** is any protected resource.
//! * A **transaction** is a named series of one or more accesses to one or
//!   more objects (Figure 1); policy rules authorize transactions, never
//!   raw operations.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::{GrbacError, Result};
use crate::id::{IdAllocator, ObjectId, SubjectId, TransactionId};

/// A user of the system.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Subject {
    id: SubjectId,
    name: String,
}

impl Subject {
    /// The subject's identifier.
    #[must_use]
    pub fn id(&self) -> SubjectId {
        self.id
    }

    /// The subject's unique name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// A protected resource.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Object {
    id: ObjectId,
    name: String,
}

impl Object {
    /// The object's identifier.
    #[must_use]
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// The object's unique name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// A named series of one or more accesses to one or more objects.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transaction {
    id: TransactionId,
    name: String,
}

impl Transaction {
    /// The transaction's identifier.
    #[must_use]
    pub fn id(&self) -> TransactionId {
        self.id
    }

    /// The transaction's unique name (e.g. `"use"`, `"view_stream"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Catalog of declared subjects, objects and transactions.
///
/// Names are unique per entity class; ids are dense and allocated per
/// class so the catalogs stay independent.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EntityCatalog {
    #[serde(with = "crate::serde_pairs::hash")]
    subjects: HashMap<SubjectId, Subject>,
    subjects_by_name: HashMap<String, SubjectId>,
    #[serde(with = "crate::serde_pairs::hash")]
    objects: HashMap<ObjectId, Object>,
    objects_by_name: HashMap<String, ObjectId>,
    #[serde(with = "crate::serde_pairs::hash")]
    transactions: HashMap<TransactionId, Transaction>,
    transactions_by_name: HashMap<String, TransactionId>,
    subject_alloc: IdAllocator,
    object_alloc: IdAllocator,
    transaction_alloc: IdAllocator,
}

impl EntityCatalog {
    /// Creates an empty catalog.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a new subject.
    ///
    /// # Errors
    ///
    /// [`GrbacError::DuplicateName`] if the name is taken.
    pub fn declare_subject(&mut self, name: impl Into<String>) -> Result<SubjectId> {
        let name = name.into();
        if self.subjects_by_name.contains_key(&name) {
            return Err(GrbacError::DuplicateName {
                kind: "subject",
                name,
            });
        }
        let id = SubjectId::from_raw(self.subject_alloc.next());
        self.subjects_by_name.insert(name.clone(), id);
        self.subjects.insert(id, Subject { id, name });
        Ok(id)
    }

    /// Declares a new object.
    ///
    /// # Errors
    ///
    /// [`GrbacError::DuplicateName`] if the name is taken.
    pub fn declare_object(&mut self, name: impl Into<String>) -> Result<ObjectId> {
        let name = name.into();
        if self.objects_by_name.contains_key(&name) {
            return Err(GrbacError::DuplicateName {
                kind: "object",
                name,
            });
        }
        let id = ObjectId::from_raw(self.object_alloc.next());
        self.objects_by_name.insert(name.clone(), id);
        self.objects.insert(id, Object { id, name });
        Ok(id)
    }

    /// Declares a new transaction.
    ///
    /// # Errors
    ///
    /// [`GrbacError::DuplicateName`] if the name is taken.
    pub fn declare_transaction(&mut self, name: impl Into<String>) -> Result<TransactionId> {
        let name = name.into();
        if self.transactions_by_name.contains_key(&name) {
            return Err(GrbacError::DuplicateName {
                kind: "transaction",
                name,
            });
        }
        let id = TransactionId::from_raw(self.transaction_alloc.next());
        self.transactions_by_name.insert(name.clone(), id);
        self.transactions.insert(id, Transaction { id, name });
        Ok(id)
    }

    /// Looks up a subject by id.
    ///
    /// # Errors
    ///
    /// [`GrbacError::UnknownSubject`] for unknown ids.
    pub fn subject(&self, id: SubjectId) -> Result<&Subject> {
        self.subjects.get(&id).ok_or(GrbacError::UnknownSubject(id))
    }

    /// Looks up an object by id.
    ///
    /// # Errors
    ///
    /// [`GrbacError::UnknownObject`] for unknown ids.
    pub fn object(&self, id: ObjectId) -> Result<&Object> {
        self.objects.get(&id).ok_or(GrbacError::UnknownObject(id))
    }

    /// Looks up a transaction by id.
    ///
    /// # Errors
    ///
    /// [`GrbacError::UnknownTransaction`] for unknown ids.
    pub fn transaction(&self, id: TransactionId) -> Result<&Transaction> {
        self.transactions
            .get(&id)
            .ok_or(GrbacError::UnknownTransaction(id))
    }

    /// Finds a subject id by name.
    ///
    /// # Errors
    ///
    /// [`GrbacError::DuplicateName`] is never returned here;
    /// [`GrbacError::UnknownSubject`] is signalled via a sentinel-free
    /// [`GrbacError::UnknownRoleName`]-style error: the name variant.
    pub fn find_subject(&self, name: &str) -> Result<SubjectId> {
        self.subjects_by_name
            .get(name)
            .copied()
            .ok_or_else(|| GrbacError::UnknownTransactionName(format!("subject {name}")))
    }

    /// Finds an object id by name.
    ///
    /// # Errors
    ///
    /// An error naming the missing object.
    pub fn find_object(&self, name: &str) -> Result<ObjectId> {
        self.objects_by_name
            .get(name)
            .copied()
            .ok_or_else(|| GrbacError::UnknownTransactionName(format!("object {name}")))
    }

    /// Finds a transaction id by name.
    ///
    /// # Errors
    ///
    /// [`GrbacError::UnknownTransactionName`] if not declared.
    pub fn find_transaction(&self, name: &str) -> Result<TransactionId> {
        self.transactions_by_name
            .get(name)
            .copied()
            .ok_or_else(|| GrbacError::UnknownTransactionName(name.to_owned()))
    }

    /// Number of declared subjects.
    #[must_use]
    pub fn subject_count(&self) -> usize {
        self.subjects.len()
    }

    /// Number of declared objects.
    #[must_use]
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Number of declared transactions.
    #[must_use]
    pub fn transaction_count(&self) -> usize {
        self.transactions.len()
    }

    /// Iterates over all subjects in unspecified order.
    pub fn subjects(&self) -> impl Iterator<Item = &Subject> {
        self.subjects.values()
    }

    /// Iterates over all objects in unspecified order.
    pub fn objects(&self) -> impl Iterator<Item = &Object> {
        self.objects.values()
    }

    /// Iterates over all transactions in unspecified order.
    pub fn transactions(&self) -> impl Iterator<Item = &Transaction> {
        self.transactions.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_and_lookup() {
        let mut c = EntityCatalog::new();
        let alice = c.declare_subject("alice").unwrap();
        let tv = c.declare_object("living_room_tv").unwrap();
        let use_t = c.declare_transaction("use").unwrap();

        assert_eq!(c.subject(alice).unwrap().name(), "alice");
        assert_eq!(c.object(tv).unwrap().name(), "living_room_tv");
        assert_eq!(c.transaction(use_t).unwrap().name(), "use");
        assert_eq!(c.find_subject("alice").unwrap(), alice);
        assert_eq!(c.find_object("living_room_tv").unwrap(), tv);
        assert_eq!(c.find_transaction("use").unwrap(), use_t);
    }

    #[test]
    fn duplicate_names_rejected_per_class() {
        let mut c = EntityCatalog::new();
        c.declare_subject("alice").unwrap();
        assert!(c.declare_subject("alice").is_err());
        // but the same string is fine in another class
        assert!(c.declare_object("alice").is_ok());
        assert!(c.declare_transaction("alice").is_ok());
    }

    #[test]
    fn unknown_lookups_fail() {
        let c = EntityCatalog::new();
        assert!(c.subject(SubjectId::from_raw(0)).is_err());
        assert!(c.object(ObjectId::from_raw(0)).is_err());
        assert!(c.transaction(TransactionId::from_raw(0)).is_err());
        assert!(c.find_subject("nobody").is_err());
        assert!(c.find_object("nothing").is_err());
        assert!(c.find_transaction("noop").is_err());
    }

    #[test]
    fn counts_and_iterators() {
        let mut c = EntityCatalog::new();
        c.declare_subject("a").unwrap();
        c.declare_subject("b").unwrap();
        c.declare_object("x").unwrap();
        c.declare_transaction("t1").unwrap();
        c.declare_transaction("t2").unwrap();
        c.declare_transaction("t3").unwrap();
        assert_eq!(c.subject_count(), 2);
        assert_eq!(c.object_count(), 1);
        assert_eq!(c.transaction_count(), 3);
        assert_eq!(c.subjects().count(), 2);
        assert_eq!(c.objects().count(), 1);
        assert_eq!(c.transactions().count(), 3);
    }

    #[test]
    fn ids_are_dense_per_class() {
        let mut c = EntityCatalog::new();
        assert_eq!(c.declare_subject("a").unwrap().as_raw(), 0);
        assert_eq!(c.declare_subject("b").unwrap().as_raw(), 1);
        assert_eq!(c.declare_object("x").unwrap().as_raw(), 0);
    }
}
