//! Sessions and role activation (§4.1.2 "Role Activation").
//!
//! A session is a subject's activation context: the subject declares
//! which of its authorized roles are *active*, and only active roles are
//! used to execute transactions. Activation is the enforcement point for
//! dynamic separation of duty, and the paper's "active roles take
//! precedence over inactive roles" resolution hinges on it.
//!
//! [`SessionManager`] stores raw sessions; the authorization and SoD
//! checks are orchestrated by [`crate::engine::Grbac`], which owns the
//! role catalog and assignment tables the checks need.

use std::collections::{BTreeSet, HashMap};

use serde::{Deserialize, Serialize};

use crate::error::{GrbacError, Result};
use crate::id::{IdAllocator, RoleId, SessionId, SubjectId};

/// A subject's activation context.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Session {
    id: SessionId,
    subject: SubjectId,
    active: BTreeSet<RoleId>,
}

impl Session {
    /// The session's identifier.
    #[must_use]
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// The subject this session belongs to.
    #[must_use]
    pub fn subject(&self) -> SubjectId {
        self.subject
    }

    /// The directly-activated role set (no hierarchy expansion).
    #[must_use]
    pub fn active_roles(&self) -> &BTreeSet<RoleId> {
        &self.active
    }

    /// True if `role` is directly active in this session.
    #[must_use]
    pub fn is_active(&self, role: RoleId) -> bool {
        self.active.contains(&role)
    }

    pub(crate) fn activate(&mut self, role: RoleId) -> bool {
        self.active.insert(role)
    }

    pub(crate) fn deactivate(&mut self, role: RoleId) -> bool {
        self.active.remove(&role)
    }
}

/// Open sessions, keyed by [`SessionId`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SessionManager {
    #[serde(with = "crate::serde_pairs::hash")]
    sessions: HashMap<SessionId, Session>,
    alloc: IdAllocator,
}

impl SessionManager {
    /// Creates an empty manager.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a session for `subject` with an empty active role set.
    pub fn open(&mut self, subject: SubjectId) -> SessionId {
        let id = SessionId::from_raw(self.alloc.next());
        self.sessions.insert(
            id,
            Session {
                id,
                subject,
                active: BTreeSet::new(),
            },
        );
        id
    }

    /// Closes a session, returning it if it was open.
    pub fn close(&mut self, id: SessionId) -> Option<Session> {
        self.sessions.remove(&id)
    }

    /// Looks up an open session.
    ///
    /// # Errors
    ///
    /// [`GrbacError::UnknownSession`] if the session is not open.
    pub fn session(&self, id: SessionId) -> Result<&Session> {
        self.sessions.get(&id).ok_or(GrbacError::UnknownSession(id))
    }

    /// Mutable access for the engine's checked activation path.
    pub(crate) fn session_mut(&mut self, id: SessionId) -> Result<&mut Session> {
        self.sessions
            .get_mut(&id)
            .ok_or(GrbacError::UnknownSession(id))
    }

    /// Number of open sessions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// True if no sessions are open.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Iterates over open sessions in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &Session> {
        self.sessions.values()
    }

    /// All open sessions belonging to `subject`.
    pub fn sessions_of(&self, subject: SubjectId) -> impl Iterator<Item = &Session> {
        self.sessions.values().filter(move |s| s.subject == subject)
    }

    /// Mutable access to a subject's sessions (engine-internal: used to
    /// drop activations when authorization is revoked).
    pub(crate) fn sessions_of_mut(
        &mut self,
        subject: SubjectId,
    ) -> impl Iterator<Item = &mut Session> {
        self.sessions
            .values_mut()
            .filter(move |s| s.subject == subject)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(n: u64) -> SubjectId {
        SubjectId::from_raw(n)
    }
    fn r(n: u64) -> RoleId {
        RoleId::from_raw(n)
    }

    #[test]
    fn open_query_close() {
        let mut m = SessionManager::new();
        let id = m.open(s(0));
        assert_eq!(m.session(id).unwrap().subject(), s(0));
        assert!(m.session(id).unwrap().active_roles().is_empty());
        assert_eq!(m.len(), 1);
        let closed = m.close(id).unwrap();
        assert_eq!(closed.id(), id);
        assert!(m.is_empty());
        assert!(matches!(m.session(id), Err(GrbacError::UnknownSession(_))));
    }

    #[test]
    fn activation_bookkeeping() {
        let mut m = SessionManager::new();
        let id = m.open(s(0));
        let sess = m.session_mut(id).unwrap();
        assert!(sess.activate(r(1)));
        assert!(!sess.activate(r(1)), "double activation is a no-op");
        assert!(sess.is_active(r(1)));
        assert!(sess.deactivate(r(1)));
        assert!(!sess.deactivate(r(1)));
        assert!(!sess.is_active(r(1)));
    }

    #[test]
    fn multiple_sessions_per_subject() {
        let mut m = SessionManager::new();
        let a = m.open(s(0));
        let b = m.open(s(0));
        let _c = m.open(s(1));
        assert_ne!(a, b);
        assert_eq!(m.sessions_of(s(0)).count(), 2);
        assert_eq!(m.sessions_of(s(1)).count(), 1);
        assert_eq!(m.iter().count(), 3);
    }

    #[test]
    fn sessions_are_isolated() {
        // The teller/account-holder example: the same subject can use the
        // roles in *different* sessions without conflict.
        let mut m = SessionManager::new();
        let morning = m.open(s(0));
        let evening = m.open(s(0));
        m.session_mut(morning).unwrap().activate(r(0));
        m.session_mut(evening).unwrap().activate(r(1));
        assert!(m.session(morning).unwrap().is_active(r(0)));
        assert!(!m.session(morning).unwrap().is_active(r(1)));
        assert!(m.session(evening).unwrap().is_active(r(1)));
    }
}
