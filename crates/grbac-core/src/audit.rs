//! Audit log: a bounded record of mediation outcomes.
//!
//! Security-sensitive homes need an account of who was granted what and
//! when (§3's "data theft" concern cuts both ways — the household also
//! wants to review access). The log is a fixed-capacity ring buffer so a
//! chatty sensor network cannot exhaust memory.
//!
//! Review tooling filters the log with [`AuditFilter`] (shared with the
//! richer [`provenance`](crate::provenance) forensics engine) and
//! exports it as JSON lines via [`AuditLog::write_jsonl`].

use std::collections::VecDeque;
use std::io::{self, Write};

use serde::{Deserialize, Serialize};

use crate::degraded::DegradedReason;
use crate::id::{DecisionId, ObjectId, RuleId, SubjectId, TransactionId};
use crate::rule::Effect;

/// One mediated request.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AuditRecord {
    /// Monotonic sequence number (never reused, survives eviction).
    pub seq: u64,
    /// The correlation id minted for the decision
    /// ([`DecisionId::UNASSIGNED`] for rows recorded outside the
    /// minting path or loaded from logs older than the id scheme).
    #[serde(default)]
    pub decision_id: DecisionId,
    /// The requesting subject, when identified.
    pub subject: Option<SubjectId>,
    /// The requested transaction.
    pub transaction: TransactionId,
    /// The target object.
    pub object: ObjectId,
    /// The outcome.
    pub effect: Effect,
    /// The rule that carried the decision, if any.
    pub winning_rule: Option<RuleId>,
    /// Caller-supplied timestamp (virtual seconds in the simulations);
    /// `None` for untimed requests.
    pub timestamp: Option<u64>,
    /// Why the decision ran degraded — which staleness posture applied
    /// and why environment roles were absent (or present despite a
    /// failed provider). `None` for fully-fresh decisions, and
    /// (via `#[serde(default)]`) for records serialized before the
    /// field existed.
    #[serde(default)]
    pub degraded: Option<DegradedReason>,
}

/// Equality ignores [`AuditRecord::decision_id`]: the correlation id is
/// per-engine metadata (its epoch differs across engine lifetimes), so
/// two engines mediating the same requests still produce equal records.
/// The differential suites rely on this when comparing sequential
/// against batched audit trails.
impl PartialEq for AuditRecord {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
            && self.subject == other.subject
            && self.transaction == other.transaction
            && self.object == other.object
            && self.effect == other.effect
            && self.winning_rule == other.winning_rule
            && self.timestamp == other.timestamp
            && self.degraded == other.degraded
    }
}

/// A conjunctive filter over audit (and provenance) records: every set
/// field must match for a record to pass. The default filter matches
/// everything.
///
/// The same filter drives [`AuditLog::iter_filtered`] and the forensic
/// queries in [`provenance`](crate::provenance), so "the 3am denies for
/// bobby" means the same thing against either store.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AuditFilter {
    /// Match only this requesting subject (records with no identified
    /// subject never match a subject filter).
    pub subject: Option<SubjectId>,
    /// Match only this target object.
    pub object: Option<ObjectId>,
    /// Match only this transaction.
    pub transaction: Option<TransactionId>,
    /// Match only this outcome.
    pub effect: Option<Effect>,
    /// Match only degraded decisions.
    pub degraded_only: bool,
    /// Match only degraded decisions of this kind (see
    /// [`DegradedReason::kind`]); implies `degraded_only`.
    pub degraded_kind: Option<String>,
    /// Match only records stamped at or after this virtual second
    /// (unstamped records never match a time bound).
    pub since: Option<u64>,
    /// Match only records stamped at or before this virtual second.
    pub until: Option<u64>,
}

impl AuditFilter {
    /// A filter matching every record.
    #[must_use]
    pub fn any() -> Self {
        Self::default()
    }

    /// Whether a record with these fields passes the filter. Exposed as
    /// a by-parts check so stores with different record types (the
    /// audit log, the provenance flight recorder) share one matching
    /// semantics.
    #[must_use]
    pub fn matches_parts(
        &self,
        subject: Option<SubjectId>,
        transaction: TransactionId,
        object: ObjectId,
        effect: Effect,
        timestamp: Option<u64>,
        degraded: Option<&DegradedReason>,
    ) -> bool {
        if let Some(want) = self.subject {
            if subject != Some(want) {
                return false;
            }
        }
        if let Some(want) = self.object {
            if object != want {
                return false;
            }
        }
        if let Some(want) = self.transaction {
            if transaction != want {
                return false;
            }
        }
        if let Some(want) = self.effect {
            if effect != want {
                return false;
            }
        }
        if (self.degraded_only || self.degraded_kind.is_some()) && degraded.is_none() {
            return false;
        }
        if let (Some(want), Some(reason)) = (self.degraded_kind.as_deref(), degraded) {
            if reason.kind() != want {
                return false;
            }
        }
        if let Some(since) = self.since {
            if timestamp.is_none_or(|ts| ts < since) {
                return false;
            }
        }
        if let Some(until) = self.until {
            if timestamp.is_none_or(|ts| ts > until) {
                return false;
            }
        }
        true
    }

    /// Whether an audit record passes the filter.
    #[must_use]
    pub fn matches(&self, record: &AuditRecord) -> bool {
        self.matches_parts(
            record.subject,
            record.transaction,
            record.object,
            record.effect,
            record.timestamp,
            record.degraded.as_ref(),
        )
    }
}

/// Bounded, append-only log of [`AuditRecord`]s.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AuditLog {
    records: VecDeque<AuditRecord>,
    capacity: usize,
    next_seq: u64,
    permits: u64,
    denies: u64,
    /// Records dropped by the ring buffer (defaults to 0 when loading
    /// logs serialized before the counter existed).
    #[serde(default)]
    evictions: u64,
}

impl AuditLog {
    /// Default retention when none is specified.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// Creates a log retaining at most `capacity` records (the counters
    /// keep counting after eviction). A zero capacity disables retention
    /// but still counts.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            records: VecDeque::with_capacity(capacity.min(Self::DEFAULT_CAPACITY)),
            capacity,
            next_seq: 0,
            permits: 0,
            denies: 0,
            evictions: 0,
        }
    }

    /// Creates a log with [`Self::DEFAULT_CAPACITY`].
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Appends a record, evicting the oldest when at capacity. Returns
    /// the assigned sequence number. The row carries no correlation id
    /// ([`DecisionId::UNASSIGNED`]); the engine's mediation paths use
    /// [`record_with_id`](Self::record_with_id).
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        subject: Option<SubjectId>,
        transaction: TransactionId,
        object: ObjectId,
        effect: Effect,
        winning_rule: Option<RuleId>,
        timestamp: Option<u64>,
        degraded: Option<DegradedReason>,
    ) -> u64 {
        self.record_with_id(
            DecisionId::UNASSIGNED,
            subject,
            transaction,
            object,
            effect,
            winning_rule,
            timestamp,
            degraded,
        )
    }

    /// [`record`](Self::record), stamping the row with the decision's
    /// correlation id so audit review joins against traces, recorder
    /// entries and exemplars.
    #[allow(clippy::too_many_arguments)]
    pub fn record_with_id(
        &mut self,
        decision_id: DecisionId,
        subject: Option<SubjectId>,
        transaction: TransactionId,
        object: ObjectId,
        effect: Effect,
        winning_rule: Option<RuleId>,
        timestamp: Option<u64>,
        degraded: Option<DegradedReason>,
    ) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        match effect {
            Effect::Permit => self.permits += 1,
            Effect::Deny => self.denies += 1,
        }
        if self.capacity > 0 {
            if self.records.len() == self.capacity {
                self.records.pop_front();
                self.evictions += 1;
            }
            self.records.push_back(AuditRecord {
                seq,
                decision_id,
                subject,
                transaction,
                object,
                effect,
                winning_rule,
                timestamp,
                degraded,
            });
        }
        seq
    }

    /// The retained row carrying `decision_id`, if any — the audit leg
    /// of a `/decision/<id>` correlation lookup.
    #[must_use]
    pub fn find_by_decision_id(&self, decision_id: DecisionId) -> Option<&AuditRecord> {
        if !decision_id.is_assigned() {
            return None;
        }
        self.records
            .iter()
            .find(|record| record.decision_id == decision_id)
    }

    /// Records currently retained, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &AuditRecord> {
        self.records.iter()
    }

    /// Retained records passing `filter`, oldest first.
    pub fn iter_filtered<'a>(
        &'a self,
        filter: &'a AuditFilter,
    ) -> impl Iterator<Item = &'a AuditRecord> + 'a {
        self.records.iter().filter(|record| filter.matches(record))
    }

    /// Writes the retained records passing `filter` to `out` as JSON
    /// lines (one object per record, oldest first). Returns the number
    /// of records written.
    ///
    /// The encoding is hand-rolled — every field is numeric, an enum
    /// tag, or absent, so no escaping is needed and the core crate
    /// stays dependency-free.
    ///
    /// # Errors
    ///
    /// Propagates any write error from `out`.
    pub fn write_jsonl<W: Write>(&self, out: &mut W, filter: &AuditFilter) -> io::Result<u64> {
        let mut written = 0;
        for record in self.iter_filtered(filter) {
            out.write_all(jsonl_line(record).as_bytes())?;
            out.write_all(b"\n")?;
            written += 1;
        }
        Ok(written)
    }

    /// Number of retained records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total requests ever recorded (including evicted ones).
    #[must_use]
    pub fn total_recorded(&self) -> u64 {
        self.next_seq
    }

    /// Total permits ever recorded.
    #[must_use]
    pub fn permit_count(&self) -> u64 {
        self.permits
    }

    /// Total denies ever recorded.
    #[must_use]
    pub fn deny_count(&self) -> u64 {
        self.denies
    }

    /// Records dropped from retention, whether by the ring buffer or by
    /// [`clear`](Self::clear) (excludes records that were never
    /// retained under a zero capacity). For a non-zero capacity,
    /// `len() + evicted_count() == total_recorded()` always holds.
    #[must_use]
    pub fn evicted_count(&self) -> u64 {
        self.evictions
    }

    /// The most recent record, if any is retained.
    #[must_use]
    pub fn last(&self) -> Option<&AuditRecord> {
        self.records.back()
    }

    /// Clears retained records. Counters keep their totals, and the
    /// dropped records are added to [`evicted_count`](Self::evicted_count)
    /// so retention accounting stays consistent.
    pub fn clear(&mut self) {
        self.evictions += self.records.len() as u64;
        self.records.clear();
    }
}

/// One audit record as a single JSON object (no trailing newline).
fn jsonl_line(record: &AuditRecord) -> String {
    let mut line = String::with_capacity(160);
    line.push_str(&format!("{{\"seq\":{}", record.seq));
    if record.decision_id.is_assigned() {
        line.push_str(&format!(",\"decision_id\":\"{}\"", record.decision_id));
    }
    if let Some(subject) = record.subject {
        line.push_str(&format!(",\"subject\":{}", subject.as_raw()));
    }
    line.push_str(&format!(
        ",\"transaction\":{},\"object\":{},\"effect\":\"{}\"",
        record.transaction.as_raw(),
        record.object.as_raw(),
        match record.effect {
            Effect::Permit => "permit",
            Effect::Deny => "deny",
        }
    ));
    if let Some(rule) = record.winning_rule {
        line.push_str(&format!(",\"winning_rule\":{}", rule.as_raw()));
    }
    if let Some(ts) = record.timestamp {
        line.push_str(&format!(",\"timestamp\":{ts}"));
    }
    if let Some(reason) = &record.degraded {
        line.push_str(&format!(",\"degraded\":{{\"kind\":\"{}\"", reason.kind()));
        match reason {
            DegradedReason::StaleRolesDropped { age, dropped } => {
                line.push_str(&format!(",\"age\":{age},\"dropped\":{dropped}"));
            }
            DegradedReason::StaleDecayed { age, decay } => {
                line.push_str(&format!(",\"age\":{age},\"decay\":{}", decay.value()));
            }
            DegradedReason::LastKnownGood { age } => {
                line.push_str(&format!(",\"age\":{age}"));
            }
            DegradedReason::EnvUnavailable => {}
        }
        line.push('}');
    }
    line.push('}');
    line
}

impl Default for AuditLog {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> TransactionId {
        TransactionId::from_raw(n)
    }
    fn o(n: u64) -> ObjectId {
        ObjectId::from_raw(n)
    }

    #[test]
    fn records_and_counters() {
        let mut log = AuditLog::new();
        let s0 = log.record(None, t(0), o(0), Effect::Permit, None, None, None);
        let s1 = log.record(
            None,
            t(0),
            o(1),
            Effect::Deny,
            Some(RuleId::from_raw(2)),
            Some(7),
            None,
        );
        assert_eq!((s0, s1), (0, 1));
        assert_eq!(log.len(), 2);
        assert_eq!(log.permit_count(), 1);
        assert_eq!(log.deny_count(), 1);
        assert_eq!(log.total_recorded(), 2);
        let last = log.last().unwrap();
        assert_eq!(last.winning_rule, Some(RuleId::from_raw(2)));
        assert_eq!(last.timestamp, Some(7));
    }

    #[test]
    fn decision_ids_are_retained_queryable_and_exported() {
        let mut log = AuditLog::new();
        let id = DecisionId::from_parts(7, 3);
        log.record(None, t(0), o(0), Effect::Permit, None, None, None);
        log.record_with_id(
            id,
            Some(SubjectId::from_raw(1)),
            t(0),
            o(1),
            Effect::Deny,
            None,
            Some(9),
            None,
        );
        assert_eq!(log.last().unwrap().decision_id, id);
        assert_eq!(log.find_by_decision_id(id).unwrap().seq, 1);
        assert!(log
            .find_by_decision_id(DecisionId::from_parts(7, 4))
            .is_none());
        assert!(log.find_by_decision_id(DecisionId::UNASSIGNED).is_none());

        let mut buffer = Vec::new();
        log.write_jsonl(&mut buffer, &AuditFilter::any()).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(!lines[0].contains("decision_id"), "unassigned id omitted");
        let second: serde_json::Value = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(
            second.get("decision_id").and_then(|v| v.as_str()),
            Some(id.to_string().as_str())
        );

        // Rows serialized before the field existed load as unassigned.
        let json = serde_json::to_string(&log).unwrap();
        let restored: AuditLog = serde_json::from_str(&json).unwrap();
        assert_eq!(restored.last().unwrap().decision_id, id);
    }

    #[test]
    fn degraded_reason_is_retained_and_survives_serde() {
        let mut log = AuditLog::new();
        log.record(
            None,
            t(0),
            o(0),
            Effect::Deny,
            None,
            Some(12),
            Some(DegradedReason::StaleRolesDropped {
                age: 90,
                dropped: 2,
            }),
        );
        assert_eq!(
            log.last().unwrap().degraded,
            Some(DegradedReason::StaleRolesDropped {
                age: 90,
                dropped: 2
            })
        );

        let json = serde_json::to_string(&log).unwrap();
        let restored: AuditLog = serde_json::from_str(&json).unwrap();
        assert_eq!(
            restored.last().unwrap().degraded,
            log.last().unwrap().degraded
        );

        // Records serialized before the field existed load as `None`.
        let mut fresh = AuditLog::new();
        fresh.record(None, t(0), o(0), Effect::Permit, None, None, None);
        let legacy = serde_json::to_string(&fresh)
            .unwrap()
            .replace(",\"degraded\":null", "");
        assert!(!legacy.contains("degraded"));
        let restored: AuditLog = serde_json::from_str(&legacy).unwrap();
        assert_eq!(restored.last().unwrap().degraded, None);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut log = AuditLog::with_capacity(2);
        log.record(None, t(0), o(0), Effect::Permit, None, None, None);
        log.record(None, t(0), o(1), Effect::Permit, None, None, None);
        log.record(None, t(0), o(2), Effect::Deny, None, None, None);
        assert_eq!(log.len(), 2);
        let objects: Vec<ObjectId> = log.iter().map(|r| r.object).collect();
        assert_eq!(objects, vec![o(1), o(2)]);
        // counters include evicted entries
        assert_eq!(log.total_recorded(), 3);
        assert_eq!(log.permit_count(), 2);
        assert_eq!(log.evicted_count(), 1);
    }

    #[test]
    fn serde_round_trip_preserves_totals_past_eviction() {
        let mut log = AuditLog::with_capacity(2);
        log.record(None, t(0), o(0), Effect::Permit, None, None, None);
        log.record(None, t(0), o(1), Effect::Deny, None, Some(3), None);
        log.record(
            None,
            t(1),
            o(2),
            Effect::Permit,
            Some(RuleId::from_raw(1)),
            Some(4),
            None,
        );
        assert_eq!(log.evicted_count(), 1);

        let json = serde_json::to_string(&log).unwrap();
        let restored: AuditLog = serde_json::from_str(&json).unwrap();

        // Retained records survive verbatim…
        assert_eq!(restored.len(), 2);
        assert_eq!(
            restored.iter().collect::<Vec<_>>(),
            log.iter().collect::<Vec<_>>()
        );
        // …and so do the running totals the records alone cannot carry.
        assert_eq!(restored.total_recorded(), 3);
        assert_eq!(restored.permit_count(), 2);
        assert_eq!(restored.deny_count(), 1);
        assert_eq!(restored.evicted_count(), 1);
        // Sequence numbering continues where the original left off.
        let mut restored = restored;
        assert_eq!(
            restored.record(None, t(0), o(0), Effect::Deny, None, None, None),
            3
        );
    }

    #[test]
    fn zero_capacity_counts_without_retaining() {
        let mut log = AuditLog::with_capacity(0);
        log.record(None, t(0), o(0), Effect::Deny, None, None, None);
        assert!(log.is_empty());
        assert_eq!(log.deny_count(), 1);
        assert_eq!(log.total_recorded(), 1);
    }

    #[test]
    fn clear_keeps_totals() {
        let mut log = AuditLog::new();
        log.record(None, t(0), o(0), Effect::Permit, None, None, None);
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.total_recorded(), 1);
    }

    #[test]
    fn clear_counts_as_eviction() {
        let mut log = AuditLog::with_capacity(4);
        log.record(None, t(0), o(0), Effect::Permit, None, None, None);
        log.record(None, t(0), o(1), Effect::Deny, None, None, None);
        log.clear();
        assert_eq!(log.evicted_count(), 2);
        log.record(None, t(0), o(2), Effect::Permit, None, None, None);
        // retained + evicted always accounts for every record.
        assert_eq!(log.len() as u64 + log.evicted_count(), log.total_recorded());
    }

    #[test]
    fn filter_matches_conjunctively() {
        let mut log = AuditLog::new();
        let alice = SubjectId::from_raw(1);
        log.record(
            Some(alice),
            t(0),
            o(0),
            Effect::Permit,
            None,
            Some(10),
            None,
        );
        log.record(Some(alice), t(0), o(1), Effect::Deny, None, Some(20), None);
        log.record(None, t(1), o(0), Effect::Deny, None, None, None);
        log.record(
            Some(alice),
            t(1),
            o(0),
            Effect::Deny,
            None,
            Some(30),
            Some(DegradedReason::EnvUnavailable),
        );

        assert_eq!(log.iter_filtered(&AuditFilter::any()).count(), 4);

        let mine = AuditFilter {
            subject: Some(alice),
            ..AuditFilter::any()
        };
        assert_eq!(log.iter_filtered(&mine).count(), 3);

        let denied_late = AuditFilter {
            effect: Some(Effect::Deny),
            since: Some(20),
            ..AuditFilter::any()
        };
        // The untimed deny never matches a time bound.
        assert_eq!(log.iter_filtered(&denied_late).count(), 2);

        let degraded = AuditFilter {
            degraded_kind: Some("env_unavailable".into()),
            ..AuditFilter::any()
        };
        let hits: Vec<u64> = log.iter_filtered(&degraded).map(|r| r.seq).collect();
        assert_eq!(hits, vec![3]);

        let wrong_kind = AuditFilter {
            degraded_kind: Some("stale_decayed".into()),
            ..AuditFilter::any()
        };
        assert_eq!(log.iter_filtered(&wrong_kind).count(), 0);

        let window = AuditFilter {
            since: Some(10),
            until: Some(20),
            ..AuditFilter::any()
        };
        assert_eq!(log.iter_filtered(&window).count(), 2);
    }

    #[test]
    fn jsonl_export_is_valid_json_lines() {
        let mut log = AuditLog::new();
        log.record(
            Some(SubjectId::from_raw(5)),
            t(2),
            o(3),
            Effect::Permit,
            Some(RuleId::from_raw(7)),
            Some(42),
            None,
        );
        log.record(
            None,
            t(2),
            o(3),
            Effect::Deny,
            None,
            None,
            Some(DegradedReason::StaleRolesDropped { age: 9, dropped: 1 }),
        );
        let mut buffer = Vec::new();
        let written = log.write_jsonl(&mut buffer, &AuditFilter::any()).unwrap();
        assert_eq!(written, 2);
        let text = String::from_utf8(buffer).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        // Every line parses back as a JSON object with the raw ids.
        let uint = |v: &serde_json::Value, key: &str| match v.get(key) {
            Some(serde_json::Value::UInt(n)) => Some(*n),
            Some(serde_json::Value::Int(n)) => u64::try_from(*n).ok(),
            _ => None,
        };
        let first: serde_json::Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(uint(&first, "subject"), Some(5));
        assert_eq!(first.get("effect").and_then(|v| v.as_str()), Some("permit"));
        assert_eq!(uint(&first, "winning_rule"), Some(7));
        assert_eq!(uint(&first, "timestamp"), Some(42));
        let second: serde_json::Value = serde_json::from_str(lines[1]).unwrap();
        let degraded = second.get("degraded").unwrap();
        assert_eq!(
            degraded.get("kind").and_then(|v| v.as_str()),
            Some("stale_roles_dropped")
        );
        assert_eq!(uint(degraded, "dropped"), Some(1));
        assert!(second.get("subject").is_none());

        // Filters apply to the export too.
        let mut buffer = Vec::new();
        let filter = AuditFilter {
            degraded_only: true,
            ..AuditFilter::any()
        };
        assert_eq!(log.write_jsonl(&mut buffer, &filter).unwrap(), 1);
    }

    #[test]
    fn sequence_numbers_survive_eviction() {
        let mut log = AuditLog::with_capacity(1);
        log.record(None, t(0), o(0), Effect::Permit, None, None, None);
        let seq = log.record(None, t(0), o(1), Effect::Permit, None, None, None);
        assert_eq!(seq, 1);
        assert_eq!(log.last().unwrap().seq, 1);
    }
}
