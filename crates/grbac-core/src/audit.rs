//! Audit log: a bounded record of mediation outcomes.
//!
//! Security-sensitive homes need an account of who was granted what and
//! when (§3's "data theft" concern cuts both ways — the household also
//! wants to review access). The log is a fixed-capacity ring buffer so a
//! chatty sensor network cannot exhaust memory.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::degraded::DegradedReason;
use crate::id::{ObjectId, RuleId, SubjectId, TransactionId};
use crate::rule::Effect;

/// One mediated request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditRecord {
    /// Monotonic sequence number (never reused, survives eviction).
    pub seq: u64,
    /// The requesting subject, when identified.
    pub subject: Option<SubjectId>,
    /// The requested transaction.
    pub transaction: TransactionId,
    /// The target object.
    pub object: ObjectId,
    /// The outcome.
    pub effect: Effect,
    /// The rule that carried the decision, if any.
    pub winning_rule: Option<RuleId>,
    /// Caller-supplied timestamp (virtual seconds in the simulations);
    /// `None` for untimed requests.
    pub timestamp: Option<u64>,
    /// Why the decision ran degraded — which staleness posture applied
    /// and why environment roles were absent (or present despite a
    /// failed provider). `None` for fully-fresh decisions, and
    /// (via `#[serde(default)]`) for records serialized before the
    /// field existed.
    #[serde(default)]
    pub degraded: Option<DegradedReason>,
}

/// Bounded, append-only log of [`AuditRecord`]s.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AuditLog {
    records: VecDeque<AuditRecord>,
    capacity: usize,
    next_seq: u64,
    permits: u64,
    denies: u64,
    /// Records dropped by the ring buffer (defaults to 0 when loading
    /// logs serialized before the counter existed).
    #[serde(default)]
    evictions: u64,
}

impl AuditLog {
    /// Default retention when none is specified.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// Creates a log retaining at most `capacity` records (the counters
    /// keep counting after eviction). A zero capacity disables retention
    /// but still counts.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            records: VecDeque::with_capacity(capacity.min(Self::DEFAULT_CAPACITY)),
            capacity,
            next_seq: 0,
            permits: 0,
            denies: 0,
            evictions: 0,
        }
    }

    /// Creates a log with [`Self::DEFAULT_CAPACITY`].
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Appends a record, evicting the oldest when at capacity. Returns
    /// the assigned sequence number.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        subject: Option<SubjectId>,
        transaction: TransactionId,
        object: ObjectId,
        effect: Effect,
        winning_rule: Option<RuleId>,
        timestamp: Option<u64>,
        degraded: Option<DegradedReason>,
    ) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        match effect {
            Effect::Permit => self.permits += 1,
            Effect::Deny => self.denies += 1,
        }
        if self.capacity > 0 {
            if self.records.len() == self.capacity {
                self.records.pop_front();
                self.evictions += 1;
            }
            self.records.push_back(AuditRecord {
                seq,
                subject,
                transaction,
                object,
                effect,
                winning_rule,
                timestamp,
                degraded,
            });
        }
        seq
    }

    /// Records currently retained, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &AuditRecord> {
        self.records.iter()
    }

    /// Number of retained records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total requests ever recorded (including evicted ones).
    #[must_use]
    pub fn total_recorded(&self) -> u64 {
        self.next_seq
    }

    /// Total permits ever recorded.
    #[must_use]
    pub fn permit_count(&self) -> u64 {
        self.permits
    }

    /// Total denies ever recorded.
    #[must_use]
    pub fn deny_count(&self) -> u64 {
        self.denies
    }

    /// Records evicted by the ring buffer (excludes records that were
    /// never retained under a zero capacity, and records dropped by
    /// [`clear`](Self::clear)).
    #[must_use]
    pub fn evicted_count(&self) -> u64 {
        self.evictions
    }

    /// The most recent record, if any is retained.
    #[must_use]
    pub fn last(&self) -> Option<&AuditRecord> {
        self.records.back()
    }

    /// Clears retained records (counters keep their totals).
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

impl Default for AuditLog {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> TransactionId {
        TransactionId::from_raw(n)
    }
    fn o(n: u64) -> ObjectId {
        ObjectId::from_raw(n)
    }

    #[test]
    fn records_and_counters() {
        let mut log = AuditLog::new();
        let s0 = log.record(None, t(0), o(0), Effect::Permit, None, None, None);
        let s1 = log.record(
            None,
            t(0),
            o(1),
            Effect::Deny,
            Some(RuleId::from_raw(2)),
            Some(7),
            None,
        );
        assert_eq!((s0, s1), (0, 1));
        assert_eq!(log.len(), 2);
        assert_eq!(log.permit_count(), 1);
        assert_eq!(log.deny_count(), 1);
        assert_eq!(log.total_recorded(), 2);
        let last = log.last().unwrap();
        assert_eq!(last.winning_rule, Some(RuleId::from_raw(2)));
        assert_eq!(last.timestamp, Some(7));
    }

    #[test]
    fn degraded_reason_is_retained_and_survives_serde() {
        let mut log = AuditLog::new();
        log.record(
            None,
            t(0),
            o(0),
            Effect::Deny,
            None,
            Some(12),
            Some(DegradedReason::StaleRolesDropped {
                age: 90,
                dropped: 2,
            }),
        );
        assert_eq!(
            log.last().unwrap().degraded,
            Some(DegradedReason::StaleRolesDropped {
                age: 90,
                dropped: 2
            })
        );

        let json = serde_json::to_string(&log).unwrap();
        let restored: AuditLog = serde_json::from_str(&json).unwrap();
        assert_eq!(
            restored.last().unwrap().degraded,
            log.last().unwrap().degraded
        );

        // Records serialized before the field existed load as `None`.
        let mut fresh = AuditLog::new();
        fresh.record(None, t(0), o(0), Effect::Permit, None, None, None);
        let legacy = serde_json::to_string(&fresh)
            .unwrap()
            .replace(",\"degraded\":null", "");
        assert!(!legacy.contains("degraded"));
        let restored: AuditLog = serde_json::from_str(&legacy).unwrap();
        assert_eq!(restored.last().unwrap().degraded, None);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut log = AuditLog::with_capacity(2);
        log.record(None, t(0), o(0), Effect::Permit, None, None, None);
        log.record(None, t(0), o(1), Effect::Permit, None, None, None);
        log.record(None, t(0), o(2), Effect::Deny, None, None, None);
        assert_eq!(log.len(), 2);
        let objects: Vec<ObjectId> = log.iter().map(|r| r.object).collect();
        assert_eq!(objects, vec![o(1), o(2)]);
        // counters include evicted entries
        assert_eq!(log.total_recorded(), 3);
        assert_eq!(log.permit_count(), 2);
        assert_eq!(log.evicted_count(), 1);
    }

    #[test]
    fn serde_round_trip_preserves_totals_past_eviction() {
        let mut log = AuditLog::with_capacity(2);
        log.record(None, t(0), o(0), Effect::Permit, None, None, None);
        log.record(None, t(0), o(1), Effect::Deny, None, Some(3), None);
        log.record(
            None,
            t(1),
            o(2),
            Effect::Permit,
            Some(RuleId::from_raw(1)),
            Some(4),
            None,
        );
        assert_eq!(log.evicted_count(), 1);

        let json = serde_json::to_string(&log).unwrap();
        let restored: AuditLog = serde_json::from_str(&json).unwrap();

        // Retained records survive verbatim…
        assert_eq!(restored.len(), 2);
        assert_eq!(
            restored.iter().collect::<Vec<_>>(),
            log.iter().collect::<Vec<_>>()
        );
        // …and so do the running totals the records alone cannot carry.
        assert_eq!(restored.total_recorded(), 3);
        assert_eq!(restored.permit_count(), 2);
        assert_eq!(restored.deny_count(), 1);
        assert_eq!(restored.evicted_count(), 1);
        // Sequence numbering continues where the original left off.
        let mut restored = restored;
        assert_eq!(
            restored.record(None, t(0), o(0), Effect::Deny, None, None, None),
            3
        );
    }

    #[test]
    fn zero_capacity_counts_without_retaining() {
        let mut log = AuditLog::with_capacity(0);
        log.record(None, t(0), o(0), Effect::Deny, None, None, None);
        assert!(log.is_empty());
        assert_eq!(log.deny_count(), 1);
        assert_eq!(log.total_recorded(), 1);
    }

    #[test]
    fn clear_keeps_totals() {
        let mut log = AuditLog::new();
        log.record(None, t(0), o(0), Effect::Permit, None, None, None);
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.total_recorded(), 1);
    }

    #[test]
    fn sequence_numbers_survive_eviction() {
        let mut log = AuditLog::with_capacity(1);
        log.record(None, t(0), o(0), Effect::Permit, None, None, None);
        let seq = log.record(None, t(0), o(1), Effect::Permit, None, None, None);
        assert_eq!(seq, 1);
        assert_eq!(log.last().unwrap().seq, 1);
    }
}
