//! Static policy analysis — and its runtime-heat counterpart.
//!
//! The paper warns that GRBAC's generality "makes it even more
//! susceptible to various types of policy conflicts and ambiguities"
//! (§4.2.4) and pitches well-structured policies as the mitigation. This
//! module provides the tooling: detecting permit/deny conflicts, rules
//! shadowed under first-applicable resolution, and declared-but-unused
//! roles — the "policy bugs" of §4.1.2.
//!
//! Static analysis finds rules that *cannot* fire; the per-rule heat
//! table ([`RuleHeat`](crate::telemetry::RuleHeat)) records which rules
//! *do* fire. [`health_report`] joins the two into a
//! [`PolicyHealthReport`]: statically-live-but-cold rules ("dead in
//! practice"), heat-confirmed shadowing, per-role traffic analytics,
//! and rules that went cold after a policy edit.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::engine::Grbac;
use crate::id::{RoleId, RuleId};
use crate::role::RoleKind;
use crate::rule::{Effect, RoleSpec, Rule, TransactionSpec};

/// A potential permit/deny conflict between two rules.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuleConflict {
    /// The permitting rule.
    pub permit: RuleId,
    /// The denying rule.
    pub deny: RuleId,
}

/// A rule that can never fire under first-applicable resolution because
/// an earlier rule matches every request it would match.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShadowedRule {
    /// The earlier, covering rule.
    pub by: RuleId,
    /// The later rule that can never win.
    pub rule: RuleId,
}

/// The result of a policy analysis pass.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicyReport {
    /// Permit/deny rule pairs that can both match some request.
    pub conflicts: Vec<RuleConflict>,
    /// Rules unreachable under first-applicable resolution.
    pub shadowed: Vec<ShadowedRule>,
    /// Roles referenced by no rule (likely dead policy vocabulary).
    pub unused_roles: BTreeSet<RoleId>,
    /// Subject-role rules whose role has no members (dead rules today,
    /// though they may come alive as users are assigned).
    pub memberless_rules: Vec<RuleId>,
}

impl PolicyReport {
    /// True if the analysis found nothing worth flagging.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.conflicts.is_empty()
            && self.shadowed.is_empty()
            && self.unused_roles.is_empty()
            && self.memberless_rules.is_empty()
    }
}

/// Runs every analysis over the engine's current policy.
///
/// # Examples
///
/// ```
/// use grbac_core::analysis::analyze;
/// use grbac_core::prelude::*;
///
/// # fn main() -> Result<(), GrbacError> {
/// let mut g = Grbac::new();
/// let family = g.declare_subject_role("family_member")?;
/// let media = g.declare_object_role("media")?;
/// let kid = g.declare_subject("kid")?;
/// g.assign_subject_role(kid, family)?;
/// g.add_rule(RuleDef::permit().subject_role(family).object_role(media))?;
///
/// assert!(analyze(&g).is_clean());
///
/// // A deny rule over the same positions is a conflict.
/// g.add_rule(RuleDef::deny().subject_role(family).object_role(media))?;
/// let report = analyze(&g);
/// assert!(!report.is_clean());
/// assert_eq!(report.conflicts.len(), 1);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn analyze(grbac: &Grbac) -> PolicyReport {
    PolicyReport {
        conflicts: find_conflicts(grbac),
        shadowed: find_shadowed(grbac),
        unused_roles: find_unused_roles(grbac),
        memberless_rules: find_memberless_rules(grbac),
    }
}

/// Finds permit/deny pairs that can match the same request.
///
/// Two rules can co-fire when every constrained position overlaps:
/// role specs overlap when one is `Any` or the two roles have a common
/// descendant (some entity could hold both); environment conjunctions
/// never exclude each other (any set of environment roles can be active
/// together); transactions overlap when either is `Any` or they are
/// equal.
///
/// # Examples
///
/// A permit on a generalization conflicts with a deny on its
/// specialization — a child is also a family member:
///
/// ```
/// use grbac_core::analysis::find_conflicts;
/// use grbac_core::prelude::*;
///
/// # fn main() -> Result<(), GrbacError> {
/// let mut g = Grbac::new();
/// let family = g.declare_subject_role("family_member")?;
/// let child = g.declare_subject_role("child")?;
/// g.specialize(child, family)?;
/// let permit = g.add_rule(RuleDef::permit().subject_role(family))?;
/// let deny = g.add_rule(RuleDef::deny().subject_role(child))?;
///
/// let conflicts = find_conflicts(&g);
/// assert_eq!(conflicts.len(), 1);
/// assert_eq!((conflicts[0].permit, conflicts[0].deny), (permit, deny));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn find_conflicts(grbac: &Grbac) -> Vec<RuleConflict> {
    let rules = grbac.rules();
    let mut out = Vec::new();
    for (i, a) in rules.iter().enumerate() {
        for b in &rules[i + 1..] {
            if a.effect() == b.effect() {
                continue;
            }
            if rules_overlap(grbac, a, b) {
                let (permit, deny) = if a.effect() == Effect::Permit {
                    (a.id(), b.id())
                } else {
                    (b.id(), a.id())
                };
                out.push(RuleConflict { permit, deny });
            }
        }
    }
    out
}

/// Finds rules that a strictly earlier rule completely covers.
///
/// # Examples
///
/// ```
/// use grbac_core::analysis::find_shadowed;
/// use grbac_core::prelude::*;
///
/// # fn main() -> Result<(), GrbacError> {
/// let mut g = Grbac::new();
/// let family = g.declare_subject_role("family_member")?;
/// let child = g.declare_subject_role("child")?;
/// g.specialize(child, family)?;
/// // The broad rule matches everything the narrow one would.
/// let broad = g.add_rule(RuleDef::permit().subject_role(family))?;
/// let narrow = g.add_rule(RuleDef::permit().subject_role(child))?;
///
/// let shadowed = find_shadowed(&g);
/// assert_eq!(shadowed.len(), 1);
/// assert_eq!((shadowed[0].by, shadowed[0].rule), (broad, narrow));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn find_shadowed(grbac: &Grbac) -> Vec<ShadowedRule> {
    let rules = grbac.rules();
    let mut out = Vec::new();
    for (i, earlier) in rules.iter().enumerate() {
        for later in &rules[i + 1..] {
            if rule_covers(grbac, earlier, later) {
                out.push(ShadowedRule {
                    by: earlier.id(),
                    rule: later.id(),
                });
            }
        }
    }
    out
}

/// Roles (of any kind) referenced by no rule, directly or through the
/// hierarchy: a role is "used" if some rule names it or names one of its
/// generalizations (rules about `family_member` make `child` useful).
///
/// # Examples
///
/// ```
/// use grbac_core::analysis::find_unused_roles;
/// use grbac_core::prelude::*;
///
/// # fn main() -> Result<(), GrbacError> {
/// let mut g = Grbac::new();
/// let family = g.declare_subject_role("family_member")?;
/// let lonely = g.declare_object_role("never_referenced")?;
/// g.add_rule(RuleDef::permit().subject_role(family))?;
///
/// let unused = find_unused_roles(&g);
/// assert!(unused.contains(&lonely));
/// assert!(!unused.contains(&family));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn find_unused_roles(grbac: &Grbac) -> BTreeSet<RoleId> {
    let mut referenced = BTreeSet::new();
    for rule in grbac.rules() {
        if let RoleSpec::Is(r) = rule.subject_role() {
            referenced.insert(r);
        }
        if let RoleSpec::Is(r) = rule.object_role() {
            referenced.insert(r);
        }
        referenced.extend(rule.environment_roles().iter().copied());
    }
    grbac
        .roles()
        .iter()
        .map(crate::role::Role::id)
        .filter(|&id| {
            // A role is used if its closure (itself or any generalization)
            // intersects the referenced set.
            grbac
                .roles()
                .closure(id)
                .map(|closure| closure.is_disjoint(&referenced))
                .unwrap_or(true)
        })
        .collect()
}

/// Rules constrained to a subject role that currently has no members
/// (considering hierarchy: members of specializations count).
///
/// # Examples
///
/// ```
/// use grbac_core::analysis::find_memberless_rules;
/// use grbac_core::prelude::*;
///
/// # fn main() -> Result<(), GrbacError> {
/// let mut g = Grbac::new();
/// let guest = g.declare_subject_role("guest")?;
/// let rule = g.add_rule(RuleDef::permit().subject_role(guest))?;
/// assert_eq!(find_memberless_rules(&g), vec![rule]);
///
/// // Assigning a member brings the rule alive.
/// let visitor = g.declare_subject("visitor")?;
/// g.assign_subject_role(visitor, guest)?;
/// assert!(find_memberless_rules(&g).is_empty());
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn find_memberless_rules(grbac: &Grbac) -> Vec<RuleId> {
    grbac
        .rules()
        .iter()
        .filter(|rule| {
            let RoleSpec::Is(role) = rule.subject_role() else {
                return false;
            };
            let hierarchy = grbac.roles().hierarchy(RoleKind::Subject);
            let mut candidates = hierarchy.descendants(role);
            candidates.insert(role);
            candidates
                .iter()
                .all(|&r| grbac.assignments().subjects_in(r).is_empty())
        })
        .map(Rule::id)
        .collect()
}

/// One cell of a [`decision_matrix`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixCell {
    /// The requesting subject.
    pub subject: crate::id::SubjectId,
    /// The target object.
    pub object: crate::id::ObjectId,
    /// The attempted transaction.
    pub transaction: crate::id::TransactionId,
    /// The outcome under the supplied environment.
    pub effect: Effect,
}

/// Mediates every (subject × object × transaction) combination under
/// one environment snapshot — the §5.1 "decision matrix" a homeowner
/// would review to understand the policy's full reach.
///
/// Cells come out sorted by (subject, object, transaction). Intended
/// for review tooling and tests; cost is the full cross product.
///
/// # Examples
///
/// ```
/// use grbac_core::analysis::decision_matrix;
/// use grbac_core::prelude::*;
///
/// # fn main() -> Result<(), GrbacError> {
/// let mut g = Grbac::new();
/// let family = g.declare_subject_role("family_member")?;
/// let view = g.declare_transaction("view")?;
/// let kid = g.declare_subject("kid")?;
/// g.assign_subject_role(kid, family)?;
/// let album = g.declare_object("album")?;
/// g.add_rule(RuleDef::permit().subject_role(family).transaction(view))?;
///
/// let matrix = decision_matrix(&g, &EnvironmentSnapshot::new());
/// // 1 subject × 1 object × 1 transaction.
/// assert_eq!(matrix.len(), 1);
/// assert_eq!(matrix[0].effect, Effect::Permit);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn decision_matrix(
    grbac: &Grbac,
    environment: &crate::environment::EnvironmentSnapshot,
) -> Vec<MatrixCell> {
    let mut subjects: Vec<_> = grbac.entities().subjects().map(|s| s.id()).collect();
    subjects.sort_unstable();
    let mut objects: Vec<_> = grbac.entities().objects().map(|o| o.id()).collect();
    objects.sort_unstable();
    let mut transactions: Vec<_> = grbac.entities().transactions().map(|t| t.id()).collect();
    transactions.sort_unstable();

    let mut cells = Vec::with_capacity(subjects.len() * objects.len() * transactions.len());
    for &subject in &subjects {
        for &object in &objects {
            for &transaction in &transactions {
                let request = crate::engine::AccessRequest::by_subject(
                    subject,
                    transaction,
                    object,
                    environment.clone(),
                );
                let effect = grbac.decide(&request).map_or(Effect::Deny, |d| d.effect());
                cells.push(MatrixCell {
                    subject,
                    object,
                    transaction,
                    effect,
                });
            }
        }
    }
    cells
}

/// One rule's runtime traffic, joined with its policy identity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuleTraffic {
    /// The rule.
    pub rule: RuleId,
    /// Its human label (declared name, or `rule<id>`).
    pub label: String,
    /// The rule's effect.
    pub effect: Effect,
    /// Decisions in which the rule was applicable.
    pub matched: u64,
    /// Decisions the rule won with a permit.
    pub won_permit: u64,
    /// Decisions the rule won with a deny.
    pub won_deny: u64,
    /// Policy generation of the rule's most recent firing (`None` =
    /// never fired).
    pub last_fired_generation: Option<u64>,
}

/// How much traffic flows through one declared role.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoleUsage {
    /// The role.
    pub role: RoleId,
    /// Its declared name.
    pub name: String,
    /// Subject, object, or environment.
    pub kind: RoleKind,
    /// Rules referencing the role directly (subject/object position or
    /// environment conjunction).
    pub referencing_rules: u64,
    /// Heat (matches) summed over those referencing rules.
    pub matched: u64,
}

/// The static analysis report joined with runtime heat: what the
/// policy *could* do versus what it actually *does*. Produced by
/// [`health_report`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyHealthReport {
    /// The policy generation the report was taken at.
    pub generation: u64,
    /// Decisions folded into the heat table since its last reset.
    pub decisions: u64,
    /// Times the heat table was reset (a cold rule right after a reset
    /// is not evidence of anything).
    pub heat_resets: u64,
    /// The static analysis pass ([`analyze`]).
    pub static_report: PolicyReport,
    /// Per-rule traffic in policy order (every rule, including the
    /// cold ones).
    pub traffic: Vec<RuleTraffic>,
    /// Rules static analysis considers live (not shadowed, not
    /// memberless) that nevertheless matched zero decisions — dead in
    /// practice. Empty until the heat table has seen traffic.
    pub dead_in_practice: Vec<RuleId>,
    /// Statically-shadowed rules whose heat agrees: they matched
    /// decisions but never won one. (A statically-shadowed rule that
    /// *did* win — possible under non-first-applicable strategies — is
    /// excluded, heat having refuted the static call.)
    pub heat_confirmed_shadowed: Vec<ShadowedRule>,
    /// Rules that used to fire but have not fired under the current
    /// generation even though newer decisions exist — candidates for a
    /// policy edit having orphaned them.
    pub drifted: Vec<RuleId>,
    /// Per-role traffic analytics, in role-id order.
    pub role_usage: Vec<RoleUsage>,
}

impl PolicyHealthReport {
    /// Rules flagged by any signal (static or runtime), deduplicated.
    #[must_use]
    pub fn troubled_rules(&self) -> BTreeSet<RuleId> {
        let mut out = BTreeSet::new();
        for conflict in &self.static_report.conflicts {
            out.insert(conflict.permit);
            out.insert(conflict.deny);
        }
        for shadowed in &self.static_report.shadowed {
            out.insert(shadowed.rule);
        }
        out.extend(self.static_report.memberless_rules.iter().copied());
        out.extend(self.dead_in_practice.iter().copied());
        out.extend(self.drifted.iter().copied());
        out
    }

    /// Fraction of rules no signal flags, in `[0, 1]` (1.0 for an
    /// empty policy).
    #[must_use]
    pub fn score(&self) -> f64 {
        if self.traffic.is_empty() {
            return 1.0;
        }
        let troubled = self.troubled_rules().len();
        1.0 - troubled as f64 / self.traffic.len() as f64
    }

    /// True when nothing is flagged: the static report is clean, every
    /// rule carries traffic, and none drifted cold.
    #[must_use]
    pub fn is_healthy(&self) -> bool {
        self.static_report.is_clean() && self.dead_in_practice.is_empty() && self.drifted.is_empty()
    }
}

/// Joins the static analysis pass with the engine's per-rule heat
/// table into a [`PolicyHealthReport`].
///
/// Static analysis alone cannot see a rule that is *reachable in
/// principle* but never exercised by real traffic; the heat join
/// flags exactly those as [`dead_in_practice`](PolicyHealthReport::dead_in_practice).
///
/// # Examples
///
/// ```
/// use grbac_core::analysis::{analyze, health_report};
/// use grbac_core::prelude::*;
///
/// # fn main() -> Result<(), GrbacError> {
/// let mut g = Grbac::new();
/// let family = g.declare_subject_role("family_member")?;
/// let use_t = g.declare_transaction("use")?;
/// let kid = g.declare_subject("kid")?;
/// g.assign_subject_role(kid, family)?;
/// let tv = g.declare_object("tv")?;
/// // An environment role no snapshot ever activates: the rule is
/// // statically live but dead in practice.
/// let eclipse = g.declare_environment_role("solar_eclipse")?;
/// let hot = g.add_rule(RuleDef::permit().subject_role(family).transaction(use_t))?;
/// let cold = g.add_rule(
///     RuleDef::permit()
///         .named("eclipse override")
///         .subject_role(family)
///         .when(eclipse),
/// )?;
///
/// for _ in 0..10 {
///     let request = AccessRequest::by_subject(kid, use_t, tv, EnvironmentSnapshot::new());
///     g.decide(&request)?;
/// }
///
/// // Static analysis sees nothing wrong with the eclipse rule...
/// assert!(!analyze(&g).shadowed.iter().any(|s| s.rule == cold));
/// // ...but the heat join knows it never fired.
/// let report = health_report(&g);
/// if grbac_core::telemetry::ENABLED {
///     assert!(report.dead_in_practice.contains(&cold));
///     assert!(!report.dead_in_practice.contains(&hot));
///     assert!(!report.is_healthy());
/// }
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn health_report(grbac: &Grbac) -> PolicyHealthReport {
    let static_report = analyze(grbac);
    let heat = grbac.heat_snapshot();
    let generation = grbac.policy_generation();

    let traffic: Vec<RuleTraffic> = grbac
        .rules()
        .iter()
        .map(|rule| {
            let entry = heat.get(rule.id().as_raw());
            RuleTraffic {
                rule: rule.id(),
                label: grbac.rule_label(rule.id()),
                effect: rule.effect(),
                matched: entry.matched,
                won_permit: entry.won_permit,
                won_deny: entry.won_deny,
                last_fired_generation: entry.last_fired_generation,
            }
        })
        .collect();

    let statically_dead: BTreeSet<RuleId> = static_report
        .shadowed
        .iter()
        .map(|s| s.rule)
        .chain(static_report.memberless_rules.iter().copied())
        .collect();
    let dead_in_practice = if heat.decisions == 0 {
        // No traffic yet: zero heat is not evidence.
        Vec::new()
    } else {
        traffic
            .iter()
            .filter(|t| t.matched == 0 && !statically_dead.contains(&t.rule))
            .map(|t| t.rule)
            .collect()
    };

    let heat_confirmed_shadowed = static_report
        .shadowed
        .iter()
        .filter(|s| {
            let entry = heat.get(s.rule.as_raw());
            entry.matched > 0 && entry.won_permit + entry.won_deny == 0
        })
        .cloned()
        .collect();

    // "Newer decisions exist" = some rule fired under the current
    // generation; a rule with older heat then drifted cold across a
    // policy edit.
    let latest_fire = traffic.iter().filter_map(|t| t.last_fired_generation).max();
    let drifted = if latest_fire == Some(generation) {
        traffic
            .iter()
            .filter(|t| t.matched > 0 && t.last_fired_generation < Some(generation))
            .map(|t| t.rule)
            .collect()
    } else {
        Vec::new()
    };

    let role_usage = grbac
        .roles()
        .iter()
        .map(|role| {
            let mut referencing_rules = 0;
            let mut matched = 0;
            for t in &traffic {
                let rule = grbac
                    .rules()
                    .iter()
                    .find(|r| r.id() == t.rule)
                    .expect("traffic is built from the rule list");
                let references = match role.kind() {
                    RoleKind::Subject => rule.subject_role() == RoleSpec::Is(role.id()),
                    RoleKind::Object => rule.object_role() == RoleSpec::Is(role.id()),
                    RoleKind::Environment => rule.environment_roles().contains(&role.id()),
                };
                if references {
                    referencing_rules += 1;
                    matched += t.matched;
                }
            }
            RoleUsage {
                role: role.id(),
                name: role.name().to_owned(),
                kind: role.kind(),
                referencing_rules,
                matched,
            }
        })
        .collect();

    PolicyHealthReport {
        generation,
        decisions: heat.decisions,
        heat_resets: heat.resets,
        static_report,
        traffic,
        dead_in_practice,
        heat_confirmed_shadowed,
        drifted,
        role_usage,
    }
}

fn rules_overlap(grbac: &Grbac, a: &Rule, b: &Rule) -> bool {
    transactions_overlap(a.transaction(), b.transaction())
        && role_specs_overlap(grbac, RoleKind::Subject, a.subject_role(), b.subject_role())
        && role_specs_overlap(grbac, RoleKind::Object, a.object_role(), b.object_role())
}

fn transactions_overlap(a: TransactionSpec, b: TransactionSpec) -> bool {
    match (a, b) {
        (TransactionSpec::Any, _) | (_, TransactionSpec::Any) => true,
        (TransactionSpec::Is(x), TransactionSpec::Is(y)) => x == y,
    }
}

fn role_specs_overlap(grbac: &Grbac, kind: RoleKind, a: RoleSpec, b: RoleSpec) -> bool {
    match (a, b) {
        (RoleSpec::Any, _) | (_, RoleSpec::Any) => true,
        (RoleSpec::Is(x), RoleSpec::Is(y)) => {
            grbac.roles().hierarchy(kind).have_common_descendant(x, y)
        }
    }
}

/// True when every request matching `later` also matches `earlier`.
fn rule_covers(grbac: &Grbac, earlier: &Rule, later: &Rule) -> bool {
    transaction_covers(earlier.transaction(), later.transaction())
        && role_spec_covers(
            grbac,
            RoleKind::Subject,
            earlier.subject_role(),
            later.subject_role(),
        )
        && role_spec_covers(
            grbac,
            RoleKind::Object,
            earlier.object_role(),
            later.object_role(),
        )
        && env_covers(
            grbac,
            earlier.environment_roles(),
            later.environment_roles(),
        )
        && confidence_covers(earlier, later)
}

fn transaction_covers(earlier: TransactionSpec, later: TransactionSpec) -> bool {
    match (earlier, later) {
        (TransactionSpec::Any, _) => true,
        (TransactionSpec::Is(x), TransactionSpec::Is(y)) => x == y,
        (TransactionSpec::Is(_), TransactionSpec::Any) => false,
    }
}

fn role_spec_covers(grbac: &Grbac, kind: RoleKind, earlier: RoleSpec, later: RoleSpec) -> bool {
    match (earlier, later) {
        (RoleSpec::Any, _) => true,
        (RoleSpec::Is(_), RoleSpec::Any) => false,
        (RoleSpec::Is(e), RoleSpec::Is(l)) => {
            // Anything possessing `l` also possesses everything in `l`'s
            // closure; so `earlier` covers iff e is in that closure.
            grbac.roles().hierarchy(kind).is_specialization_of(l, e)
        }
    }
}

fn env_covers(grbac: &Grbac, earlier: &[RoleId], later: &[RoleId]) -> bool {
    // Every env requirement of `earlier` must be implied whenever all of
    // `later`'s requirements hold: some later-role must specialize it.
    let hierarchy = grbac.roles().hierarchy(RoleKind::Environment);
    earlier
        .iter()
        .all(|&e| later.iter().any(|&l| hierarchy.is_specialization_of(l, e)))
}

/// A permit rule with a *stricter* threshold than a later permit rule
/// does not cover it (the later rule fires at lower confidences).
fn confidence_covers(earlier: &Rule, later: &Rule) -> bool {
    if earlier.effect() != Effect::Permit || later.effect() != Effect::Permit {
        return true;
    }
    match (earlier.min_confidence(), later.min_confidence()) {
        (None, _) => true, // engine default on both sides; conservative
        (Some(_), None) => false,
        (Some(e), Some(l)) => e <= l,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::RuleDef;

    fn engine_with_hierarchy() -> (Grbac, RoleId, RoleId, RoleId) {
        let mut g = Grbac::new();
        let family = g.declare_subject_role("family_member").unwrap();
        let child = g.declare_subject_role("child").unwrap();
        g.specialize(child, family).unwrap();
        let media = g.declare_object_role("media").unwrap();
        (g, family, child, media)
    }

    #[test]
    fn clean_policy_reports_clean() {
        let (mut g, family, child, media) = engine_with_hierarchy();
        let s = g.declare_subject("kid").unwrap();
        g.assign_subject_role(s, child).unwrap();
        g.add_rule(RuleDef::permit().subject_role(family).object_role(media))
            .unwrap();
        let report = analyze(&g);
        // `child` is used through its generalization `family_member`.
        assert!(report.conflicts.is_empty());
        assert!(report.shadowed.is_empty());
        assert!(!report.unused_roles.contains(&child));
        assert!(report.memberless_rules.is_empty());
    }

    #[test]
    fn detects_permit_deny_conflict_through_hierarchy() {
        let (mut g, family, child, media) = engine_with_hierarchy();
        let permit = g
            .add_rule(RuleDef::permit().subject_role(family).object_role(media))
            .unwrap();
        let deny = g
            .add_rule(RuleDef::deny().subject_role(child).object_role(media))
            .unwrap();
        let conflicts = find_conflicts(&g);
        assert_eq!(conflicts, vec![RuleConflict { permit, deny }]);
    }

    #[test]
    fn no_conflict_between_disjoint_sibling_roles() {
        let (mut g, family, _child, media) = engine_with_hierarchy();
        let parent = g.declare_subject_role("parent").unwrap();
        g.specialize(parent, family).unwrap();
        let guest = g.declare_subject_role("guest").unwrap();
        g.add_rule(RuleDef::permit().subject_role(parent).object_role(media))
            .unwrap();
        g.add_rule(RuleDef::deny().subject_role(guest).object_role(media))
            .unwrap();
        assert!(find_conflicts(&g).is_empty());
    }

    #[test]
    fn no_conflict_between_different_transactions() {
        let (mut g, family, _child, media) = engine_with_hierarchy();
        let read = g.declare_transaction("read").unwrap();
        let write = g.declare_transaction("write").unwrap();
        g.add_rule(
            RuleDef::permit()
                .subject_role(family)
                .object_role(media)
                .transaction(read),
        )
        .unwrap();
        g.add_rule(
            RuleDef::deny()
                .subject_role(family)
                .object_role(media)
                .transaction(write),
        )
        .unwrap();
        assert!(find_conflicts(&g).is_empty());
    }

    #[test]
    fn detects_shadowed_rule() {
        let (mut g, family, child, media) = engine_with_hierarchy();
        let broad = g.add_rule(RuleDef::permit().subject_role(family)).unwrap();
        let narrow = g
            .add_rule(RuleDef::permit().subject_role(child).object_role(media))
            .unwrap();
        let shadowed = find_shadowed(&g);
        assert_eq!(
            shadowed,
            vec![ShadowedRule {
                by: broad,
                rule: narrow
            }]
        );
    }

    #[test]
    fn narrower_earlier_rule_does_not_shadow_broader_later() {
        let (mut g, family, child, _media) = engine_with_hierarchy();
        g.add_rule(RuleDef::permit().subject_role(child)).unwrap();
        g.add_rule(RuleDef::permit().subject_role(family)).unwrap();
        assert!(find_shadowed(&g).is_empty());
    }

    #[test]
    fn env_constraints_affect_shadowing() {
        let (mut g, family, _child, _media) = engine_with_hierarchy();
        let weekdays = g.declare_environment_role("weekdays").unwrap();
        let monday = g.declare_environment_role("monday").unwrap();
        g.specialize(monday, weekdays).unwrap();

        // earlier requires weekdays; later requires monday (stronger):
        // every monday request is a weekdays request, so it IS shadowed.
        let broad = g
            .add_rule(RuleDef::permit().subject_role(family).when(weekdays))
            .unwrap();
        let narrow = g
            .add_rule(RuleDef::permit().subject_role(family).when(monday))
            .unwrap();
        assert_eq!(
            find_shadowed(&g),
            vec![ShadowedRule {
                by: broad,
                rule: narrow
            }]
        );

        // The reverse order is not shadowing: a tuesday request matches
        // the weekdays rule but not the monday rule.
        let mut g2 = Grbac::new();
        let family2 = g2.declare_subject_role("family_member").unwrap();
        let weekdays2 = g2.declare_environment_role("weekdays").unwrap();
        let monday2 = g2.declare_environment_role("monday").unwrap();
        g2.specialize(monday2, weekdays2).unwrap();
        g2.add_rule(RuleDef::permit().subject_role(family2).when(monday2))
            .unwrap();
        g2.add_rule(RuleDef::permit().subject_role(family2).when(weekdays2))
            .unwrap();
        assert!(find_shadowed(&g2).is_empty());
    }

    #[test]
    fn stricter_confidence_does_not_shadow() {
        let (mut g, family, _child, _media) = engine_with_hierarchy();
        use crate::confidence::Confidence;
        g.add_rule(
            RuleDef::permit()
                .subject_role(family)
                .min_confidence(Confidence::new(0.99).unwrap()),
        )
        .unwrap();
        g.add_rule(
            RuleDef::permit()
                .subject_role(family)
                .min_confidence(Confidence::new(0.5).unwrap()),
        )
        .unwrap();
        assert!(find_shadowed(&g).is_empty());
    }

    #[test]
    fn decision_matrix_covers_cross_product() {
        let (mut g, family, child, media) = engine_with_hierarchy();
        let view = g.declare_transaction("view").unwrap();
        let _edit = g.declare_transaction("edit").unwrap();
        let kid = g.declare_subject("kid").unwrap();
        g.assign_subject_role(kid, child).unwrap();
        let guest = g.declare_subject("guest").unwrap();
        let album = g.declare_object("album").unwrap();
        g.assign_object_role(album, media).unwrap();
        g.add_rule(
            RuleDef::permit()
                .subject_role(family)
                .object_role(media)
                .transaction(view),
        )
        .unwrap();

        let matrix = super::decision_matrix(&g, &crate::environment::EnvironmentSnapshot::new());
        // 2 subjects × 1 object × 2 transactions.
        assert_eq!(matrix.len(), 4);
        let permits: Vec<_> = matrix
            .iter()
            .filter(|c| c.effect == Effect::Permit)
            .collect();
        assert_eq!(permits.len(), 1);
        assert_eq!(permits[0].subject, kid);
        assert_eq!(permits[0].transaction, view);
        // The unassigned guest is denied everywhere.
        assert!(matrix
            .iter()
            .filter(|c| c.subject == guest)
            .all(|c| c.effect == Effect::Deny));
    }

    #[test]
    fn unused_roles_found() {
        let (mut g, family, child, media) = engine_with_hierarchy();
        let lonely = g.declare_object_role("never_referenced").unwrap();
        g.add_rule(RuleDef::permit().subject_role(family).object_role(media))
            .unwrap();
        let unused = find_unused_roles(&g);
        assert!(unused.contains(&lonely));
        assert!(!unused.contains(&family));
        assert!(!unused.contains(&child), "used via generalization");
        assert!(!unused.contains(&media));
    }

    #[test]
    fn health_report_flags_dead_in_practice() {
        let (mut g, family, child, media) = engine_with_hierarchy();
        let kid = g.declare_subject("kid").unwrap();
        g.assign_subject_role(kid, child).unwrap();
        let tv = g.declare_object("tv").unwrap();
        g.assign_object_role(tv, media).unwrap();
        let use_t = g.declare_transaction("use").unwrap();
        let eclipse = g.declare_environment_role("solar_eclipse").unwrap();
        let hot = g
            .add_rule(RuleDef::permit().subject_role(family).transaction(use_t))
            .unwrap();
        let cold = g
            .add_rule(
                RuleDef::permit()
                    .named("eclipse override")
                    .subject_role(family)
                    .when(eclipse),
            )
            .unwrap();

        // Before any traffic, zero heat is not evidence.
        assert!(health_report(&g).dead_in_practice.is_empty());

        for _ in 0..20 {
            let request = crate::engine::AccessRequest::by_subject(
                kid,
                use_t,
                tv,
                crate::environment::EnvironmentSnapshot::new(),
            );
            g.decide(&request).unwrap();
        }
        let report = health_report(&g);
        if crate::telemetry::ENABLED {
            assert_eq!(report.decisions, 20);
            assert_eq!(report.dead_in_practice, vec![cold]);
            assert!(!report.is_healthy());
            assert!(report.score() < 1.0);
            assert!(report.troubled_rules().contains(&cold));
            let hot_traffic = report.traffic.iter().find(|t| t.rule == hot).unwrap();
            assert_eq!(hot_traffic.matched, 20);
            assert_eq!(hot_traffic.won_permit, 20);
            assert_eq!(hot_traffic.label, hot.to_string(), "anonymous rule");
            let cold_traffic = report.traffic.iter().find(|t| t.rule == cold).unwrap();
            assert_eq!(cold_traffic.label, "eclipse override");
            assert_eq!(cold_traffic.last_fired_generation, None);
            // Role analytics: the subject role carries the traffic, the
            // eclipse role carries none.
            let family_usage = report.role_usage.iter().find(|u| u.role == family).unwrap();
            assert_eq!(family_usage.referencing_rules, 2);
            assert_eq!(family_usage.matched, 20);
            let eclipse_usage = report
                .role_usage
                .iter()
                .find(|u| u.role == eclipse)
                .unwrap();
            assert_eq!(eclipse_usage.referencing_rules, 1);
            assert_eq!(eclipse_usage.matched, 0);
        } else {
            assert_eq!(report.decisions, 0);
            assert!(report.dead_in_practice.is_empty());
        }
    }

    #[test]
    fn health_report_confirms_shadowing_with_heat() {
        let (mut g, family, child, media) = engine_with_hierarchy();
        let kid = g.declare_subject("kid").unwrap();
        g.assign_subject_role(kid, child).unwrap();
        let tv = g.declare_object("tv").unwrap();
        g.assign_object_role(tv, media).unwrap();
        let use_t = g.declare_transaction("use").unwrap();
        let broad = g.add_rule(RuleDef::permit().subject_role(family)).unwrap();
        let narrow = g
            .add_rule(RuleDef::permit().subject_role(child).object_role(media))
            .unwrap();
        g.set_strategy(crate::precedence::ConflictStrategy::FirstApplicable);

        for _ in 0..10 {
            let request = crate::engine::AccessRequest::by_subject(
                kid,
                use_t,
                tv,
                crate::environment::EnvironmentSnapshot::new(),
            );
            g.decide(&request).unwrap();
        }
        let report = health_report(&g);
        if crate::telemetry::ENABLED {
            assert_eq!(
                report.heat_confirmed_shadowed,
                vec![ShadowedRule {
                    by: broad,
                    rule: narrow
                }]
            );
            // The shadowed rule matched but never won.
            let t = report.traffic.iter().find(|t| t.rule == narrow).unwrap();
            assert_eq!(t.matched, 10);
            assert_eq!(t.won_permit + t.won_deny, 0);
        }
    }

    #[test]
    fn health_report_tracks_generation_drift() {
        let (mut g, family, child, media) = engine_with_hierarchy();
        let kid = g.declare_subject("kid").unwrap();
        g.assign_subject_role(kid, child).unwrap();
        let tv = g.declare_object("tv").unwrap();
        g.assign_object_role(tv, media).unwrap();
        let use_t = g.declare_transaction("use").unwrap();
        let view = g.declare_transaction("view").unwrap();
        let use_rule = g
            .add_rule(RuleDef::permit().subject_role(family).transaction(use_t))
            .unwrap();
        let view_rule = g
            .add_rule(RuleDef::permit().subject_role(family).transaction(view))
            .unwrap();

        let request = |t| {
            crate::engine::AccessRequest::by_subject(
                kid,
                t,
                tv,
                crate::environment::EnvironmentSnapshot::new(),
            )
        };
        g.decide(&request(use_t)).unwrap();
        g.decide(&request(view)).unwrap();
        assert!(health_report(&g).drifted.is_empty());

        // A policy edit bumps the generation; only `view` traffic
        // continues, so the use rule drifts cold.
        g.declare_environment_role("post_edit_marker").unwrap();
        g.decide(&request(view)).unwrap();
        let report = health_report(&g);
        if crate::telemetry::ENABLED {
            assert_eq!(report.drifted, vec![use_rule]);
            assert!(!report.drifted.contains(&view_rule));
            assert!(!report.is_healthy());
        }
    }

    #[test]
    fn memberless_rules_found_and_resolved_by_descendants() {
        let (mut g, family, child, media) = engine_with_hierarchy();
        let rule = g
            .add_rule(RuleDef::permit().subject_role(family).object_role(media))
            .unwrap();
        assert_eq!(find_memberless_rules(&g), vec![rule]);
        // Assigning a member to the *specialization* resolves it.
        let kid = g.declare_subject("kid").unwrap();
        g.assign_subject_role(kid, child).unwrap();
        assert!(find_memberless_rules(&g).is_empty());
    }
}
