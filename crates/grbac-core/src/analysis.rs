//! Static policy analysis.
//!
//! The paper warns that GRBAC's generality "makes it even more
//! susceptible to various types of policy conflicts and ambiguities"
//! (§4.2.4) and pitches well-structured policies as the mitigation. This
//! module provides the tooling: detecting permit/deny conflicts, rules
//! shadowed under first-applicable resolution, and declared-but-unused
//! roles — the "policy bugs" of §4.1.2.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::engine::Grbac;
use crate::id::{RoleId, RuleId};
use crate::role::RoleKind;
use crate::rule::{Effect, RoleSpec, Rule, TransactionSpec};

/// A potential permit/deny conflict between two rules.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuleConflict {
    /// The permitting rule.
    pub permit: RuleId,
    /// The denying rule.
    pub deny: RuleId,
}

/// A rule that can never fire under first-applicable resolution because
/// an earlier rule matches every request it would match.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShadowedRule {
    /// The earlier, covering rule.
    pub by: RuleId,
    /// The later rule that can never win.
    pub rule: RuleId,
}

/// The result of a policy analysis pass.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicyReport {
    /// Permit/deny rule pairs that can both match some request.
    pub conflicts: Vec<RuleConflict>,
    /// Rules unreachable under first-applicable resolution.
    pub shadowed: Vec<ShadowedRule>,
    /// Roles referenced by no rule (likely dead policy vocabulary).
    pub unused_roles: BTreeSet<RoleId>,
    /// Subject-role rules whose role has no members (dead rules today,
    /// though they may come alive as users are assigned).
    pub memberless_rules: Vec<RuleId>,
}

impl PolicyReport {
    /// True if the analysis found nothing worth flagging.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.conflicts.is_empty()
            && self.shadowed.is_empty()
            && self.unused_roles.is_empty()
            && self.memberless_rules.is_empty()
    }
}

/// Runs every analysis over the engine's current policy.
#[must_use]
pub fn analyze(grbac: &Grbac) -> PolicyReport {
    PolicyReport {
        conflicts: find_conflicts(grbac),
        shadowed: find_shadowed(grbac),
        unused_roles: find_unused_roles(grbac),
        memberless_rules: find_memberless_rules(grbac),
    }
}

/// Finds permit/deny pairs that can match the same request.
///
/// Two rules can co-fire when every constrained position overlaps:
/// role specs overlap when one is `Any` or the two roles have a common
/// descendant (some entity could hold both); environment conjunctions
/// never exclude each other (any set of environment roles can be active
/// together); transactions overlap when either is `Any` or they are
/// equal.
#[must_use]
pub fn find_conflicts(grbac: &Grbac) -> Vec<RuleConflict> {
    let rules = grbac.rules();
    let mut out = Vec::new();
    for (i, a) in rules.iter().enumerate() {
        for b in &rules[i + 1..] {
            if a.effect() == b.effect() {
                continue;
            }
            if rules_overlap(grbac, a, b) {
                let (permit, deny) = if a.effect() == Effect::Permit {
                    (a.id(), b.id())
                } else {
                    (b.id(), a.id())
                };
                out.push(RuleConflict { permit, deny });
            }
        }
    }
    out
}

/// Finds rules that a strictly earlier rule completely covers.
#[must_use]
pub fn find_shadowed(grbac: &Grbac) -> Vec<ShadowedRule> {
    let rules = grbac.rules();
    let mut out = Vec::new();
    for (i, earlier) in rules.iter().enumerate() {
        for later in &rules[i + 1..] {
            if rule_covers(grbac, earlier, later) {
                out.push(ShadowedRule {
                    by: earlier.id(),
                    rule: later.id(),
                });
            }
        }
    }
    out
}

/// Roles (of any kind) referenced by no rule, directly or through the
/// hierarchy: a role is "used" if some rule names it or names one of its
/// generalizations (rules about `family_member` make `child` useful).
#[must_use]
pub fn find_unused_roles(grbac: &Grbac) -> BTreeSet<RoleId> {
    let mut referenced = BTreeSet::new();
    for rule in grbac.rules() {
        if let RoleSpec::Is(r) = rule.subject_role() {
            referenced.insert(r);
        }
        if let RoleSpec::Is(r) = rule.object_role() {
            referenced.insert(r);
        }
        referenced.extend(rule.environment_roles().iter().copied());
    }
    grbac
        .roles()
        .iter()
        .map(crate::role::Role::id)
        .filter(|&id| {
            // A role is used if its closure (itself or any generalization)
            // intersects the referenced set.
            grbac
                .roles()
                .closure(id)
                .map(|closure| closure.is_disjoint(&referenced))
                .unwrap_or(true)
        })
        .collect()
}

/// Rules constrained to a subject role that currently has no members
/// (considering hierarchy: members of specializations count).
#[must_use]
pub fn find_memberless_rules(grbac: &Grbac) -> Vec<RuleId> {
    grbac
        .rules()
        .iter()
        .filter(|rule| {
            let RoleSpec::Is(role) = rule.subject_role() else {
                return false;
            };
            let hierarchy = grbac.roles().hierarchy(RoleKind::Subject);
            let mut candidates = hierarchy.descendants(role);
            candidates.insert(role);
            candidates
                .iter()
                .all(|&r| grbac.assignments().subjects_in(r).is_empty())
        })
        .map(Rule::id)
        .collect()
}

/// One cell of a [`decision_matrix`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixCell {
    /// The requesting subject.
    pub subject: crate::id::SubjectId,
    /// The target object.
    pub object: crate::id::ObjectId,
    /// The attempted transaction.
    pub transaction: crate::id::TransactionId,
    /// The outcome under the supplied environment.
    pub effect: Effect,
}

/// Mediates every (subject × object × transaction) combination under
/// one environment snapshot — the §5.1 "decision matrix" a homeowner
/// would review to understand the policy's full reach.
///
/// Cells come out sorted by (subject, object, transaction). Intended
/// for review tooling and tests; cost is the full cross product.
#[must_use]
pub fn decision_matrix(
    grbac: &Grbac,
    environment: &crate::environment::EnvironmentSnapshot,
) -> Vec<MatrixCell> {
    let mut subjects: Vec<_> = grbac.entities().subjects().map(|s| s.id()).collect();
    subjects.sort_unstable();
    let mut objects: Vec<_> = grbac.entities().objects().map(|o| o.id()).collect();
    objects.sort_unstable();
    let mut transactions: Vec<_> = grbac.entities().transactions().map(|t| t.id()).collect();
    transactions.sort_unstable();

    let mut cells = Vec::with_capacity(subjects.len() * objects.len() * transactions.len());
    for &subject in &subjects {
        for &object in &objects {
            for &transaction in &transactions {
                let request = crate::engine::AccessRequest::by_subject(
                    subject,
                    transaction,
                    object,
                    environment.clone(),
                );
                let effect = grbac.decide(&request).map_or(Effect::Deny, |d| d.effect());
                cells.push(MatrixCell {
                    subject,
                    object,
                    transaction,
                    effect,
                });
            }
        }
    }
    cells
}

fn rules_overlap(grbac: &Grbac, a: &Rule, b: &Rule) -> bool {
    transactions_overlap(a.transaction(), b.transaction())
        && role_specs_overlap(grbac, RoleKind::Subject, a.subject_role(), b.subject_role())
        && role_specs_overlap(grbac, RoleKind::Object, a.object_role(), b.object_role())
}

fn transactions_overlap(a: TransactionSpec, b: TransactionSpec) -> bool {
    match (a, b) {
        (TransactionSpec::Any, _) | (_, TransactionSpec::Any) => true,
        (TransactionSpec::Is(x), TransactionSpec::Is(y)) => x == y,
    }
}

fn role_specs_overlap(grbac: &Grbac, kind: RoleKind, a: RoleSpec, b: RoleSpec) -> bool {
    match (a, b) {
        (RoleSpec::Any, _) | (_, RoleSpec::Any) => true,
        (RoleSpec::Is(x), RoleSpec::Is(y)) => {
            grbac.roles().hierarchy(kind).have_common_descendant(x, y)
        }
    }
}

/// True when every request matching `later` also matches `earlier`.
fn rule_covers(grbac: &Grbac, earlier: &Rule, later: &Rule) -> bool {
    transaction_covers(earlier.transaction(), later.transaction())
        && role_spec_covers(
            grbac,
            RoleKind::Subject,
            earlier.subject_role(),
            later.subject_role(),
        )
        && role_spec_covers(
            grbac,
            RoleKind::Object,
            earlier.object_role(),
            later.object_role(),
        )
        && env_covers(
            grbac,
            earlier.environment_roles(),
            later.environment_roles(),
        )
        && confidence_covers(earlier, later)
}

fn transaction_covers(earlier: TransactionSpec, later: TransactionSpec) -> bool {
    match (earlier, later) {
        (TransactionSpec::Any, _) => true,
        (TransactionSpec::Is(x), TransactionSpec::Is(y)) => x == y,
        (TransactionSpec::Is(_), TransactionSpec::Any) => false,
    }
}

fn role_spec_covers(grbac: &Grbac, kind: RoleKind, earlier: RoleSpec, later: RoleSpec) -> bool {
    match (earlier, later) {
        (RoleSpec::Any, _) => true,
        (RoleSpec::Is(_), RoleSpec::Any) => false,
        (RoleSpec::Is(e), RoleSpec::Is(l)) => {
            // Anything possessing `l` also possesses everything in `l`'s
            // closure; so `earlier` covers iff e is in that closure.
            grbac.roles().hierarchy(kind).is_specialization_of(l, e)
        }
    }
}

fn env_covers(grbac: &Grbac, earlier: &[RoleId], later: &[RoleId]) -> bool {
    // Every env requirement of `earlier` must be implied whenever all of
    // `later`'s requirements hold: some later-role must specialize it.
    let hierarchy = grbac.roles().hierarchy(RoleKind::Environment);
    earlier
        .iter()
        .all(|&e| later.iter().any(|&l| hierarchy.is_specialization_of(l, e)))
}

/// A permit rule with a *stricter* threshold than a later permit rule
/// does not cover it (the later rule fires at lower confidences).
fn confidence_covers(earlier: &Rule, later: &Rule) -> bool {
    if earlier.effect() != Effect::Permit || later.effect() != Effect::Permit {
        return true;
    }
    match (earlier.min_confidence(), later.min_confidence()) {
        (None, _) => true, // engine default on both sides; conservative
        (Some(_), None) => false,
        (Some(e), Some(l)) => e <= l,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::RuleDef;

    fn engine_with_hierarchy() -> (Grbac, RoleId, RoleId, RoleId) {
        let mut g = Grbac::new();
        let family = g.declare_subject_role("family_member").unwrap();
        let child = g.declare_subject_role("child").unwrap();
        g.specialize(child, family).unwrap();
        let media = g.declare_object_role("media").unwrap();
        (g, family, child, media)
    }

    #[test]
    fn clean_policy_reports_clean() {
        let (mut g, family, child, media) = engine_with_hierarchy();
        let s = g.declare_subject("kid").unwrap();
        g.assign_subject_role(s, child).unwrap();
        g.add_rule(RuleDef::permit().subject_role(family).object_role(media))
            .unwrap();
        let report = analyze(&g);
        // `child` is used through its generalization `family_member`.
        assert!(report.conflicts.is_empty());
        assert!(report.shadowed.is_empty());
        assert!(!report.unused_roles.contains(&child));
        assert!(report.memberless_rules.is_empty());
    }

    #[test]
    fn detects_permit_deny_conflict_through_hierarchy() {
        let (mut g, family, child, media) = engine_with_hierarchy();
        let permit = g
            .add_rule(RuleDef::permit().subject_role(family).object_role(media))
            .unwrap();
        let deny = g
            .add_rule(RuleDef::deny().subject_role(child).object_role(media))
            .unwrap();
        let conflicts = find_conflicts(&g);
        assert_eq!(conflicts, vec![RuleConflict { permit, deny }]);
    }

    #[test]
    fn no_conflict_between_disjoint_sibling_roles() {
        let (mut g, family, _child, media) = engine_with_hierarchy();
        let parent = g.declare_subject_role("parent").unwrap();
        g.specialize(parent, family).unwrap();
        let guest = g.declare_subject_role("guest").unwrap();
        g.add_rule(RuleDef::permit().subject_role(parent).object_role(media))
            .unwrap();
        g.add_rule(RuleDef::deny().subject_role(guest).object_role(media))
            .unwrap();
        assert!(find_conflicts(&g).is_empty());
    }

    #[test]
    fn no_conflict_between_different_transactions() {
        let (mut g, family, _child, media) = engine_with_hierarchy();
        let read = g.declare_transaction("read").unwrap();
        let write = g.declare_transaction("write").unwrap();
        g.add_rule(
            RuleDef::permit()
                .subject_role(family)
                .object_role(media)
                .transaction(read),
        )
        .unwrap();
        g.add_rule(
            RuleDef::deny()
                .subject_role(family)
                .object_role(media)
                .transaction(write),
        )
        .unwrap();
        assert!(find_conflicts(&g).is_empty());
    }

    #[test]
    fn detects_shadowed_rule() {
        let (mut g, family, child, media) = engine_with_hierarchy();
        let broad = g.add_rule(RuleDef::permit().subject_role(family)).unwrap();
        let narrow = g
            .add_rule(RuleDef::permit().subject_role(child).object_role(media))
            .unwrap();
        let shadowed = find_shadowed(&g);
        assert_eq!(
            shadowed,
            vec![ShadowedRule {
                by: broad,
                rule: narrow
            }]
        );
    }

    #[test]
    fn narrower_earlier_rule_does_not_shadow_broader_later() {
        let (mut g, family, child, _media) = engine_with_hierarchy();
        g.add_rule(RuleDef::permit().subject_role(child)).unwrap();
        g.add_rule(RuleDef::permit().subject_role(family)).unwrap();
        assert!(find_shadowed(&g).is_empty());
    }

    #[test]
    fn env_constraints_affect_shadowing() {
        let (mut g, family, _child, _media) = engine_with_hierarchy();
        let weekdays = g.declare_environment_role("weekdays").unwrap();
        let monday = g.declare_environment_role("monday").unwrap();
        g.specialize(monday, weekdays).unwrap();

        // earlier requires weekdays; later requires monday (stronger):
        // every monday request is a weekdays request, so it IS shadowed.
        let broad = g
            .add_rule(RuleDef::permit().subject_role(family).when(weekdays))
            .unwrap();
        let narrow = g
            .add_rule(RuleDef::permit().subject_role(family).when(monday))
            .unwrap();
        assert_eq!(
            find_shadowed(&g),
            vec![ShadowedRule {
                by: broad,
                rule: narrow
            }]
        );

        // The reverse order is not shadowing: a tuesday request matches
        // the weekdays rule but not the monday rule.
        let mut g2 = Grbac::new();
        let family2 = g2.declare_subject_role("family_member").unwrap();
        let weekdays2 = g2.declare_environment_role("weekdays").unwrap();
        let monday2 = g2.declare_environment_role("monday").unwrap();
        g2.specialize(monday2, weekdays2).unwrap();
        g2.add_rule(RuleDef::permit().subject_role(family2).when(monday2))
            .unwrap();
        g2.add_rule(RuleDef::permit().subject_role(family2).when(weekdays2))
            .unwrap();
        assert!(find_shadowed(&g2).is_empty());
    }

    #[test]
    fn stricter_confidence_does_not_shadow() {
        let (mut g, family, _child, _media) = engine_with_hierarchy();
        use crate::confidence::Confidence;
        g.add_rule(
            RuleDef::permit()
                .subject_role(family)
                .min_confidence(Confidence::new(0.99).unwrap()),
        )
        .unwrap();
        g.add_rule(
            RuleDef::permit()
                .subject_role(family)
                .min_confidence(Confidence::new(0.5).unwrap()),
        )
        .unwrap();
        assert!(find_shadowed(&g).is_empty());
    }

    #[test]
    fn decision_matrix_covers_cross_product() {
        let (mut g, family, child, media) = engine_with_hierarchy();
        let view = g.declare_transaction("view").unwrap();
        let _edit = g.declare_transaction("edit").unwrap();
        let kid = g.declare_subject("kid").unwrap();
        g.assign_subject_role(kid, child).unwrap();
        let guest = g.declare_subject("guest").unwrap();
        let album = g.declare_object("album").unwrap();
        g.assign_object_role(album, media).unwrap();
        g.add_rule(
            RuleDef::permit()
                .subject_role(family)
                .object_role(media)
                .transaction(view),
        )
        .unwrap();

        let matrix = super::decision_matrix(&g, &crate::environment::EnvironmentSnapshot::new());
        // 2 subjects × 1 object × 2 transactions.
        assert_eq!(matrix.len(), 4);
        let permits: Vec<_> = matrix
            .iter()
            .filter(|c| c.effect == Effect::Permit)
            .collect();
        assert_eq!(permits.len(), 1);
        assert_eq!(permits[0].subject, kid);
        assert_eq!(permits[0].transaction, view);
        // The unassigned guest is denied everywhere.
        assert!(matrix
            .iter()
            .filter(|c| c.subject == guest)
            .all(|c| c.effect == Effect::Deny));
    }

    #[test]
    fn unused_roles_found() {
        let (mut g, family, child, media) = engine_with_hierarchy();
        let lonely = g.declare_object_role("never_referenced").unwrap();
        g.add_rule(RuleDef::permit().subject_role(family).object_role(media))
            .unwrap();
        let unused = find_unused_roles(&g);
        assert!(unused.contains(&lonely));
        assert!(!unused.contains(&family));
        assert!(!unused.contains(&child), "used via generalization");
        assert!(!unused.contains(&media));
    }

    #[test]
    fn memberless_rules_found_and_resolved_by_descendants() {
        let (mut g, family, child, media) = engine_with_hierarchy();
        let rule = g
            .add_rule(RuleDef::permit().subject_role(family).object_role(media))
            .unwrap();
        assert_eq!(find_memberless_rules(&g), vec![rule]);
        // Assigning a member to the *specialization* resolves it.
        let kid = g.declare_subject("kid").unwrap();
        g.assign_subject_role(kid, child).unwrap();
        assert!(find_memberless_rules(&g).is_empty());
    }
}
