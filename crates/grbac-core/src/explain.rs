//! Decisions and their explanations.
//!
//! The paper's usability thesis — homeowners must be able to understand
//! their policies — motivates returning not just permit/deny but a full
//! account of *why*: which roles the requester was found to hold (and
//! with what confidence), which rules matched, which rule won and under
//! which conflict-resolution strategy.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::confidence::Confidence;
use crate::degraded::DegradedReason;
use crate::id::{RoleId, RuleId};
use crate::precedence::ConflictStrategy;
use crate::rule::Effect;

/// A rule that matched a request, with the bindings that made it match.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatchedRule {
    /// The matching rule.
    pub rule: RuleId,
    /// The rule's effect.
    pub effect: Effect,
    /// Position of the rule in policy order (for first-applicable).
    pub position: usize,
    /// Confidence of the subject-role binding that satisfied the rule
    /// ([`Confidence::FULL`] for session/trusted actors or `Any` specs).
    pub subject_confidence: Confidence,
    /// Shortest hierarchy distance from a directly-held subject role to
    /// the rule's subject role (`0` = direct, `usize::MAX` = `Any` spec).
    pub subject_distance: usize,
    /// Same, for the object position.
    pub object_distance: usize,
    /// How many positions the rule constrains (tie-breaker).
    pub constraint_count: usize,
}

impl MatchedRule {
    /// Combined hierarchy distance used by the most-specific strategy;
    /// saturating so `Any` specs never overflow.
    #[must_use]
    pub fn total_distance(&self) -> usize {
        self.subject_distance.saturating_add(self.object_distance)
    }
}

/// Why the engine reached its decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Reason {
    /// No rule matched; the engine fell back to its default decision.
    DefaultDecision,
    /// Exactly one or more rules matched and the strategy picked a winner.
    ResolvedBy(ConflictStrategy),
    /// At least one permit rule would have matched but the subject-role
    /// confidence fell short of the required threshold, and no other rule
    /// carried the decision.
    ConfidenceTooLow {
        /// The threshold the best candidate failed to meet.
        required: Confidence,
        /// The confidence actually established.
        achieved: Confidence,
    },
}

/// The full account of a mediation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Explanation {
    /// Hierarchy-expanded subject roles the requester was found to hold.
    pub subject_roles: BTreeSet<RoleId>,
    /// Hierarchy-expanded roles of the target object.
    pub object_roles: BTreeSet<RoleId>,
    /// Hierarchy-expanded environment roles active during the request.
    pub environment_roles: BTreeSet<RoleId>,
    /// Every rule that matched, in policy order.
    pub matched: Vec<MatchedRule>,
    /// The rule that carried the decision, if any.
    pub winner: Option<RuleId>,
    /// Why the decision came out the way it did.
    pub reason: Reason,
}

/// The outcome of mediating one access request.
///
/// Equality compares decision *content* (effect, explanation, degraded
/// annotation) and deliberately ignores the correlation
/// [`DecisionId`](crate::id::DecisionId): the compiled and naive paths
/// must produce equal decisions even though only the compiled entry
/// points mint ids.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Decision {
    effect: Effect,
    explanation: Explanation,
    /// Present when the decision was reached under degraded environment
    /// data (defaults to `None` for decisions serialized before the
    /// field existed).
    #[serde(default)]
    degraded: Option<DegradedReason>,
    /// Correlation id minted at the decide entry point (unassigned on
    /// synthesized decisions, naive-path replays and older captures).
    #[serde(default)]
    decision_id: crate::id::DecisionId,
}

impl PartialEq for Decision {
    fn eq(&self, other: &Self) -> bool {
        self.effect == other.effect
            && self.explanation == other.explanation
            && self.degraded == other.degraded
    }
}

impl Decision {
    /// Assembles a decision from its parts. Produced by the engine;
    /// public so application layers and tests can synthesize decisions.
    #[must_use]
    pub fn new(effect: Effect, explanation: Explanation) -> Self {
        Self {
            effect,
            explanation,
            degraded: None,
            decision_id: crate::id::DecisionId::UNASSIGNED,
        }
    }

    /// Attaches the correlation id minted for this decision (builder
    /// style). Set by the engine's minting entry points.
    #[must_use]
    pub fn with_decision_id(mut self, id: crate::id::DecisionId) -> Self {
        self.decision_id = id;
        self
    }

    /// The correlation id minted for this decision, or
    /// [`DecisionId::UNASSIGNED`](crate::id::DecisionId::UNASSIGNED)
    /// when the mediation path did not mint (naive replays, synthesized
    /// decisions).
    #[must_use]
    pub fn decision_id(&self) -> crate::id::DecisionId {
        self.decision_id
    }

    /// Attaches a degraded-mode annotation (builder style). The engine
    /// sets this when the request's environment health forced a
    /// [`DegradedMode`](crate::degraded::DegradedMode) posture to apply.
    #[must_use]
    pub fn with_degraded(mut self, reason: Option<DegradedReason>) -> Self {
        self.degraded = reason;
        self
    }

    /// Why this decision ran degraded, if it did.
    #[must_use]
    pub fn degraded(&self) -> Option<&DegradedReason> {
        self.degraded.as_ref()
    }

    /// True when the decision was reached under degraded environment
    /// data.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.degraded.is_some()
    }

    /// Permit or Deny.
    #[must_use]
    pub fn effect(&self) -> Effect {
        self.effect
    }

    /// True if the request was permitted.
    #[must_use]
    pub fn is_permitted(&self) -> bool {
        self.effect == Effect::Permit
    }

    /// The full explanation of the decision.
    #[must_use]
    pub fn explanation(&self) -> &Explanation {
        &self.explanation
    }

    /// The winning rule, if one carried the decision.
    #[must_use]
    pub fn winning_rule(&self) -> Option<RuleId> {
        self.explanation.winner
    }
}

impl std::fmt::Display for Decision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.explanation.winner {
            Some(rule) => write!(f, "{} (by {rule})", self.effect)?,
            None => write!(f, "{} (default)", self.effect)?,
        }
        if self.degraded.is_some() {
            write!(f, " [degraded]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_explanation() -> Explanation {
        Explanation {
            subject_roles: BTreeSet::new(),
            object_roles: BTreeSet::new(),
            environment_roles: BTreeSet::new(),
            matched: Vec::new(),
            winner: None,
            reason: Reason::DefaultDecision,
        }
    }

    #[test]
    fn decision_accessors() {
        let d = Decision::new(Effect::Deny, sample_explanation());
        assert!(!d.is_permitted());
        assert_eq!(d.effect(), Effect::Deny);
        assert_eq!(d.winning_rule(), None);
        assert_eq!(d.to_string(), "deny (default)");
    }

    #[test]
    fn decision_with_winner_displays_rule() {
        let mut e = sample_explanation();
        e.winner = Some(RuleId::from_raw(3));
        e.reason = Reason::ResolvedBy(ConflictStrategy::DenyOverrides);
        let d = Decision::new(Effect::Permit, e);
        assert!(d.is_permitted());
        assert_eq!(d.to_string(), "permit (by rule3)");
    }

    #[test]
    fn degraded_annotation_round_trips() {
        let d = Decision::new(Effect::Deny, sample_explanation())
            .with_degraded(Some(DegradedReason::EnvUnavailable));
        assert!(d.is_degraded());
        assert_eq!(d.degraded(), Some(&DegradedReason::EnvUnavailable));
        assert_eq!(d.to_string(), "deny (default) [degraded]");
        let json = serde_json::to_string(&d).unwrap();
        let back: Decision = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
        // Decisions serialized before the field existed still load.
        let legacy = serde_json::to_string(&Decision::new(Effect::Deny, sample_explanation()))
            .unwrap()
            .replace(",\"degraded\":null", "");
        let back: Decision = serde_json::from_str(&legacy).unwrap();
        assert!(!back.is_degraded());
    }

    #[test]
    fn total_distance_saturates() {
        let m = MatchedRule {
            rule: RuleId::from_raw(0),
            effect: Effect::Permit,
            position: 0,
            subject_confidence: Confidence::FULL,
            subject_distance: usize::MAX,
            object_distance: 3,
            constraint_count: 1,
        };
        assert_eq!(m.total_distance(), usize::MAX);
    }
}
