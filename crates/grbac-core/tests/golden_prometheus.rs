//! Prometheus exposition-format conformance, pinned by a golden file.
//!
//! A deterministically-populated registry must render byte-for-byte
//! the same scrape payload on every run: `# HELP`/`# TYPE` headers on
//! every family, cumulative `_bucket` series with `le` labels ending
//! in `+Inf`, `_sum`/`_count` for histograms and summaries, and the
//! stage-quantile summary family. Regenerate the golden after an
//! intentional format change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p grbac-core --test golden_prometheus
//! ```

use grbac_core::telemetry::{
    self, AlertKind, DeltaKind, EventData, EventFilter, Exporter, MetricsRegistry,
    PrometheusExporter,
};
use grbac_core::{DecisionId, Effect};

/// Fixed observations covering every metric kind the exporter renders.
fn populated_registry() -> MetricsRegistry {
    let registry = MetricsRegistry::new();
    registry.decisions_permit.add(7);
    registry.decisions_deny.add(3);
    registry.decide_errors.inc();
    registry.decisions_sampled.add(4);
    registry.decisions_degraded.add(2);
    registry.index_rebuilds.inc();
    registry.index_full_rebuilds.inc();
    registry.index_rebuild_ns.add(52_000);
    registry.index_cache_hits.add(9);
    registry
        .index_delta_applied
        .add(DeltaKind::RuleAdded.slot(), 3);
    registry
        .index_delta_applied
        .add(DeltaKind::EdgeAdded.slot(), 1);
    for nanos in [1_200u64, 4_800] {
        registry.index_delta_apply_ns.observe(nanos);
    }
    registry.closure_cache_hits.add(6);
    registry.closure_cache_misses.add(2);
    registry.batch_calls.inc();
    registry.batch_size.observe(64);
    registry.audit_permit_total.set(7);
    registry.audit_deny_total.set(3);
    registry.audit_retained.set(10);
    registry.index_roles.set(12);
    registry.index_rule_buckets.set(5);
    registry.index_max_bucket.set(3);
    registry.rule_matches_by_transaction.add(0, 5);
    registry.rule_matches_by_transaction.add(1, 2);
    registry.rule_heat.reset();
    registry
        .rule_heat
        .record_decision([0u64, 1], Some(0), true, 4);
    registry
        .rule_heat
        .record_decision([0u64, 2], Some(2), false, 4);
    registry.watchdog_ticks.add(3);
    registry
        .alerts_by_kind
        .add(AlertKind::DenyRateSpike.slot(), 2);
    registry
        .alerts_by_kind
        .add(AlertKind::StalenessBurn.slot(), 1);
    registry.watchdog_deny_baseline_ppm.set(50_000);
    registry.watchdog_degraded_baseline_ppm.set(1_000);
    registry.watchdog_flap_baseline_ppm.set(250_000);
    registry.watchdog_staleness_baseline_ppm.set(0);
    for nanos in [800u64, 2_500, 21_000] {
        registry.decide_latency_ns.observe(nanos);
        registry.decide_latency_sketch.observe(nanos);
    }
    for (index, sketch) in registry.stage_latency.iter().enumerate() {
        sketch.observe(100 * (index as u64 + 1));
        sketch.observe(200 * (index as u64 + 1));
    }
    // Event bus: one live subscriber with a 2-event ring, three
    // decision events (so one drops) plus one delta install. The
    // subscription is leaked on purpose so the subscriber gauge reads
    // 1 at snapshot time.
    let subscription = registry.events.subscribe(2, EventFilter::all());
    for seq in 1..=3u64 {
        registry.events.publish_decision(
            DecisionId::from_parts(1, seq),
            if seq == 3 {
                Effect::Deny
            } else {
                Effect::Permit
            },
            false,
        );
    }
    registry.events.publish(EventData::DeltaApplied {
        generation: 4,
        patched: true,
        install_ns: 1_200,
    });
    std::mem::forget(subscription);
    registry
}

#[test]
fn scrape_payload_matches_the_golden_file() {
    if !telemetry::ENABLED {
        return; // all readings are zero under telemetry-off
    }
    let registry = populated_registry();
    let snapshot = registry.snapshot_with(|key| format!("t{key}"));
    let text = PrometheusExporter.export(&snapshot);

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/prometheus.txt");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &text).expect("golden file writable");
    }
    let golden = std::fs::read_to_string(path).expect("golden file present");
    assert_eq!(
        text, golden,
        "scrape payload drifted from the golden file; \
         rerun with UPDATE_GOLDEN=1 if the change is intentional"
    );
}

/// Structural conformance, independent of the pinned bytes: every
/// sample family carries HELP and TYPE headers, histogram buckets are
/// cumulative and close with `+Inf`, and histograms and summaries both
/// expose `_sum` and `_count`.
#[test]
fn scrape_payload_is_structurally_conformant() {
    if !telemetry::ENABLED {
        return;
    }
    let registry = populated_registry();
    let snapshot = registry.snapshot_with(|key| format!("t{key}"));
    let text = PrometheusExporter.export(&snapshot);

    let mut families: Vec<&str> = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            families.push(rest.split_whitespace().next().expect("family name"));
        }
    }
    assert!(!families.is_empty());
    for family in &families {
        assert!(
            text.contains(&format!("# HELP {family} ")),
            "family {family} is missing its HELP line"
        );
    }

    // decide latency histogram: cumulative buckets ending in +Inf.
    let buckets: Vec<u64> = text
        .lines()
        .filter(|l| l.starts_with("grbac_decide_latency_ns_bucket{le="))
        .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
        .collect();
    assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "non-cumulative");
    assert!(text.contains("grbac_decide_latency_ns_bucket{le=\"+Inf\"} 3"));
    assert!(text.contains("grbac_decide_latency_ns_sum 24300"));
    assert!(text.contains("grbac_decide_latency_ns_count 3"));

    // stage summary: quantile labels plus per-series _sum/_count.
    for quantile in ["0.5", "0.95", "0.99"] {
        assert!(text.contains(&format!(
            "grbac_stage_latency_ns{{stage=\"subject_expansion\",quantile=\"{quantile}\"}}"
        )));
    }
    assert!(text.contains("grbac_stage_latency_ns_count{stage=\"subject_expansion\"} 2"));
    assert!(text.contains("grbac_stage_latency_ns_count{stage=\"total\"} 3"));

    // Heat families: rule-labelled counters with permit/deny split,
    // plus the enablement gauge and reset counter.
    assert!(text.contains("grbac_rule_heat_matched_total{rule=\"rule0\"} 2"));
    assert!(text.contains("grbac_rule_heat_matched_total{rule=\"rule1\"} 1"));
    assert!(text.contains("grbac_rule_heat_won_permit_total{rule=\"rule0\"} 1"));
    assert!(text.contains("grbac_rule_heat_won_deny_total{rule=\"rule2\"} 1"));
    assert!(text.contains("grbac_rule_heat_resets_total 1"));
    assert!(text.contains("grbac_rule_heat_enabled 1"));

    // Watchdog families: alert counters keyed by alert kind, tick
    // counter, and ppm baseline gauges.
    assert!(text.contains("grbac_alerts_total{kind=\"deny_rate_spike\"} 2"));
    assert!(text.contains("grbac_alerts_total{kind=\"staleness_burn\"} 1"));
    assert!(text.contains("grbac_watchdog_ticks_total 3"));
    assert!(text.contains("grbac_watchdog_deny_baseline_ppm 50000"));

    // Incremental-maintenance families: install split (all installs vs
    // from-scratch rebuilds), per-kind delta counters, and the
    // delta-apply latency summary.
    assert!(text.contains("grbac_index_rebuilds_total 1"));
    assert!(text.contains("grbac_index_full_rebuilds_total 1"));
    assert!(text.contains("grbac_index_delta_applied_total{kind=\"rule_added\"} 3"));
    assert!(text.contains("grbac_index_delta_applied_total{kind=\"edge_added\"} 1"));
    assert!(text.contains("grbac_index_delta_apply_ns_count{op=\"apply\"} 2"));
    assert!(text.contains("grbac_index_delta_apply_ns_sum{op=\"apply\"} 6000"));

    // Event-bus families: per-kind publish counters, the drop counter
    // fed by slow subscribers' ring evictions, and the subscriber /
    // kill-switch gauges.
    assert!(text.contains("grbac_events_published_total{kind=\"decision\"} 3"));
    assert!(text.contains("grbac_events_published_total{kind=\"delta_applied\"} 1"));
    assert!(text.contains("grbac_events_dropped_total 2"));
    assert!(text.contains("grbac_event_subscribers 1"));
    assert!(text.contains("grbac_events_enabled 1"));
}
