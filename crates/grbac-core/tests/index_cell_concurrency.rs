//! Concurrency coverage for the generation-keyed index cell: many
//! threads deciding against a freshly-invalidated engine must trigger
//! exactly one compiled-index rebuild per generation, and the
//! `index_rebuilds` counter must agree. Runs under the default build
//! and (in CI) under the `parallel` feature, where `decide_batch`
//! itself also fans out across threads.

use std::sync::Barrier;

use grbac_core::prelude::*;
use grbac_core::telemetry;

struct Home {
    g: Grbac,
    alice: SubjectId,
    tv: ObjectId,
    use_t: TransactionId,
}

fn household() -> Home {
    let mut g = Grbac::new();
    let child = g.declare_subject_role("child").unwrap();
    let entertainment = g.declare_object_role("entertainment").unwrap();
    let use_t = g.declare_transaction("use").unwrap();
    let alice = g.declare_subject("alice").unwrap();
    g.assign_subject_role(alice, child).unwrap();
    let tv = g.declare_object("tv").unwrap();
    g.assign_object_role(tv, entertainment).unwrap();
    g.add_rule(
        RuleDef::permit()
            .subject_role(child)
            .object_role(entertainment)
            .transaction(use_t),
    )
    .unwrap();
    Home {
        g,
        alice,
        tv,
        use_t,
    }
}

#[test]
fn concurrent_decides_rebuild_at_most_once_per_generation() {
    const THREADS: usize = 8;
    const GENERATIONS: usize = 5;

    let mut home = household();
    let request =
        AccessRequest::by_subject(home.alice, home.use_t, home.tv, EnvironmentSnapshot::new());

    let rebuilds_before = home.g.metrics().index_rebuilds.get();
    for generation in 0..GENERATIONS {
        // Invalidate the index, then race THREADS deciders at it.
        home.g
            .declare_subject_role(format!("gen{generation}"))
            .unwrap();
        let engine = &home.g;
        let barrier = Barrier::new(THREADS);
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    barrier.wait();
                    for _ in 0..4 {
                        let decision = engine.decide(&request).unwrap();
                        assert!(decision.is_permitted());
                    }
                });
            }
        });
    }

    if telemetry::ENABLED {
        let rebuilds = home.g.metrics().index_rebuilds.get() - rebuilds_before;
        assert_eq!(
            rebuilds, GENERATIONS as u64,
            "expected one rebuild per generation"
        );
        // Every other decide was served by the built index.
        assert!(home.g.metrics().index_cache_hits.get() > 0);
    }
}

#[test]
fn concurrent_batches_share_one_rebuild() {
    let mut home = household();
    let request =
        AccessRequest::by_subject(home.alice, home.use_t, home.tv, EnvironmentSnapshot::new());
    // Large enough to cross decide_batch's parallel threshold (32).
    let batch: Vec<AccessRequest> = (0..64).map(|_| request.clone()).collect();

    home.g.declare_subject_role("invalidate").unwrap();
    let rebuilds_before = home.g.metrics().index_rebuilds.get();
    let engine = &home.g;
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                for result in engine.decide_batch(&batch) {
                    assert!(result.unwrap().is_permitted());
                }
            });
        }
    });

    if telemetry::ENABLED {
        let rebuilds = home.g.metrics().index_rebuilds.get() - rebuilds_before;
        assert_eq!(rebuilds, 1, "four racing batches must share one rebuild");
        assert_eq!(
            home.g.metrics().decisions_permit.get(),
            4 * 64,
            "every batched decision must be counted exactly once"
        );
    }
}
