//! Concurrency coverage for incremental index maintenance: decides
//! racing a writer that repeatedly edits the policy must never observe
//! a torn index — every verdict is either the old policy's or the new
//! policy's, and the patched index stays structurally identical to a
//! from-scratch rebuild. Runs under the default build and (in CI)
//! under the `parallel` feature.

use std::sync::RwLock;

use grbac_core::prelude::*;
use grbac_core::telemetry::{self, DeltaKind};

struct Home {
    g: Grbac,
    alice: SubjectId,
    tv: ObjectId,
    use_t: TransactionId,
    child: RoleId,
    entertainment: RoleId,
}

fn household() -> Home {
    let mut g = Grbac::new();
    let child = g.declare_subject_role("child").unwrap();
    let entertainment = g.declare_object_role("entertainment").unwrap();
    let use_t = g.declare_transaction("use").unwrap();
    let alice = g.declare_subject("alice").unwrap();
    g.assign_subject_role(alice, child).unwrap();
    let tv = g.declare_object("tv").unwrap();
    g.assign_object_role(tv, entertainment).unwrap();
    g.add_rule(
        RuleDef::permit()
            .subject_role(child)
            .object_role(entertainment)
            .transaction(use_t),
    )
    .unwrap();
    Home {
        g,
        alice,
        tv,
        use_t,
        child,
        entertainment,
    }
}

/// A writer toggles a deny rule on and off while reader threads
/// decide continuously. Every decision must succeed, and every verdict
/// must match one of the two policies that exist during the run (deny
/// rule present → deny under DenyOverrides; absent → permit). At the
/// end the patched index must equal a from-scratch rebuild.
#[test]
fn racing_decides_see_old_or_new_policy_never_torn() {
    const READERS: usize = 4;
    const TOGGLES: usize = 60;

    let home = household();
    let request =
        AccessRequest::by_subject(home.alice, home.use_t, home.tv, EnvironmentSnapshot::new());
    let deny_def = RuleDef::deny()
        .subject_role(home.child)
        .object_role(home.entertainment)
        .transaction(home.use_t);

    let shared = RwLock::new(home.g);
    std::thread::scope(|scope| {
        for _ in 0..READERS {
            scope.spawn(|| {
                for _ in 0..TOGGLES * 4 {
                    let g = shared.read().unwrap();
                    let decision = g.decide(&request).unwrap();
                    // Old-or-new: the only two reachable verdicts.
                    assert!(decision.is_permitted() || decision.effect() == Effect::Deny);
                }
            });
        }
        scope.spawn(|| {
            for _ in 0..TOGGLES {
                let deny_id = {
                    let mut g = shared.write().unwrap();
                    g.add_rule(deny_def.clone()).unwrap()
                };
                // Let readers decide against the edited policy; the
                // next index consumer applies the pending delta.
                {
                    let g = shared.read().unwrap();
                    assert!(!g.decide(&request).unwrap().is_permitted());
                }
                {
                    let mut g = shared.write().unwrap();
                    assert!(g.remove_rule(deny_id));
                }
                let g = shared.read().unwrap();
                assert!(g.decide(&request).unwrap().is_permitted());
            }
        });
    });

    let g = shared.into_inner().unwrap();
    assert!(
        g.compiled_matches_rebuild(),
        "patched index drifted from a from-scratch rebuild"
    );
    if telemetry::ENABLED {
        let metrics = g.metrics();
        let added = metrics.index_delta_applied.get(DeltaKind::RuleAdded.slot());
        let removed = metrics
            .index_delta_applied
            .get(DeltaKind::RuleRemoved.slot());
        assert!(
            added > 0 && removed > 0,
            "rule toggles must take the delta path (added={added}, removed={removed})"
        );
    }
}

/// A mutation burst larger than the delta log's retention (128
/// generations) between two decides trims the log past the compiled
/// index's generation, so the next consumer cannot replay the gap and
/// must fall back to a from-scratch rebuild: the full-rebuild counter
/// increments and no per-kind delta counter moves.
#[test]
fn trimmed_delta_log_forces_a_full_rebuild() {
    let mut home = household();
    let request =
        AccessRequest::by_subject(home.alice, home.use_t, home.tv, EnvironmentSnapshot::new());
    // Prime the compiled index at the current generation.
    assert!(home.g.decide(&request).unwrap().is_permitted());

    let full_before = home.g.metrics().index_full_rebuilds.get();
    let deltas_before: Vec<u64> = DeltaKind::ALL
        .iter()
        .map(|kind| home.g.metrics().index_delta_applied.get(kind.slot()))
        .collect();

    // 200 edits (> DeltaLog retention of 128) with no decide in
    // between: the log trims its oldest entries, stranding the primed
    // index behind the replayable window.
    let burst: Vec<RuleId> = (0..200)
        .map(|i| {
            home.g
                .add_rule(
                    RuleDef::deny()
                        .named(format!("burst{i}"))
                        .subject_role(home.child)
                        .object_role(home.entertainment)
                        .transaction(home.use_t),
                )
                .unwrap()
        })
        .collect();
    for id in burst {
        assert!(home.g.remove_rule(id));
    }

    // Net policy is unchanged, so the verdict is too — but the index
    // had to be rebuilt from scratch to get there.
    assert!(home.g.decide(&request).unwrap().is_permitted());
    assert!(home.g.compiled_matches_rebuild());
    if telemetry::ENABLED {
        assert_eq!(
            home.g.metrics().index_full_rebuilds.get(),
            full_before + 1,
            "a trimmed delta span must force exactly one full rebuild"
        );
        for (kind, before) in DeltaKind::ALL.iter().zip(&deltas_before) {
            assert_eq!(
                home.g.metrics().index_delta_applied.get(kind.slot()),
                *before,
                "no delta may be counted as applied when the log was trimmed ({kind:?})"
            );
        }
    }
}

/// A single hierarchy edit after the index is primed takes the delta
/// path — no from-scratch rebuild — and the decision reflects the new
/// edge immediately.
#[test]
fn single_edge_edit_is_applied_incrementally() {
    let mut home = household();
    let request =
        AccessRequest::by_subject(home.alice, home.use_t, home.tv, EnvironmentSnapshot::new());
    assert!(home.g.decide(&request).unwrap().is_permitted());

    // Reassign alice to a fresh leaf role: she loses access until the
    // leaf specializes the privileged role.
    let toddler = home.g.declare_subject_role("toddler").unwrap();
    home.g.revoke_subject_role(home.alice, home.child).unwrap();
    home.g.assign_subject_role(home.alice, toddler).unwrap();
    assert!(!home.g.decide(&request).unwrap().is_permitted());

    let full_before = home.g.metrics().index_full_rebuilds.get();
    home.g.specialize(toddler, home.child).unwrap();
    assert!(
        home.g.decide(&request).unwrap().is_permitted(),
        "the new edge must be visible on the next decide"
    );
    if telemetry::ENABLED {
        assert_eq!(
            home.g.metrics().index_full_rebuilds.get(),
            full_before,
            "an edge edit must patch the index, not rebuild it"
        );
        assert!(
            home.g
                .metrics()
                .index_delta_applied
                .get(DeltaKind::EdgeAdded.slot())
                > 0,
            "the edge edit must be counted as an applied delta"
        );
    }
    assert!(home.g.compiled_matches_rebuild());
}
