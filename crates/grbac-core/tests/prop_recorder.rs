//! Flight-recorder property suite: under concurrent batch writers the
//! ring must retain exactly the most recent `capacity` records with a
//! contiguous sequence tail and no torn records, per-writer sequence
//! numbers must stay strictly monotone, and `check_batch` must keep the
//! recorder and the audit log in lockstep.
//!
//! The concurrent writers drive `decide_batch` (the mediation path that
//! `check_batch` wraps — `check_batch` itself needs `&mut self` for the
//! audit append, so the shared-engine race is exercised on the decide
//! side where the recorder actually lives).

use std::collections::BTreeMap;
use std::sync::Barrier;

use grbac_core::prelude::*;
use grbac_core::provenance::env_fingerprint;
use grbac_core::rule::Effect;
use proptest::prelude::*;

struct Home {
    g: Grbac,
    free_time: RoleId,
    alice: SubjectId,
    bob: SubjectId,
    tv: ObjectId,
    use_t: TransactionId,
}

fn household() -> Home {
    let mut g = Grbac::new();
    let child = g.declare_subject_role("child").unwrap();
    let entertainment = g.declare_object_role("entertainment").unwrap();
    let free_time = g.declare_environment_role("free_time").unwrap();
    let use_t = g.declare_transaction("use").unwrap();
    let alice = g.declare_subject("alice").unwrap();
    g.assign_subject_role(alice, child).unwrap();
    let bob = g.declare_subject("bob").unwrap();
    let tv = g.declare_object("tv").unwrap();
    g.assign_object_role(tv, entertainment).unwrap();
    g.add_rule(
        RuleDef::permit()
            .subject_role(child)
            .object_role(entertainment)
            .transaction(use_t),
    )
    .unwrap();
    Home {
        g,
        free_time,
        alice,
        bob,
        tv,
        use_t,
    }
}

/// The request mix every writer cycles through: (request, expected
/// effect, expected environment roles).
fn request_mix(home: &Home) -> Vec<(AccessRequest, Effect, Vec<RoleId>)> {
    let empty = EnvironmentSnapshot::new();
    let busy = EnvironmentSnapshot::from_active([home.free_time]);
    vec![
        (
            AccessRequest::by_subject(home.alice, home.use_t, home.tv, empty.clone()),
            Effect::Permit,
            Vec::new(),
        ),
        (
            AccessRequest::by_subject(home.alice, home.use_t, home.tv, busy.clone()),
            Effect::Permit,
            vec![home.free_time],
        ),
        (
            AccessRequest::by_subject(home.bob, home.use_t, home.tv, empty),
            Effect::Deny,
            Vec::new(),
        ),
        (
            AccessRequest::by_subject(home.bob, home.use_t, home.tv, busy),
            Effect::Deny,
            vec![home.free_time],
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Race `threads` writers, each deciding `per_writer` requests
    /// through `decide_batch`, at one shared ring. Afterwards the
    /// recorder must account for every decision, retain exactly the
    /// most recent `capacity` of them as a contiguous sequence range,
    /// hold no torn records, and show strictly monotone per-writer
    /// sequence numbers.
    fn concurrent_writers_never_tear_the_ring(
        capacity_pow in 2u32..7,
        threads in 2usize..5,
        batches in 1usize..4,
    ) {
        let capacity = 1usize << capacity_pow;
        let mut home = household();
        home.g.set_flight_recorder_capacity(capacity);
        let mix = request_mix(&home);
        let batch: Vec<AccessRequest> =
            mix.iter().map(|(request, _, _)| request.clone()).collect();

        let engine = &home.g;
        let barrier = Barrier::new(threads);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    barrier.wait();
                    for _ in 0..batches {
                        for result in engine.decide_batch(&batch) {
                            result.expect("known ids");
                        }
                    }
                });
            }
        });

        let recorder = home.g.flight_recorder();
        let total = (threads * batches * batch.len()) as u64;
        prop_assert_eq!(recorder.total_recorded(), total);

        let records = recorder.snapshot();
        let retained = total.min(capacity as u64);
        prop_assert_eq!(records.len() as u64, retained);
        prop_assert_eq!(recorder.dropped(), total - retained);

        // Contiguous tail: exactly the most recent `retained` seqs.
        for (offset, record) in records.iter().enumerate() {
            prop_assert_eq!(record.seq, total - retained + offset as u64);
        }

        // No tears: every record matches one shape from the mix, whole.
        for record in &records {
            let (_, expected_effect, expected_env) = mix
                .iter()
                .find(|(request, _, _)| {
                    let same_subject = matches!(
                        (&request.actor, record.subject()),
                        (Actor::Subject(s), Some(recorded)) if *s == recorded
                    );
                    same_subject
                        && request.object == record.object
                        && request.transaction == record.transaction
                        && request.environment.active().iter().copied().collect::<Vec<_>>()
                            == record.env_roles
                })
                .expect("record matches a request from the mix");
            prop_assert_eq!(record.effect, *expected_effect);
            prop_assert_eq!(&record.env_roles, expected_env);
            prop_assert_eq!(
                record.env_hash,
                env_fingerprint(&EnvironmentSnapshot::from_active(
                    expected_env.iter().copied()
                ))
            );
        }

        // Per-writer monotonicity: within the retained window (already
        // sorted by seq) each writer's sequence numbers only climb.
        let mut last_by_writer: BTreeMap<u32, u64> = BTreeMap::new();
        for record in &records {
            if let Some(&previous) = last_by_writer.get(&record.writer) {
                prop_assert!(
                    record.writer_seq > previous,
                    "writer {} went from {} to {}",
                    record.writer,
                    previous,
                    record.writer_seq
                );
            }
            last_by_writer.insert(record.writer, record.writer_seq);
        }
    }
}

/// `check_batch` feeds both stores: the recorder and the audit log
/// advance by the same count and agree on each decision's shape.
#[test]
fn check_batch_keeps_recorder_and_audit_in_lockstep() {
    let mut home = household();
    home.g.set_flight_recorder_capacity(64);
    let mix = request_mix(&home);
    let batch: Vec<AccessRequest> = mix.iter().map(|(request, _, _)| request.clone()).collect();

    for _ in 0..3 {
        home.g.check_batch(&batch);
    }

    let recorder = home.g.flight_recorder();
    let total = (3 * batch.len()) as u64;
    assert_eq!(recorder.total_recorded(), total);
    assert_eq!(home.g.audit().total_recorded(), total);

    let records = recorder.snapshot();
    for (record, audit) in records.iter().zip(home.g.audit().iter()) {
        assert_eq!(record.subject(), audit.subject);
        assert_eq!(record.transaction, audit.transaction);
        assert_eq!(record.object, audit.object);
        assert_eq!(record.effect, audit.effect);
    }
}
