//! Engine-level telemetry integration: audit parity between `check`
//! and `check_batch`, audit gauges that survive eviction and clears,
//! exporter agreement on a live engine's snapshot, rule-heat counters
//! fed by the live mediation path, watchdog alerts surfacing in the
//! scrape payload, and trace output.

use grbac_core::prelude::*;
use grbac_core::telemetry::{
    self, DecisionWatchdog, Exporter, JsonExporter, PrometheusExporter, Stage, WatchdogConfig,
};

struct Home {
    g: Grbac,
    alice: SubjectId,
    mom: SubjectId,
    tv: ObjectId,
    use_t: TransactionId,
    weekdays: RoleId,
    free_time: RoleId,
}

/// The §5.1 household: child may use entertainment devices on weekday
/// free time; everything else denies by default.
fn household() -> Home {
    let mut g = Grbac::new();
    let parent = g.declare_subject_role("parent").unwrap();
    let child = g.declare_subject_role("child").unwrap();
    let entertainment = g.declare_object_role("entertainment").unwrap();
    let weekdays = g.declare_environment_role("weekdays").unwrap();
    let free_time = g.declare_environment_role("free_time").unwrap();
    let use_t = g.declare_transaction("use").unwrap();

    let alice = g.declare_subject("alice").unwrap();
    let mom = g.declare_subject("mom").unwrap();
    g.assign_subject_role(alice, child).unwrap();
    g.assign_subject_role(mom, parent).unwrap();
    let tv = g.declare_object("tv").unwrap();
    g.assign_object_role(tv, entertainment).unwrap();

    g.add_rule(
        RuleDef::permit()
            .subject_role(child)
            .object_role(entertainment)
            .transaction(use_t)
            .when(weekdays)
            .when(free_time),
    )
    .unwrap();

    Home {
        g,
        alice,
        mom,
        tv,
        use_t,
        weekdays,
        free_time,
    }
}

fn requests(home: &Home) -> Vec<AccessRequest> {
    let evening = EnvironmentSnapshot::from_active([home.weekdays, home.free_time]);
    let school = EnvironmentSnapshot::from_active([home.weekdays]);
    (0..8)
        .flat_map(|i| {
            [
                AccessRequest::by_subject(home.alice, home.use_t, home.tv, evening.clone())
                    .at(i * 10),
                AccessRequest::by_subject(home.alice, home.use_t, home.tv, school.clone())
                    .at(i * 10 + 1),
                AccessRequest::by_subject(home.mom, home.use_t, home.tv, evening.clone())
                    .at(i * 10 + 2),
            ]
        })
        .collect()
}

#[test]
fn check_batch_audits_identically_to_sequential_check() {
    let mut sequential_home = household();
    let mut batched_home = household();
    let batch = requests(&batched_home);

    let sequential_decisions: Vec<Decision> = requests(&sequential_home)
        .iter()
        .map(|request| sequential_home.g.check(request).unwrap())
        .collect();
    let batched_decisions: Vec<Decision> = batched_home
        .g
        .check_batch(&batch)
        .into_iter()
        .map(Result::unwrap)
        .collect();
    assert_eq!(batched_decisions, sequential_decisions);

    // Audit records are identical, field for field, in request order…
    let sequential_records: Vec<_> = sequential_home.g.audit().iter().cloned().collect();
    let batched_records: Vec<_> = batched_home.g.audit().iter().cloned().collect();
    assert_eq!(batched_records, sequential_records);
    assert_eq!(batched_records.len(), batch.len());

    // …and sequence numbers are strictly monotonic.
    for pair in batched_records.windows(2) {
        assert!(pair[0].seq < pair[1].seq, "seq order broken: {pair:?}");
    }

    if telemetry::ENABLED {
        // The decision counters and audit gauges agree with the
        // sequential engine's; only batch accounting differs.
        let sequential_snapshot = sequential_home.g.metrics_snapshot();
        let batched_snapshot = batched_home.g.metrics_snapshot();
        for name in [
            "grbac_decisions_permit_total",
            "grbac_decisions_deny_total",
            "grbac_decide_errors_total",
        ] {
            assert_eq!(
                batched_snapshot.counter(name),
                sequential_snapshot.counter(name),
                "{name} diverged"
            );
        }
        for name in [
            "grbac_audit_permit_total",
            "grbac_audit_deny_total",
            "grbac_audit_retained",
        ] {
            assert_eq!(
                batched_snapshot.gauge(name),
                sequential_snapshot.gauge(name),
                "{name} diverged"
            );
        }
        assert_eq!(batched_snapshot.counter("grbac_batch_calls_total"), 1);
        assert_eq!(sequential_snapshot.counter("grbac_batch_calls_total"), 0);
    }
}

#[test]
fn audit_gauges_survive_eviction_and_clear() {
    let mut home = household();
    for request in requests(&home) {
        home.g.check(&request).unwrap();
    }
    let permits = home.g.audit().permit_count();
    let denies = home.g.audit().deny_count();
    assert_eq!(permits + denies, 24);

    home.g.clear_audit();
    if telemetry::ENABLED {
        let snapshot = home.g.metrics_snapshot();
        // The gauges mirror the log's running totals, which survive
        // clear_audit() even though no records remain.
        assert_eq!(snapshot.gauge("grbac_audit_permit_total"), permits);
        assert_eq!(snapshot.gauge("grbac_audit_deny_total"), denies);
        assert_eq!(snapshot.gauge("grbac_audit_retained"), 0);
    }
    assert!(home.g.audit().is_empty());
    assert_eq!(home.g.audit().permit_count(), permits);
}

#[test]
fn exporters_render_the_same_live_snapshot() {
    let mut home = household();
    for request in requests(&home) {
        home.g.check(&request).unwrap();
    }
    let snapshot = home.g.metrics_snapshot();
    let text = PrometheusExporter.export(&snapshot);
    let json = JsonExporter.export(&snapshot);
    for (name, value) in &snapshot.counters {
        assert!(text.contains(&format!("{name} {value}")), "missing {name}");
        assert!(
            json.contains(&format!("\"{name}\":{value}")),
            "missing {name}"
        );
    }
    if telemetry::ENABLED {
        // Per-transaction series are labelled with declared names.
        assert!(text.contains("grbac_rule_matches_total{transaction=\"use\"}"));
        assert!(json.contains("\"use\":"));
    }
}

#[test]
fn degraded_decisions_carry_their_reason_into_the_audit_log() {
    let mut home = household();
    home.g.set_degraded_mode(DegradedMode::fail_closed());
    let evening = EnvironmentSnapshot::from_active([home.weekdays, home.free_time]);

    let fresh = AccessRequest::by_subject(home.alice, home.use_t, home.tv, evening.clone()).at(0);
    let stale = AccessRequest::by_subject(home.alice, home.use_t, home.tv, evening.clone())
        .at(1)
        .with_env_health(EnvHealth::Stale { age: 600 });
    let dark = AccessRequest::by_subject(home.alice, home.use_t, home.tv, evening)
        .at(2)
        .with_env_health(EnvHealth::Unavailable);

    let fresh_decision = home.g.check(&fresh).unwrap();
    assert!(fresh_decision.is_permitted());
    assert!(!fresh_decision.is_degraded());

    let stale_decision = home.g.check(&stale).unwrap();
    assert!(
        !stale_decision.is_permitted(),
        "fail-closed drops over-budget roles, so the rule cannot match"
    );
    assert_eq!(
        stale_decision.degraded(),
        Some(&DegradedReason::StaleRolesDropped {
            age: 600,
            dropped: 2
        })
    );

    let dark_decision = home.g.check(&dark).unwrap();
    assert!(!dark_decision.is_permitted());
    assert_eq!(
        dark_decision.degraded(),
        Some(&DegradedReason::EnvUnavailable)
    );

    // The audit log retains each decision's reason, verbatim.
    let records: Vec<_> = home.g.audit().iter().cloned().collect();
    assert_eq!(records.len(), 3);
    assert_eq!(records[0].degraded, None);
    assert_eq!(records[1].degraded, stale_decision.degraded().copied());
    assert_eq!(records[2].degraded, dark_decision.degraded().copied());

    if telemetry::ENABLED {
        let snapshot = home.g.metrics_snapshot();
        assert_eq!(snapshot.counter("grbac_decisions_degraded_total"), 2);
        assert_eq!(snapshot.counter("grbac_env_roles_dropped_stale_total"), 2);
    }
}

#[test]
fn degraded_audits_are_identical_across_check_and_check_batch() {
    let mut sequential_home = household();
    let mut batched_home = household();
    for home in [&mut sequential_home, &mut batched_home] {
        // A 15-minute budget: 10-minute staleness is absorbed silently,
        // 30-minute staleness degrades.
        home.g
            .set_degraded_mode(DegradedMode::fail_closed().with_default_budget(900));
    }
    let evening =
        EnvironmentSnapshot::from_active([sequential_home.weekdays, sequential_home.free_time]);
    let batch: Vec<AccessRequest> = [
        EnvHealth::Fresh,
        EnvHealth::Stale { age: 600 },
        EnvHealth::Stale { age: 1_800 },
        EnvHealth::Unavailable,
    ]
    .into_iter()
    .enumerate()
    .map(|(i, health)| {
        AccessRequest::by_subject(
            sequential_home.alice,
            sequential_home.use_t,
            sequential_home.tv,
            evening.clone(),
        )
        .at(i as u64)
        .with_env_health(health)
    })
    .collect();

    let sequential_decisions: Vec<Decision> = batch
        .iter()
        .map(|request| sequential_home.g.check(request).unwrap())
        .collect();
    let batched_decisions: Vec<Decision> = batched_home
        .g
        .check_batch(&batch)
        .into_iter()
        .map(Result::unwrap)
        .collect();
    assert_eq!(batched_decisions, sequential_decisions);

    // Within-budget staleness is not a degradation; past-budget is.
    assert!(sequential_decisions[0].is_permitted());
    assert!(sequential_decisions[1].is_permitted());
    assert!(!sequential_decisions[1].is_degraded());
    assert!(sequential_decisions[2].is_degraded());
    assert!(sequential_decisions[3].is_degraded());

    // Audit parity extends to the degraded field.
    let sequential_records: Vec<_> = sequential_home.g.audit().iter().cloned().collect();
    let batched_records: Vec<_> = batched_home.g.audit().iter().cloned().collect();
    assert_eq!(batched_records, sequential_records);
    for (record, decision) in sequential_records.iter().zip(&sequential_decisions) {
        assert_eq!(record.degraded, decision.degraded().copied());
    }

    if telemetry::ENABLED {
        for home in [&sequential_home, &batched_home] {
            let snapshot = home.g.metrics_snapshot();
            assert_eq!(snapshot.counter("grbac_decisions_degraded_total"), 2);
        }
    }
}

#[test]
fn rule_heat_follows_the_live_mediation_path() {
    if !telemetry::ENABLED {
        return;
    }
    let mut home = household();
    for request in requests(&home) {
        home.g.check(&request).unwrap();
    }

    // 8 evening requests match and win the single permit rule; the 8
    // school and 8 mom requests fall through to the default deny, which
    // has no winning rule.
    let heat = home.g.heat_snapshot();
    assert_eq!(heat.decisions, 24);
    let rule = heat.get(0);
    assert_eq!(rule.matched, 8);
    assert_eq!(rule.won_permit, 8);
    assert_eq!(rule.won_deny, 0);
    assert!(rule.last_fired_generation.is_some());

    // The scrape payload labels the series with the engine's rule label
    // (display form, since the rule is unnamed).
    let text = PrometheusExporter.export(&home.g.metrics_snapshot());
    assert!(text.contains("grbac_rule_heat_matched_total{rule=\"rule0\"} 8"));
    assert!(text.contains("grbac_rule_heat_won_permit_total{rule=\"rule0\"} 8"));
    assert!(text.contains("grbac_rule_heat_enabled 1"));

    // Disabling at runtime stops accrual without clearing history;
    // resetting clears it and counts the reset.
    home.g.metrics().rule_heat.set_enabled(false);
    let evening = EnvironmentSnapshot::from_active([home.weekdays, home.free_time]);
    home.g
        .check(&AccessRequest::by_subject(
            home.alice, home.use_t, home.tv, evening,
        ))
        .unwrap();
    assert_eq!(home.g.heat_snapshot().decisions, 24);
    home.g.metrics().rule_heat.set_enabled(true);
    home.g.metrics().rule_heat.reset();
    let cleared = home.g.heat_snapshot();
    assert_eq!(cleared.decisions, 0);
    assert_eq!(cleared.resets, 1);
    assert_eq!(cleared.get(0).matched, 0);
}

#[test]
fn watchdog_alerts_surface_in_the_scrape_payload() {
    if !telemetry::ENABLED {
        return;
    }
    let home = household();
    let registry = home.g.metrics();
    let mut watchdog = DecisionWatchdog::new(WatchdogConfig {
        warmup_ticks: 3,
        min_decisions: 1,
        min_polls: 1,
        ..WatchdogConfig::default()
    });

    // A calm baseline (5% denies) followed by a hostile tick (90%).
    for _ in 0..6 {
        registry.decisions_permit.add(95);
        registry.decisions_deny.add(5);
        assert!(watchdog.tick(registry).is_empty());
    }
    registry.decisions_permit.add(10);
    registry.decisions_deny.add(90);
    let alerts = watchdog.tick(registry);
    assert_eq!(alerts.len(), 1);
    assert_eq!(alerts[0].kind, telemetry::AlertKind::DenyRateSpike);

    let text = PrometheusExporter.export(&home.g.metrics_snapshot());
    assert!(text.contains("grbac_alerts_total{kind=\"deny_rate_spike\"} 1"));
    assert!(text.contains("grbac_watchdog_ticks_total 7"));
    assert!(text.contains("# HELP grbac_alerts_total"));
}

#[test]
fn traces_expose_the_pipeline() {
    let home = household();
    let evening = EnvironmentSnapshot::from_active([home.weekdays, home.free_time]);
    let request = AccessRequest::by_subject(home.alice, home.use_t, home.tv, evening);
    let (decision, trace) = home.g.decide_traced(&request).unwrap();
    assert!(decision.is_permitted());
    assert_eq!(trace.stages.len(), 5);
    // Exactly one candidate rule exists and it matched.
    assert_eq!(trace.stage(Stage::CandidateMerge).unwrap().items, 1);
    assert_eq!(trace.stage(Stage::PrecedenceResolution).unwrap().items, 1);
    // weekdays + free_time active.
    assert_eq!(trace.stage(Stage::EnvironmentEvaluation).unwrap().items, 2);
    let rendered = trace.render();
    assert!(rendered.contains("candidate_merge"));
    assert!(rendered.contains("total"));
}
