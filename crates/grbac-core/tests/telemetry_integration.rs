//! Engine-level telemetry integration: audit parity between `check`
//! and `check_batch`, audit gauges that survive eviction and clears,
//! exporter agreement on a live engine's snapshot, and trace output.

use grbac_core::prelude::*;
use grbac_core::telemetry::{self, Exporter, JsonExporter, PrometheusExporter, Stage};

struct Home {
    g: Grbac,
    alice: SubjectId,
    mom: SubjectId,
    tv: ObjectId,
    use_t: TransactionId,
    weekdays: RoleId,
    free_time: RoleId,
}

/// The §5.1 household: child may use entertainment devices on weekday
/// free time; everything else denies by default.
fn household() -> Home {
    let mut g = Grbac::new();
    let parent = g.declare_subject_role("parent").unwrap();
    let child = g.declare_subject_role("child").unwrap();
    let entertainment = g.declare_object_role("entertainment").unwrap();
    let weekdays = g.declare_environment_role("weekdays").unwrap();
    let free_time = g.declare_environment_role("free_time").unwrap();
    let use_t = g.declare_transaction("use").unwrap();

    let alice = g.declare_subject("alice").unwrap();
    let mom = g.declare_subject("mom").unwrap();
    g.assign_subject_role(alice, child).unwrap();
    g.assign_subject_role(mom, parent).unwrap();
    let tv = g.declare_object("tv").unwrap();
    g.assign_object_role(tv, entertainment).unwrap();

    g.add_rule(
        RuleDef::permit()
            .subject_role(child)
            .object_role(entertainment)
            .transaction(use_t)
            .when(weekdays)
            .when(free_time),
    )
    .unwrap();

    Home {
        g,
        alice,
        mom,
        tv,
        use_t,
        weekdays,
        free_time,
    }
}

fn requests(home: &Home) -> Vec<AccessRequest> {
    let evening = EnvironmentSnapshot::from_active([home.weekdays, home.free_time]);
    let school = EnvironmentSnapshot::from_active([home.weekdays]);
    (0..8)
        .flat_map(|i| {
            [
                AccessRequest::by_subject(home.alice, home.use_t, home.tv, evening.clone())
                    .at(i * 10),
                AccessRequest::by_subject(home.alice, home.use_t, home.tv, school.clone())
                    .at(i * 10 + 1),
                AccessRequest::by_subject(home.mom, home.use_t, home.tv, evening.clone())
                    .at(i * 10 + 2),
            ]
        })
        .collect()
}

#[test]
fn check_batch_audits_identically_to_sequential_check() {
    let mut sequential_home = household();
    let mut batched_home = household();
    let batch = requests(&batched_home);

    let sequential_decisions: Vec<Decision> = requests(&sequential_home)
        .iter()
        .map(|request| sequential_home.g.check(request).unwrap())
        .collect();
    let batched_decisions: Vec<Decision> = batched_home
        .g
        .check_batch(&batch)
        .into_iter()
        .map(Result::unwrap)
        .collect();
    assert_eq!(batched_decisions, sequential_decisions);

    // Audit records are identical, field for field, in request order…
    let sequential_records: Vec<_> = sequential_home.g.audit().iter().cloned().collect();
    let batched_records: Vec<_> = batched_home.g.audit().iter().cloned().collect();
    assert_eq!(batched_records, sequential_records);
    assert_eq!(batched_records.len(), batch.len());

    // …and sequence numbers are strictly monotonic.
    for pair in batched_records.windows(2) {
        assert!(pair[0].seq < pair[1].seq, "seq order broken: {pair:?}");
    }

    if telemetry::ENABLED {
        // The decision counters and audit gauges agree with the
        // sequential engine's; only batch accounting differs.
        let sequential_snapshot = sequential_home.g.metrics_snapshot();
        let batched_snapshot = batched_home.g.metrics_snapshot();
        for name in [
            "grbac_decisions_permit_total",
            "grbac_decisions_deny_total",
            "grbac_decide_errors_total",
        ] {
            assert_eq!(
                batched_snapshot.counter(name),
                sequential_snapshot.counter(name),
                "{name} diverged"
            );
        }
        for name in [
            "grbac_audit_permit_total",
            "grbac_audit_deny_total",
            "grbac_audit_retained",
        ] {
            assert_eq!(
                batched_snapshot.gauge(name),
                sequential_snapshot.gauge(name),
                "{name} diverged"
            );
        }
        assert_eq!(batched_snapshot.counter("grbac_batch_calls_total"), 1);
        assert_eq!(sequential_snapshot.counter("grbac_batch_calls_total"), 0);
    }
}

#[test]
fn audit_gauges_survive_eviction_and_clear() {
    let mut home = household();
    for request in requests(&home) {
        home.g.check(&request).unwrap();
    }
    let permits = home.g.audit().permit_count();
    let denies = home.g.audit().deny_count();
    assert_eq!(permits + denies, 24);

    home.g.clear_audit();
    if telemetry::ENABLED {
        let snapshot = home.g.metrics_snapshot();
        // The gauges mirror the log's running totals, which survive
        // clear_audit() even though no records remain.
        assert_eq!(snapshot.gauge("grbac_audit_permit_total"), permits);
        assert_eq!(snapshot.gauge("grbac_audit_deny_total"), denies);
        assert_eq!(snapshot.gauge("grbac_audit_retained"), 0);
    }
    assert!(home.g.audit().is_empty());
    assert_eq!(home.g.audit().permit_count(), permits);
}

#[test]
fn exporters_render_the_same_live_snapshot() {
    let mut home = household();
    for request in requests(&home) {
        home.g.check(&request).unwrap();
    }
    let snapshot = home.g.metrics_snapshot();
    let text = PrometheusExporter.export(&snapshot);
    let json = JsonExporter.export(&snapshot);
    for (name, value) in &snapshot.counters {
        assert!(text.contains(&format!("{name} {value}")), "missing {name}");
        assert!(
            json.contains(&format!("\"{name}\":{value}")),
            "missing {name}"
        );
    }
    if telemetry::ENABLED {
        // Per-transaction series are labelled with declared names.
        assert!(text.contains("grbac_rule_matches_total{transaction=\"use\"}"));
        assert!(json.contains("\"use\":"));
    }
}

#[test]
fn traces_expose_the_pipeline() {
    let home = household();
    let evening = EnvironmentSnapshot::from_active([home.weekdays, home.free_time]);
    let request = AccessRequest::by_subject(home.alice, home.use_t, home.tv, evening);
    let (decision, trace) = home.g.decide_traced(&request).unwrap();
    assert!(decision.is_permitted());
    assert_eq!(trace.stages.len(), 5);
    // Exactly one candidate rule exists and it matched.
    assert_eq!(trace.stage(Stage::CandidateMerge).unwrap().items, 1);
    assert_eq!(trace.stage(Stage::PrecedenceResolution).unwrap().items, 1);
    // weekdays + free_time active.
    assert_eq!(trace.stage(Stage::EnvironmentEvaluation).unwrap().items, 2);
    let rendered = trace.render();
    assert!(rendered.contains("candidate_merge"));
    assert!(rendered.contains("total"));
}
