//! Differential static-vs-runtime property suite: rules the static
//! analyzer calls unwinnable must accrue the corresponding *absence*
//! of heat under randomized workloads.
//!
//! Two claims, each scoped to the preconditions the static pass
//! actually makes:
//!
//! * A rule reported [`shadowed`](grbac_core::analysis::find_shadowed)
//!   never *wins* under first-applicable resolution (it may still
//!   match — that is what heat-confirmed shadowing reports). The
//!   strategy is pinned because under `MostSpecific` a covered but
//!   more specific rule legitimately can win.
//! * A rule reported [`memberless`](grbac_core::analysis::find_memberless_rules)
//!   never *matches* for subject- or session-authenticated actors (a
//!   sensed actor may claim any declared role, member or not, so the
//!   workload sticks to the postures the static pass reasons about).
//!
//! The suite also holds the heat table's own bookkeeping consistent:
//! per-rule wins sum to at most the decision count, and matches mirror
//! the decisions' explanations.

use grbac_core::analysis::{find_memberless_rules, find_shadowed};
use grbac_core::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Model {
    g: Grbac,
    env_roles: Vec<RoleId>,
    subjects: Vec<SubjectId>,
    objects: Vec<ObjectId>,
    transactions: Vec<TransactionId>,
}

fn pick<T: Copy>(rng: &mut StdRng, items: &[T]) -> T {
    items[rng.gen_range(0..items.len())]
}

/// A random household under first-applicable resolution: random role
/// DAGs, partial assignments, and a rule book dense enough to shadow.
fn build_model(rng: &mut StdRng) -> Model {
    let mut g = Grbac::new();

    let subject_roles: Vec<RoleId> = (0..rng.gen_range(2..=5usize))
        .map(|i| g.declare_subject_role(format!("sr{i}")).unwrap())
        .collect();
    let object_roles: Vec<RoleId> = (0..rng.gen_range(1..=4usize))
        .map(|i| g.declare_object_role(format!("or{i}")).unwrap())
        .collect();
    let env_roles: Vec<RoleId> = (0..rng.gen_range(1..=3usize))
        .map(|i| g.declare_environment_role(format!("er{i}")).unwrap())
        .collect();
    for roles in [&subject_roles, &object_roles, &env_roles] {
        for _ in 0..rng.gen_range(0..=roles.len() * 2) {
            let _ = g.specialize(pick(rng, roles), pick(rng, roles));
        }
    }

    let transactions: Vec<TransactionId> = (0..rng.gen_range(1..=3usize))
        .map(|i| g.declare_transaction(format!("t{i}")).unwrap())
        .collect();
    let subjects: Vec<SubjectId> = (0..rng.gen_range(1..=4usize))
        .map(|i| g.declare_subject(format!("sub{i}")).unwrap())
        .collect();
    let objects: Vec<ObjectId> = (0..rng.gen_range(1..=3usize))
        .map(|i| g.declare_object(format!("obj{i}")).unwrap())
        .collect();

    for &subject in &subjects {
        for &role in &subject_roles {
            // Sparse assignments keep memberless rules likely.
            if rng.gen_bool(0.25) {
                let _ = g.assign_subject_role(subject, role);
            }
        }
    }
    for &object in &objects {
        for &role in &object_roles {
            if rng.gen_bool(0.5) {
                let _ = g.assign_object_role(object, role);
            }
        }
    }

    // Overlapping, loosely-constrained rules make shadowing common.
    for _ in 0..rng.gen_range(2..=12usize) {
        let mut def = if rng.gen_bool(0.5) {
            RuleDef::permit()
        } else {
            RuleDef::deny()
        };
        if rng.gen_bool(0.8) {
            def = def.subject_role(pick(rng, &subject_roles));
        }
        if rng.gen_bool(0.4) {
            def = def.object_role(pick(rng, &object_roles));
        }
        if rng.gen_bool(0.4) {
            def = def.transaction(pick(rng, &transactions));
        }
        for &env in &env_roles {
            if rng.gen_bool(0.2) {
                def = def.when(env);
            }
        }
        g.add_rule(def).unwrap();
    }

    // Shadowing is a first-applicable notion; see the module docs.
    g.set_strategy(ConflictStrategy::FirstApplicable);
    if rng.gen_bool(0.3) {
        g.set_default_effect(Effect::Permit);
    }

    Model {
        g,
        env_roles,
        subjects,
        objects,
        transactions,
    }
}

/// A subject- or session-authenticated request over declared ids (the
/// postures the memberless analysis reasons about).
fn random_request(rng: &mut StdRng, model: &mut Model) -> AccessRequest {
    let environment = EnvironmentSnapshot::from_active(
        model
            .env_roles
            .iter()
            .copied()
            .filter(|_| rng.gen_bool(0.5))
            .collect::<Vec<_>>(),
    );
    let transaction = pick(rng, &model.transactions);
    let object = pick(rng, &model.objects);
    if rng.gen_bool(0.7) {
        let subject = pick(rng, &model.subjects);
        AccessRequest::by_subject(subject, transaction, object, environment)
    } else {
        let subject = pick(rng, &model.subjects);
        let session = model.g.open_session(subject).unwrap();
        for role in model.g.assignments().subject_roles(subject) {
            if rng.gen_bool(0.6) {
                let _ = model.g.activate_role(session, role);
            }
        }
        AccessRequest::by_session(session, transaction, object, environment)
    }
}

proptest! {
    /// Statically-shadowed rules accrue zero wins and memberless rules
    /// zero matches, no matter the workload.
    fn static_verdicts_bound_runtime_heat(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model = build_model(&mut rng);
        let shadowed = find_shadowed(&model.g);
        let memberless = find_memberless_rules(&model.g);

        let mut decisions = 0u64;
        for _ in 0..24 {
            let request = random_request(&mut rng, &mut model);
            if model.g.decide(&request).is_ok() {
                decisions += 1;
            }
        }

        let heat = model.g.heat_snapshot();
        if grbac_core::telemetry::ENABLED {
            prop_assert_eq!(heat.decisions, decisions);
        } else {
            prop_assert_eq!(heat.decisions, 0);
        }
        for s in &shadowed {
            let entry = heat.get(s.rule.as_raw());
            prop_assert_eq!(
                entry.won_permit + entry.won_deny,
                0,
                "statically shadowed rule {} won a decision (shadowed by {})",
                s.rule,
                s.by
            );
        }
        for &rule in &memberless {
            let entry = heat.get(rule.as_raw());
            prop_assert_eq!(
                entry.matched,
                0,
                "memberless rule {} matched a subject/session request",
                rule
            );
            prop_assert_eq!(entry.last_fired_generation, None);
        }

        // Table bookkeeping: every win is one decision's winner, and
        // total wins can't exceed decisions (default-effect decisions
        // have no winner).
        let total_wins: u64 = heat.rules.values().map(|e| e.won_permit + e.won_deny).sum();
        prop_assert!(total_wins <= heat.decisions);
    }

    /// The health report's heat join never contradicts the raw table:
    /// dead-in-practice rules really have zero matches and are not
    /// statically dead.
    fn health_report_is_consistent_with_heat(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model = build_model(&mut rng);
        for _ in 0..16 {
            let request = random_request(&mut rng, &mut model);
            let _ = model.g.decide(&request);
        }
        let heat = model.g.heat_snapshot();
        let report = grbac_core::analysis::health_report(&model.g);
        prop_assert_eq!(report.decisions, heat.decisions);
        for &rule in &report.dead_in_practice {
            prop_assert_eq!(heat.get(rule.as_raw()).matched, 0);
            prop_assert!(!report.static_report.memberless_rules.contains(&rule));
            prop_assert!(report.static_report.shadowed.iter().all(|s| s.rule != rule));
        }
        for s in &report.heat_confirmed_shadowed {
            let entry = heat.get(s.rule.as_raw());
            prop_assert!(entry.matched > 0);
            prop_assert_eq!(entry.won_permit + entry.won_deny, 0);
        }
        let score = report.score();
        prop_assert!((0.0..=1.0).contains(&score));
    }
}
