//! Telemetry property suite: `Grbac::decide_traced` must return the
//! same decision as `Grbac::decide` on identical input — the trace is
//! an observation, never an influence — and the registry's decision
//! counters must account for exactly the decisions made, over random
//! policies and actor postures.

use grbac_core::prelude::*;
use grbac_core::telemetry::{self, Stage};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Model {
    g: Grbac,
    env_roles: Vec<RoleId>,
    subjects: Vec<SubjectId>,
    objects: Vec<ObjectId>,
    transactions: Vec<TransactionId>,
}

fn pick<T: Copy>(rng: &mut StdRng, items: &[T]) -> T {
    items[rng.gen_range(0..items.len())]
}

fn random_confidence(rng: &mut StdRng) -> Confidence {
    Confidence::new(rng.gen_range(0.0..=1.0)).expect("in range")
}

/// A random household: role vocabularies with random DAG edges,
/// entities, assignments, and a random rule book (a compact version of
/// the `prop_index` model).
fn build_model(rng: &mut StdRng) -> Model {
    let mut g = Grbac::new();

    let subject_roles: Vec<RoleId> = (0..rng.gen_range(1..=5usize))
        .map(|i| g.declare_subject_role(format!("sr{i}")).unwrap())
        .collect();
    let object_roles: Vec<RoleId> = (0..rng.gen_range(1..=4usize))
        .map(|i| g.declare_object_role(format!("or{i}")).unwrap())
        .collect();
    let env_roles: Vec<RoleId> = (0..rng.gen_range(1..=4usize))
        .map(|i| g.declare_environment_role(format!("er{i}")).unwrap())
        .collect();
    for roles in [&subject_roles, &object_roles, &env_roles] {
        for _ in 0..rng.gen_range(0..=roles.len()) {
            let _ = g.specialize(pick(rng, roles), pick(rng, roles));
        }
    }

    let transactions: Vec<TransactionId> = (0..rng.gen_range(1..=3usize))
        .map(|i| g.declare_transaction(format!("t{i}")).unwrap())
        .collect();
    let subjects: Vec<SubjectId> = (0..rng.gen_range(1..=3usize))
        .map(|i| g.declare_subject(format!("sub{i}")).unwrap())
        .collect();
    let objects: Vec<ObjectId> = (0..rng.gen_range(1..=3usize))
        .map(|i| g.declare_object(format!("obj{i}")).unwrap())
        .collect();

    for &subject in &subjects {
        for &role in &subject_roles {
            if rng.gen_bool(0.5) {
                let _ = g.assign_subject_role(subject, role);
            }
        }
    }
    for &object in &objects {
        for &role in &object_roles {
            if rng.gen_bool(0.5) {
                let _ = g.assign_object_role(object, role);
            }
        }
    }

    for _ in 0..rng.gen_range(0..=10usize) {
        let mut def = if rng.gen_bool(0.5) {
            RuleDef::permit()
        } else {
            RuleDef::deny()
        };
        if rng.gen_bool(0.7) {
            def = def.subject_role(pick(rng, &subject_roles));
        }
        if rng.gen_bool(0.7) {
            def = def.object_role(pick(rng, &object_roles));
        }
        if rng.gen_bool(0.7) {
            def = def.transaction(pick(rng, &transactions));
        }
        for &env in &env_roles {
            if rng.gen_bool(0.3) {
                def = def.when(env);
            }
        }
        if rng.gen_bool(0.3) {
            def = def.min_confidence(random_confidence(rng));
        }
        g.add_rule(def).unwrap();
    }

    g.set_strategy(pick(
        rng,
        &[
            ConflictStrategy::DenyOverrides,
            ConflictStrategy::PermitOverrides,
            ConflictStrategy::FirstApplicable,
            ConflictStrategy::MostSpecific,
        ],
    ));
    if rng.gen_bool(0.5) {
        g.set_default_min_confidence(random_confidence(rng));
    }

    Model {
        g,
        env_roles,
        subjects,
        objects,
        transactions,
    }
}

/// A random request across all three actor postures, occasionally with
/// unknown ids so the error paths trace identically too.
fn random_request(rng: &mut StdRng, model: &mut Model) -> AccessRequest {
    let active: Vec<RoleId> = model
        .env_roles
        .iter()
        .copied()
        .filter(|_| rng.gen_bool(0.5))
        .collect();
    let environment = EnvironmentSnapshot::from_active(active);
    let transaction = if rng.gen_bool(0.05) {
        TransactionId::from_raw(900)
    } else {
        pick(rng, &model.transactions)
    };
    let object = if rng.gen_bool(0.05) {
        ObjectId::from_raw(900)
    } else {
        pick(rng, &model.objects)
    };
    match rng.gen_range(0..3u32) {
        0 => {
            AccessRequest::by_subject(pick(rng, &model.subjects), transaction, object, environment)
        }
        1 => {
            let subject = pick(rng, &model.subjects);
            let session = model.g.open_session(subject).unwrap();
            for role in model.g.assignments().subject_roles(subject) {
                if rng.gen_bool(0.6) {
                    let _ = model.g.activate_role(session, role);
                }
            }
            AccessRequest::by_session(session, transaction, object, environment)
        }
        _ => {
            let mut ctx = AuthContext::new();
            if rng.gen_bool(0.7) {
                ctx.claim_identity(pick(rng, &model.subjects), random_confidence(rng));
            }
            for _ in 0..rng.gen_range(0..=2u32) {
                ctx.claim_role(pick(rng, &model.env_roles), random_confidence(rng));
            }
            AccessRequest::by_sensed(ctx, transaction, object, environment)
        }
    }
}

proptest! {
    /// decide_traced() ≡ decide() — same decision (effect, winner,
    /// matched set, explanation) on identical input — and every
    /// successful trace covers the five pipeline stages in order.
    fn traced_decision_matches_untraced(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model = build_model(&mut rng);
        for _ in 0..8 {
            let request = random_request(&mut rng, &mut model);
            let plain = model.g.decide(&request);
            let traced = model.g.decide_traced(&request);
            match (plain, traced) {
                (Ok(expected), Ok((decision, trace))) => {
                    prop_assert_eq!(decision, expected);
                    let stages: Vec<Stage> =
                        trace.stages.iter().map(|record| record.stage).collect();
                    prop_assert_eq!(stages, Stage::ALL.to_vec());
                }
                (Err(expected), Err(err)) => {
                    prop_assert_eq!(format!("{err:?}"), format!("{expected:?}"));
                }
                (plain, traced) => {
                    return Err(TestCaseError::fail(format!(
                        "paths disagree: decide={plain:?} decide_traced={traced:?}"
                    )));
                }
            }
        }
    }

    /// The registry accounts for exactly the decisions made: permits +
    /// denies == Ok decisions, errors == Err decisions, whether the
    /// requests went through decide(), decide_traced() or a batch.
    fn registry_accounts_for_every_decision(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model = build_model(&mut rng);
        let requests: Vec<AccessRequest> =
            (0..6).map(|_| random_request(&mut rng, &mut model)).collect();

        let before = model.g.metrics().snapshot();
        let mut ok = 0u64;
        let mut errors = 0u64;
        let mut tally = |result: &Result<Decision, GrbacError>| match result {
            Ok(_) => ok += 1,
            Err(_) => errors += 1,
        };
        for request in &requests[..3] {
            tally(&model.g.decide(request));
            tally(&model.g.decide_traced(request).map(|(decision, _)| decision));
        }
        for result in model.g.decide_batch(&requests[3..]) {
            tally(&result);
        }
        let delta = model.g.metrics().snapshot().delta(&before);

        if telemetry::ENABLED {
            let decided = delta.counter("grbac_decisions_permit_total")
                + delta.counter("grbac_decisions_deny_total");
            prop_assert_eq!(decided, ok);
            prop_assert_eq!(delta.counter("grbac_decide_errors_total"), errors);
            prop_assert_eq!(delta.counter("grbac_batch_calls_total"), 1);
        }
    }
}
