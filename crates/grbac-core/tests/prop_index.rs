//! Differential property suite: the compiled mediation path
//! (`Grbac::decide`, `Grbac::decide_batch`) must produce decisions
//! identical to the retained reference scan (`Grbac::decide_naive`) —
//! same effect, same winner, same matched set, same explanation — on
//! randomized policies, actors, and after index-invalidating mutations.

use grbac_core::prelude::*;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Model {
    g: Grbac,
    subject_roles: Vec<RoleId>,
    object_roles: Vec<RoleId>,
    env_roles: Vec<RoleId>,
    subjects: Vec<SubjectId>,
    objects: Vec<ObjectId>,
    transactions: Vec<TransactionId>,
}

fn pick<T: Copy>(rng: &mut StdRng, items: &[T]) -> T {
    items[rng.gen_range(0..items.len())]
}

fn random_confidence(rng: &mut StdRng) -> Confidence {
    Confidence::new(rng.gen_range(0.0..=1.0)).expect("in range")
}

/// Builds a random household: role vocabularies with random DAG edges,
/// entities, assignments, and a random rule book.
fn build_model(rng: &mut StdRng) -> Model {
    let mut g = Grbac::new();

    let subject_roles: Vec<RoleId> = (0..rng.gen_range(1..=6usize))
        .map(|i| g.declare_subject_role(format!("sr{i}")).unwrap())
        .collect();
    let object_roles: Vec<RoleId> = (0..rng.gen_range(1..=5usize))
        .map(|i| g.declare_object_role(format!("or{i}")).unwrap())
        .collect();
    let env_roles: Vec<RoleId> = (0..rng.gen_range(1..=4usize))
        .map(|i| g.declare_environment_role(format!("er{i}")).unwrap())
        .collect();

    // Random specialization edges; cycles and self-edges are rejected
    // by the engine, which is fine — we only need *some* DAG.
    for roles in [&subject_roles, &object_roles, &env_roles] {
        for _ in 0..rng.gen_range(0..=roles.len() * 2) {
            let specific = pick(rng, roles);
            let general = pick(rng, roles);
            let _ = g.specialize(specific, general);
        }
    }

    let transactions: Vec<TransactionId> = (0..rng.gen_range(1..=3usize))
        .map(|i| g.declare_transaction(format!("t{i}")).unwrap())
        .collect();
    let subjects: Vec<SubjectId> = (0..rng.gen_range(1..=4usize))
        .map(|i| g.declare_subject(format!("sub{i}")).unwrap())
        .collect();
    let objects: Vec<ObjectId> = (0..rng.gen_range(1..=3usize))
        .map(|i| g.declare_object(format!("obj{i}")).unwrap())
        .collect();

    for &subject in &subjects {
        for &role in &subject_roles {
            if rng.gen_bool(0.4) {
                let _ = g.assign_subject_role(subject, role);
            }
        }
    }
    for &object in &objects {
        for &role in &object_roles {
            if rng.gen_bool(0.5) {
                let _ = g.assign_object_role(object, role);
            }
        }
    }

    for _ in 0..rng.gen_range(0..=15usize) {
        add_random_rule(
            rng,
            &mut g,
            &subject_roles,
            &object_roles,
            &env_roles,
            &transactions,
        );
    }

    g.set_strategy(pick(
        rng,
        &[
            ConflictStrategy::DenyOverrides,
            ConflictStrategy::PermitOverrides,
            ConflictStrategy::FirstApplicable,
            ConflictStrategy::MostSpecific,
        ],
    ));
    if rng.gen_bool(0.3) {
        g.set_default_effect(Effect::Permit);
    }
    if rng.gen_bool(0.5) {
        let threshold = random_confidence(rng);
        g.set_default_min_confidence(threshold);
    }

    Model {
        g,
        subject_roles,
        object_roles,
        env_roles,
        subjects,
        objects,
        transactions,
    }
}

fn add_random_rule(
    rng: &mut StdRng,
    g: &mut Grbac,
    subject_roles: &[RoleId],
    object_roles: &[RoleId],
    env_roles: &[RoleId],
    transactions: &[TransactionId],
) {
    let mut def = if rng.gen_bool(0.5) {
        RuleDef::permit()
    } else {
        RuleDef::deny()
    };
    if rng.gen_bool(0.7) {
        def = def.subject_role(pick(rng, subject_roles));
    }
    if rng.gen_bool(0.7) {
        def = def.object_role(pick(rng, object_roles));
    }
    if rng.gen_bool(0.7) {
        def = def.transaction(pick(rng, transactions));
    }
    for &env in env_roles {
        if rng.gen_bool(0.3) {
            def = def.when(env);
        }
    }
    if rng.gen_bool(0.3) {
        def = def.min_confidence(random_confidence(rng));
    }
    g.add_rule(def).unwrap();
}

/// A random request: any actor posture, valid or (occasionally)
/// unknown ids, random environment activation including undeclared
/// role ids that both paths must skip identically.
fn random_request(rng: &mut StdRng, model: &mut Model) -> AccessRequest {
    let mut active: Vec<RoleId> = model
        .env_roles
        .iter()
        .copied()
        .filter(|_| rng.gen_bool(0.5))
        .collect();
    if rng.gen_bool(0.1) {
        active.push(RoleId::from_raw(500 + rng.gen_range(0..10u64)));
    }
    let environment = EnvironmentSnapshot::from_active(active);

    let transaction = if rng.gen_bool(0.05) {
        TransactionId::from_raw(900)
    } else {
        pick(rng, &model.transactions)
    };
    let object = if rng.gen_bool(0.05) {
        ObjectId::from_raw(900)
    } else {
        pick(rng, &model.objects)
    };

    match rng.gen_range(0..3u32) {
        0 => {
            let subject = if rng.gen_bool(0.05) {
                SubjectId::from_raw(900)
            } else {
                pick(rng, &model.subjects)
            };
            AccessRequest::by_subject(subject, transaction, object, environment)
        }
        1 => {
            let subject = pick(rng, &model.subjects);
            let session = model.g.open_session(subject).unwrap();
            for role in model.g.assignments().subject_roles(subject) {
                if rng.gen_bool(0.6) {
                    let _ = model.g.activate_role(session, role);
                }
            }
            AccessRequest::by_session(session, transaction, object, environment)
        }
        _ => {
            let mut ctx = AuthContext::new();
            if rng.gen_bool(0.7) {
                let subject = if rng.gen_bool(0.1) {
                    SubjectId::from_raw(900)
                } else {
                    pick(rng, &model.subjects)
                };
                ctx.claim_identity(subject, random_confidence(rng));
            }
            for _ in 0..rng.gen_range(0..=3u32) {
                // Claims may name roles of any kind or undeclared ids;
                // both paths must ignore the invalid ones the same way.
                let role = match rng.gen_range(0..4u32) {
                    0 => pick(rng, &model.subject_roles),
                    1 => pick(rng, &model.object_roles),
                    2 => pick(rng, &model.env_roles),
                    _ => RoleId::from_raw(700 + rng.gen_range(0..10u64)),
                };
                ctx.claim_role(role, random_confidence(rng));
            }
            AccessRequest::by_sensed(ctx, transaction, object, environment)
        }
    }
}

/// One random index-invalidating mutation.
fn mutate(rng: &mut StdRng, model: &mut Model) {
    match rng.gen_range(0..6u32) {
        0 => {
            let subject = pick(rng, &model.subjects);
            let role = pick(rng, &model.subject_roles);
            let _ = model.g.revoke_subject_role(subject, role);
        }
        1 => {
            let object = pick(rng, &model.objects);
            let role = pick(rng, &model.object_roles);
            let _ = model.g.revoke_object_role(object, role);
        }
        2 => {
            if let Some(rule) = model.g.rules().first() {
                let id = rule.id();
                model.g.remove_rule(id);
            }
        }
        3 => {
            let (sr, or, er, tx) = (
                model.subject_roles.clone(),
                model.object_roles.clone(),
                model.env_roles.clone(),
                model.transactions.clone(),
            );
            add_random_rule(rng, &mut model.g, &sr, &or, &er, &tx);
        }
        4 => {
            let specific = pick(rng, &model.subject_roles);
            let general = pick(rng, &model.subject_roles);
            let _ = model.g.specialize(specific, general);
        }
        _ => {
            let n = model.subject_roles.len();
            let role = model.g.declare_subject_role(format!("late{n}")).unwrap();
            model.subject_roles.push(role);
            let subject = pick(rng, &model.subjects);
            let _ = model.g.assign_subject_role(subject, role);
        }
    }
}

fn assert_paths_agree(g: &Grbac, request: &AccessRequest) -> Result<(), TestCaseError> {
    let compiled = g.decide(request);
    let naive = g.decide_naive(request);
    match (compiled, naive) {
        (Ok(fast), Ok(reference)) => prop_assert_eq!(fast, reference),
        (compiled, naive) => {
            prop_assert_eq!(format!("{compiled:?}"), format!("{naive:?}"));
        }
    }
    Ok(())
}

proptest! {
    /// decide() ≡ decide_naive() over random policies and actors.
    fn compiled_decide_matches_naive(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model = build_model(&mut rng);
        for _ in 0..8 {
            let request = random_request(&mut rng, &mut model);
            assert_paths_agree(&model.g, &request)?;
        }
    }

    /// The equivalence survives mutations at every invalidation site
    /// (assign/revoke, add/remove rule, specialize, late declaration).
    fn equivalence_survives_mutations(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model = build_model(&mut rng);
        for _ in 0..4 {
            let request = random_request(&mut rng, &mut model);
            assert_paths_agree(&model.g, &request)?;
            mutate(&mut rng, &mut model);
            assert_paths_agree(&model.g, &request)?;
        }
    }

    /// Any interleaved delta schedule leaves the compiled index
    /// structurally identical to a from-scratch rebuild at the same
    /// generation — the incremental path must never drift, whether
    /// the index is repaired after every edit or after a burst.
    fn delta_schedule_matches_rebuild(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model = build_model(&mut rng);
        // Prime the index so subsequent edits exercise the delta path
        // rather than the first from-scratch build.
        let request = random_request(&mut rng, &mut model);
        let _ = model.g.decide(&request);
        for _ in 0..10 {
            mutate(&mut rng, &mut model);
            if rng.gen_bool(0.6) {
                // Repair immediately: single-delta application.
                prop_assert!(model.g.compiled_matches_rebuild());
            }
            // Otherwise let edits accumulate into a multi-delta batch
            // resolved at the next check or decide.
        }
        prop_assert!(model.g.compiled_matches_rebuild());
        let request = random_request(&mut rng, &mut model);
        assert_paths_agree(&model.g, &request)?;
    }

    /// decide_batch() returns exactly what per-request decide_naive()
    /// returns, in request order.
    fn batch_matches_naive(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model = build_model(&mut rng);
        let requests: Vec<AccessRequest> =
            (0..6).map(|_| random_request(&mut rng, &mut model)).collect();
        let batch = model.g.decide_batch(&requests);
        prop_assert_eq!(batch.len(), requests.len());
        for (result, request) in batch.iter().zip(&requests) {
            let reference = model.g.decide_naive(request);
            match (result, reference) {
                (Ok(fast), Ok(reference)) => prop_assert_eq!(fast, &reference),
                (fast, reference) => {
                    prop_assert_eq!(format!("{fast:?}"), format!("{:?}", &reference));
                }
            }
        }
    }
}
