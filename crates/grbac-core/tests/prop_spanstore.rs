//! Span-store property suite (mirror of the flight recorder's
//! `prop_recorder`): under concurrent writers the sharded ring must
//! account for every span (retained + dropped = recorded), retain no
//! more than its capacity, hold no torn spans, keep per-writer
//! sequence numbers strictly monotone, and count evictions exactly.

use std::collections::BTreeMap;
use std::sync::Barrier;

use grbac_core::telemetry::{Span, SpanKind, SpanStore, TraceId};
use proptest::prelude::*;

/// Each writer `t` records spans whose every field encodes `(t, i)`;
/// a torn span shows up as fields that disagree about who wrote it.
fn span_for(t: usize, i: usize) -> Span {
    let trace = TraceId::from_parts(0xace0_0000 + t as u64, 0xbeef);
    let mut span = Span::start(trace, None, SpanKind::Internal, format!("w{t}-{i}"));
    span.tenant = Some(format!("tenant{t}"));
    span.op = Some(format!("op{i}"));
    span.finish();
    span
}

/// Parses the `(t, i)` identity back out of a span's name.
fn identity(span: &Span) -> (usize, usize) {
    let (t, i) = span
        .name
        .strip_prefix('w')
        .and_then(|rest| rest.split_once('-'))
        .expect("span name is w<t>-<i>");
    (t.parse().expect("t"), i.parse().expect("i"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Race `threads` writers, each recording `per_writer` spans, at
    /// one shared store. Afterwards every span is accounted for,
    /// retention stays within capacity, the eviction counter matches
    /// the overwritten count exactly, no span is torn, and per-writer
    /// sequence numbers climb strictly.
    fn concurrent_writers_never_tear_the_store(
        capacity_pow in 3u32..8,
        threads in 2usize..5,
        per_writer in 1usize..48,
    ) {
        let capacity = 1usize << capacity_pow;
        let store = SpanStore::with_capacity(capacity);
        let barrier = Barrier::new(threads);
        std::thread::scope(|scope| {
            for t in 0..threads {
                let store = &store;
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    for i in 0..per_writer {
                        store.record(span_for(t, i)).expect("enabled store records");
                    }
                });
            }
        });

        let total = (threads * per_writer) as u64;
        prop_assert_eq!(store.total_recorded(), total);

        // Exact accounting: every span ever recorded is either still
        // retained or counted as dropped — the eviction counter cannot
        // over- or under-report.
        prop_assert_eq!(store.len() as u64 + store.dropped(), total);
        prop_assert!(store.len() <= store.capacity(),
            "len {} exceeds capacity {}", store.len(), store.capacity());

        let spans = store.snapshot();
        prop_assert_eq!(spans.len(), store.len());

        // No tears: every retained span's fields agree on one (t, i).
        for span in &spans {
            let (t, i) = identity(span);
            prop_assert!(t < threads && i < per_writer);
            prop_assert_eq!(span.trace_id, TraceId::from_parts(0xace0_0000 + t as u64, 0xbeef));
            prop_assert_eq!(span.tenant.clone(), Some(format!("tenant{t}")));
            prop_assert_eq!(span.op.clone(), Some(format!("op{i}")));
            prop_assert!(span.end_ns >= span.start_ns);
        }

        // Claim tickets are unique (the snapshot is seq-sorted).
        for pair in spans.windows(2) {
            prop_assert!(pair[0].seq < pair[1].seq);
        }

        // Per-writer monotonicity, twice over: the store-assigned
        // writer_seq and the writer's own payload counter `i` both
        // climb strictly within the retained window.
        let mut last_by_writer: BTreeMap<u32, (u64, usize)> = BTreeMap::new();
        for span in &spans {
            let (_, i) = identity(span);
            if let Some(&(previous_seq, previous_i)) = last_by_writer.get(&span.writer) {
                prop_assert!(
                    span.writer_seq > previous_seq,
                    "writer {} writer_seq went {} -> {}",
                    span.writer, previous_seq, span.writer_seq
                );
                prop_assert!(
                    i > previous_i,
                    "writer {} payload went {} -> {}",
                    span.writer, previous_i, i
                );
            }
            last_by_writer.insert(span.writer, (span.writer_seq, i));
        }
    }

    /// Self-sampling fires exactly once per `rate` calls regardless of
    /// the requested rate (rounded up to a power of two).
    fn sampling_rate_is_exact(rate in 1u64..100, calls in 1usize..400) {
        let store = SpanStore::with_capacity(64);
        store.set_sample_rate(rate);
        let effective = store.sample_rate();
        prop_assert!(effective.is_power_of_two() && effective >= rate.max(1));
        let sampled = (0..calls).filter(|_| store.should_sample()).count() as u64;
        prop_assert_eq!(sampled, (calls as u64).div_ceil(effective));
    }
}

/// The master switch: a disabled store records nothing, samples
/// nothing, and re-enabling resumes cleanly.
#[test]
fn disabled_store_is_inert() {
    let store = SpanStore::with_capacity(32);
    store.set_enabled(false);
    assert!(!store.is_enabled());
    assert!(store.record(span_for(0, 0)).is_none());
    assert!(!store.should_sample());
    assert_eq!(store.total_recorded(), 0);
    assert!(store.is_empty());

    store.set_enabled(true);
    assert!(store.record(span_for(0, 1)).is_some());
    assert_eq!(store.total_recorded(), 1);
    assert_eq!(store.len(), 1);
}

/// Zero capacity disables the store at construction — recording is
/// refused rather than panicking on an empty shard list.
#[test]
fn zero_capacity_store_never_records() {
    let store = SpanStore::with_capacity(0);
    assert_eq!(store.capacity(), 0);
    assert!(!store.is_enabled());
    assert!(store.record(span_for(0, 0)).is_none());
    assert!(store.snapshot().is_empty());
    assert_eq!(store.dropped(), 0);
}

/// `trace` and `roots` reassemble exactly the spans of one trace from
/// the retained window, even with other traces interleaved.
#[test]
fn trace_lookup_filters_and_orders() {
    let store = SpanStore::with_capacity(128);
    let wanted = TraceId::from_parts(0x1111, 0x2222);
    let noise = TraceId::from_parts(0x3333, 0x4444);

    let mut root = Span::start(wanted, None, SpanKind::Server, "decide");
    for round in 0..3 {
        let mut child = Span::start(
            wanted,
            Some(root.span_id),
            SpanKind::Engine,
            format!("stage{round}"),
        );
        child.finish();
        store.record(child);
        let mut other = Span::start(noise, None, SpanKind::Internal, "noise");
        other.finish();
        store.record(other);
    }
    root.finish();
    store.record(root);

    let spans = store.trace(wanted);
    assert_eq!(spans.len(), 4);
    assert!(spans.iter().all(|span| span.trace_id == wanted));
    // Ordered by start time: the root opened first.
    assert_eq!(spans[0].name, "decide");

    let roots = store.roots();
    assert_eq!(roots.len(), 4, "one wanted root + three noise roots");
    // Newest first: the wanted root was recorded last.
    assert_eq!(roots[0].name, "decide");
}
