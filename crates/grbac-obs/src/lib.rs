//! # grbac-obs — a live observability plane for GRBAC engines
//!
//! The engine's four telemetry surfaces — metrics, quantile sketches
//! with exemplars, the decision flight recorder, and the audit log —
//! are all in-process data structures. This crate makes them reachable
//! over the network with **zero external dependencies**: a small
//! threaded HTTP/1.1 server on std's [`TcpListener`] with a bounded
//! worker pool and graceful shutdown.
//!
//! | Route | Body |
//! |---|---|
//! | `GET /metrics` | Prometheus text exposition (with OpenMetrics exemplars) |
//! | `GET /metrics.json` | the same snapshot as JSON |
//! | `GET /health` | watchdog tick + policy health score |
//! | `GET /heat` | per-rule heat table |
//! | `GET /alerts` | the watchdog's retained alert log |
//! | `GET /decision/<id>` | cross-surface correlation lookup for one decision |
//! | `GET /trace/<trace_id>` | assembled span tree for one wire trace, decide spans joined with their decision story |
//! | `GET /traces` | recent trace roots (`?tenant=`, `?op=`, `?min_duration_us=`, `?limit=`) |
//! | `GET /traces.json` | every retained span as OTLP-shaped JSON |
//!
//! `/decision/<id>` is the payoff of the decision-correlation scheme:
//! the 32-hex-digit [`DecisionId`] scraped out of an exemplar on
//! `/metrics` resolves here to the decision's flight-recorder entry, a
//! structural replay diff against the current policy, and its audit
//! row — one id, the full story. The trace routes extend that story
//! upstream of the engine: attach a
//! [`SpanStore`] with
//! [`EngineObs::with_spans`] (or serve through
//! `PolicyService::serve_observability`, which attaches the service's
//! store) and a `trace` id echoed on the wire resolves to the full
//! queue → lock → engine breakdown, with each decide span joined to its
//! decision story by the stamped `DecisionId`. All routes are GET-only;
//! other methods answer `405` with an `Allow: GET` header.
//!
//! ```no_run
//! use std::sync::{Arc, RwLock};
//! use grbac_core::Grbac;
//! use grbac_obs::{EngineObs, ObsServer};
//!
//! let engine = Arc::new(RwLock::new(Grbac::new()));
//! let server = ObsServer::serve(EngineObs::new(engine), "127.0.0.1:0").unwrap();
//! println!("scrape http://{}/metrics", server.addr());
//! server.shutdown();
//! ```
//!
//! The server never takes the engine's write lock and holds the read
//! lock only while rendering one response, so a home mediating
//! requests concurrently is delayed at most one snapshot per scrape
//! (experiment E15 bounds the cost under sustained load at ≤2%
//! decide throughput).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use grbac_core::analysis::health_report;
use grbac_core::provenance::decision_story;
use grbac_core::telemetry::{
    assemble_trace, otlp_value, DecisionWatchdog, Exporter, JsonExporter, PrometheusExporter,
    SpanStore, SpanTree, TraceId,
};
use grbac_core::{DecisionId, Grbac};
use serde::Value;

/// The engine-side state one observability server exposes: a shared
/// engine plus an optional shared watchdog slot (`/health` ticks it,
/// `/alerts` reads its retained log) and an optional shared span store
/// (the `/trace*` routes; absent, they answer 404).
#[derive(Debug, Clone)]
pub struct EngineObs {
    engine: Arc<RwLock<Grbac>>,
    watchdog: Arc<Mutex<Option<DecisionWatchdog>>>,
    spans: Option<Arc<SpanStore>>,
}

impl EngineObs {
    /// Observes `engine` with no watchdog (`/health` still reports the
    /// policy health score; `/alerts` serves an empty log).
    #[must_use]
    pub fn new(engine: Arc<RwLock<Grbac>>) -> Self {
        Self {
            engine,
            watchdog: Arc::new(Mutex::new(None)),
            spans: None,
        }
    }

    /// Observes `engine` and shares `watchdog` — pass the same handle
    /// the mediating side ticks (e.g. `AwareHome::watchdog_handle`) so
    /// `/health` scrapes advance the same EWMA baselines.
    #[must_use]
    pub fn with_watchdog(
        engine: Arc<RwLock<Grbac>>,
        watchdog: Arc<Mutex<Option<DecisionWatchdog>>>,
    ) -> Self {
        Self {
            engine,
            watchdog,
            spans: None,
        }
    }

    /// Attaches a span store, enabling `/trace/<trace_id>`, `/traces`
    /// and `/traces.json` — pass the same store the serving side
    /// records into (e.g. `PolicyService::span_store`).
    #[must_use]
    pub fn with_spans(mut self, spans: Arc<SpanStore>) -> Self {
        self.spans = Some(spans);
        self
    }

    fn respond(&self, path: &str, query: &str) -> Response {
        match path {
            "/metrics" => {
                let snapshot = self.engine.read().expect("engine lock").metrics_snapshot();
                Response::ok(
                    "text/plain; version=0.0.4; charset=utf-8",
                    PrometheusExporter.export(&snapshot),
                )
            }
            "/metrics.json" => {
                let snapshot = self.engine.read().expect("engine lock").metrics_snapshot();
                Response::ok("application/json", JsonExporter.export(&snapshot))
            }
            "/health" => self.health(),
            "/heat" => {
                let heat = self.engine.read().expect("engine lock").heat_snapshot();
                Response::json(&heat)
            }
            "/alerts" => {
                let alerts: Vec<_> = self
                    .watchdog
                    .lock()
                    .expect("watchdog lock")
                    .as_ref()
                    .map(|w| w.alerts().cloned().collect())
                    .unwrap_or_default();
                Response::json(&alerts)
            }
            "/traces" => self.traces(query),
            "/traces.json" => match &self.spans {
                Some(spans) => Response::json_value(&otlp_value("grbac", &spans.snapshot())),
                None => Response::not_found("tracing not enabled on this plane"),
            },
            _ => {
                if let Some(hex) = path.strip_prefix("/decision/") {
                    self.decision(hex)
                } else if let Some(hex) = path.strip_prefix("/trace/") {
                    self.trace(hex)
                } else {
                    Response::not_found("no such route")
                }
            }
        }
    }

    /// `/health`: tick the watchdog against the engine's registry, then
    /// score the current policy. The registry `Arc` is cloned out of
    /// the read guard and the guard dropped before the watchdog lock is
    /// taken, so a concurrent `watchdog_tick` on the mediating side can
    /// never deadlock against a scrape.
    fn health(&self) -> Response {
        let (metrics, report) = {
            let engine = self.engine.read().expect("engine lock");
            (Arc::clone(engine.metrics()), health_report(&engine))
        };
        let (installed, fresh_alerts, ticks) = {
            let mut slot = self.watchdog.lock().expect("watchdog lock");
            match slot.as_mut() {
                Some(watchdog) => {
                    let raised = watchdog.tick(&metrics);
                    (true, raised.len(), watchdog.tick_count())
                }
                None => (false, 0, 0),
            }
        };
        let healthy = report.is_healthy() && fresh_alerts == 0;
        let body = format!(
            "{{\"status\":\"{}\",\"policy_score\":{:.4},\"policy_healthy\":{},\"watchdog_installed\":{},\"watchdog_ticks\":{},\"alerts_this_tick\":{}}}",
            if healthy { "ok" } else { "degraded" },
            report.score(),
            report.is_healthy(),
            installed,
            ticks,
            fresh_alerts,
        );
        Response::ok("application/json", body)
    }

    /// `/decision/<id>`: the correlation lookup. 400 for unparseable
    /// ids, 404 for ids the recorder no longer (or never) retained.
    fn decision(&self, hex: &str) -> Response {
        let id: DecisionId = match hex.parse() {
            Ok(id) => id,
            Err(_) => return Response::bad_request("decision id must be hex digits"),
        };
        let engine = self.engine.read().expect("engine lock");
        match decision_story(&engine, id) {
            Some(story) => Response::json(&story),
            None => Response::not_found("decision not retained"),
        }
    }

    /// `/trace/<trace_id>`: the assembled span tree for one wire
    /// trace. Spans stamped with an assigned `DecisionId` (the engine
    /// children of decide/explain requests) are joined with their
    /// [`decision_story`] inline, so one echoed trace id resolves both
    /// *where the time went* and *why the answer was what it was*. 400
    /// for unparseable ids, 404 when no span of the trace is retained.
    fn trace(&self, hex: &str) -> Response {
        let Some(store) = &self.spans else {
            return Response::not_found("tracing not enabled on this plane");
        };
        let id: TraceId = match hex.parse() {
            Ok(id) => id,
            Err(_) => return Response::bad_request("trace id must be 32 hex digits"),
        };
        let spans = store.trace(id);
        if spans.is_empty() {
            return Response::not_found("trace not retained");
        }
        let count = spans.len();
        let trees = assemble_trace(spans);
        let engine = self.engine.read().expect("engine lock");
        let rendered: Vec<Value> = trees
            .iter()
            .map(|tree| tree_with_stories(tree, &engine))
            .collect();
        drop(engine);
        Response::json_value(&Value::Map(vec![
            ("trace_id".to_owned(), Value::Str(id.to_string())),
            ("span_count".to_owned(), Value::UInt(count as u64)),
            ("spans".to_owned(), Value::Seq(rendered)),
        ]))
    }

    /// `/traces`: recent trace roots, newest first. Query filters:
    /// `tenant=<name>`, `op=<op>`, `min_duration_us=<n>`, `limit=<n>`
    /// (default 64). Unknown keys are ignored (forward compatibility);
    /// unparseable numeric values answer 400.
    fn traces(&self, query: &str) -> Response {
        let Some(store) = &self.spans else {
            return Response::not_found("tracing not enabled on this plane");
        };
        let mut tenant: Option<&str> = None;
        let mut op: Option<&str> = None;
        let mut min_duration_ns: u64 = 0;
        let mut limit: usize = 64;
        for (key, value) in query
            .split('&')
            .filter(|pair| !pair.is_empty())
            .map(|pair| pair.split_once('=').unwrap_or((pair, "")))
        {
            match key {
                "tenant" => tenant = Some(value),
                "op" => op = Some(value),
                "min_duration_us" => match value.parse::<u64>() {
                    Ok(us) => min_duration_ns = us.saturating_mul(1_000),
                    Err(_) => return Response::bad_request("min_duration_us must be an integer"),
                },
                "limit" => match value.parse::<usize>() {
                    Ok(n) => limit = n,
                    Err(_) => return Response::bad_request("limit must be an integer"),
                },
                _ => {}
            }
        }
        let roots: Vec<Value> = store
            .roots()
            .into_iter()
            .filter(|span| tenant.is_none_or(|t| span.tenant.as_deref() == Some(t)))
            .filter(|span| op.is_none_or(|o| span.op.as_deref() == Some(o)))
            .filter(|span| span.duration_ns() >= min_duration_ns)
            .take(limit)
            .map(|span| span.to_value())
            .collect();
        Response::json_value(&Value::Map(vec![
            ("traces".to_owned(), Value::Seq(roots)),
            (
                "total_recorded".to_owned(),
                Value::UInt(store.total_recorded()),
            ),
            ("dropped".to_owned(), Value::UInt(store.dropped())),
            ("sample_rate".to_owned(), Value::UInt(store.sample_rate())),
        ]))
    }
}

/// Renders a span tree as JSON, attaching `decision_story` to any span
/// whose stamped decision id still resolves against the engine's
/// correlation surfaces.
fn tree_with_stories(tree: &SpanTree, engine: &Grbac) -> Value {
    let mut value = tree.span.to_value();
    if let Value::Map(fields) = &mut value {
        if tree.span.decision_id.is_assigned() {
            if let Some(story) = decision_story(engine, tree.span.decision_id) {
                fields.push((
                    "decision_story".to_owned(),
                    serde::Serialize::to_value(&story),
                ));
            }
        }
        fields.push((
            "children".to_owned(),
            Value::Seq(
                tree.children
                    .iter()
                    .map(|child| tree_with_stories(child, engine))
                    .collect(),
            ),
        ));
    }
    value
}

struct Response {
    status: u16,
    reason: &'static str,
    content_type: &'static str,
    body: String,
    /// Extra `Allow:` header — RFC 9110 requires one on a 405.
    allow: Option<&'static str>,
}

impl Response {
    fn ok(content_type: &'static str, body: String) -> Self {
        Self {
            status: 200,
            reason: "OK",
            content_type,
            body,
            allow: None,
        }
    }

    fn json<T: serde::Serialize>(value: &T) -> Self {
        match serde_json::to_string(value) {
            Ok(body) => Self::ok("application/json", body),
            Err(_) => Self {
                status: 500,
                reason: "Internal Server Error",
                content_type: "text/plain; charset=utf-8",
                body: "serialization failed".to_owned(),
                allow: None,
            },
        }
    }

    /// Like [`Response::json`] but named for an already-assembled
    /// [`Value`] (the trace handlers build composite bodies no single
    /// type serializes to).
    fn json_value(value: &Value) -> Self {
        Self::json(value)
    }

    fn bad_request(message: &str) -> Self {
        Self {
            status: 400,
            reason: "Bad Request",
            content_type: "text/plain; charset=utf-8",
            body: message.to_owned(),
            allow: None,
        }
    }

    fn not_found(message: &str) -> Self {
        Self {
            status: 404,
            reason: "Not Found",
            content_type: "text/plain; charset=utf-8",
            body: message.to_owned(),
            allow: None,
        }
    }

    fn method_not_allowed() -> Self {
        Self {
            status: 405,
            reason: "Method Not Allowed",
            content_type: "text/plain; charset=utf-8",
            body: "only GET is served".to_owned(),
            allow: Some("GET"),
        }
    }

    fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let allow = match self.allow {
            Some(methods) => format!("Allow: {methods}\r\n"),
            None => String::new(),
        };
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{}Connection: close\r\n\r\n",
            self.status,
            self.reason,
            self.content_type,
            self.body.len(),
            allow,
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(self.body.as_bytes())
    }
}

/// Parses the request line of one HTTP/1.1 request, returning
/// `(method, path, query)`. Headers are read and discarded (the server
/// is GET-only and stateless). The query string (without the `?`) is
/// preserved for the routes that filter, empty when absent.
fn parse_request(stream: &TcpStream) -> std::io::Result<Option<(String, String, String)>> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_owned();
    let target = parts.next().unwrap_or_default();
    let (path, query) = match target.split_once('?') {
        Some((path, query)) => (path.to_owned(), query.to_owned()),
        None => (target.to_owned(), String::new()),
    };
    // Drain the headers so the peer sees the response after a clean
    // request; bodies are ignored (GET has none).
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header == "\r\n" || header == "\n" {
            break;
        }
    }
    Ok(Some((method, path, query)))
}

fn handle_connection(obs: &EngineObs, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let response = match parse_request(&stream) {
        Ok(Some((method, path, query))) => {
            if method == "GET" {
                obs.respond(&path, &query)
            } else {
                Response::method_not_allowed()
            }
        }
        Ok(None) => return,
        Err(_) => Response::bad_request("malformed request"),
    };
    let _ = response.write_to(&mut stream);
    let _ = stream.flush();
}

fn worker(obs: EngineObs, jobs: Arc<Mutex<Receiver<TcpStream>>>) {
    loop {
        // Hold the receiver lock only to dequeue, not to serve.
        let stream = match jobs.lock().expect("job queue lock").recv() {
            Ok(stream) => stream,
            Err(_) => return, // acceptor dropped the sender: shutdown
        };
        handle_connection(&obs, stream);
    }
}

/// A running observability server: an acceptor thread feeding a
/// bounded pool of worker threads. Dropping the handle without calling
/// [`shutdown`](Self::shutdown) leaves the threads serving until the
/// process exits (detached); shutdown joins them.
#[derive(Debug)]
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ObsServer {
    /// How many connections may queue behind busy workers before
    /// accepts block (bounding memory under scrape storms).
    pub const QUEUE_DEPTH: usize = 32;

    /// Serves `obs` on `addr` (use port 0 for an ephemeral port; the
    /// bound address is [`addr`](Self::addr)) with
    /// [`DEFAULT_WORKERS`](Self::DEFAULT_WORKERS) workers.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn serve(obs: EngineObs, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Self::serve_with_workers(obs, addr, Self::DEFAULT_WORKERS)
    }

    /// Worker threads serving requests concurrently; scrapes are
    /// read-lock-only so a handful is plenty.
    pub const DEFAULT_WORKERS: usize = 2;

    /// Serves `obs` on `addr` with an explicit worker count (min 1).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn serve_with_workers(
        obs: EngineObs,
        addr: impl ToSocketAddrs,
        workers: usize,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let (sender, receiver): (SyncSender<TcpStream>, Receiver<TcpStream>) =
            sync_channel(Self::QUEUE_DEPTH);
        let receiver = Arc::new(Mutex::new(receiver));

        let pool: Vec<JoinHandle<()>> = (0..workers.max(1))
            .map(|_| {
                let obs = obs.clone();
                let jobs = Arc::clone(&receiver);
                std::thread::spawn(move || worker(obs, jobs))
            })
            .collect();

        let acceptor = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::Acquire) {
                        break; // the shutdown self-connect woke us
                    }
                    match stream {
                        Ok(stream) => {
                            if sender.send(stream).is_err() {
                                break;
                            }
                        }
                        Err(_) => continue,
                    }
                }
                // Dropping `sender` here disconnects the channel, so
                // workers drain the queue and exit.
            })
        };

        Ok(Self {
            addr,
            stop,
            acceptor: Some(acceptor),
            workers: pool,
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains queued connections, and joins every
    /// thread. In-flight responses finish; new connections are
    /// refused once the listener closes.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        // The acceptor blocks in `incoming()`; a throwaway connection
        // wakes it so it observes the stop flag.
        if let Ok(mut wake) = TcpStream::connect(self.addr) {
            let _ = wake.write_all(b"");
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Blocking one-shot GET against a running server, for tests and
/// smoke checks: returns `(status, body)`.
///
/// # Errors
///
/// Connection or protocol failures.
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: grbac-obs\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no status line"))?;
    let body = match raw.split_once("\r\n\r\n") {
        Some((_, body)) => body.to_owned(),
        None => String::new(),
    };
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use grbac_core::telemetry::{Span, SpanKind};

    /// Like [`get`] but with an arbitrary method and the raw response
    /// head preserved, so tests can assert on headers.
    fn request(
        addr: SocketAddr,
        method: &str,
        path: &str,
    ) -> std::io::Result<(u16, String, String)> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: grbac-obs\r\nConnection: close\r\n\r\n"
        )?;
        stream.flush()?;
        let mut raw = String::new();
        stream.read_to_string(&mut raw)?;
        let status: u16 = raw
            .split_whitespace()
            .nth(1)
            .and_then(|code| code.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "no status line")
            })?;
        let (head, body) = raw.split_once("\r\n\r\n").unwrap_or((raw.as_str(), ""));
        Ok((status, head.to_owned(), body.to_owned()))
    }

    fn engine_with_policy() -> Arc<RwLock<Grbac>> {
        let mut g = Grbac::new();
        let child = g.declare_subject_role("child").unwrap();
        let toys = g.declare_object_role("toys").unwrap();
        let use_t = g.declare_transaction("use").unwrap();
        let bobby = g.declare_subject("bobby").unwrap();
        g.assign_subject_role(bobby, child).unwrap();
        let tv = g.declare_object("tv").unwrap();
        g.assign_object_role(tv, toys).unwrap();
        g.add_rule(
            grbac_core::RuleDef::permit()
                .subject_role(child)
                .object_role(toys)
                .transaction(use_t),
        )
        .unwrap();
        Arc::new(RwLock::new(g))
    }

    fn decide_once(engine: &Arc<RwLock<Grbac>>) {
        let g = engine.read().unwrap();
        let request = {
            let bobby = grbac_core::prelude::SubjectId::from_raw(0);
            let tv = grbac_core::prelude::ObjectId::from_raw(0);
            let use_t = grbac_core::prelude::TransactionId::from_raw(0);
            grbac_core::AccessRequest::by_subject(
                bobby,
                use_t,
                tv,
                grbac_core::EnvironmentSnapshot::new(),
            )
        };
        g.decide(&request).unwrap();
    }

    #[test]
    fn routes_serve_and_shutdown_joins() {
        let engine = engine_with_policy();
        engine.read().unwrap().metrics().set_latency_sample_rate(1);
        decide_once(&engine);
        let server = ObsServer::serve(EngineObs::new(Arc::clone(&engine)), "127.0.0.1:0").unwrap();
        let addr = server.addr();

        let (status, metrics) = get(addr, "/metrics").unwrap();
        assert_eq!(status, 200);
        assert!(metrics.contains("grbac_decisions_permit_total"));

        let (status, json) = get(addr, "/metrics.json").unwrap();
        assert_eq!(status, 200);
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("metrics.json parses");
        drop(parsed);

        let (status, health) = get(addr, "/health").unwrap();
        assert_eq!(status, 200);
        assert!(health.contains("\"policy_score\""));
        assert!(health.contains("\"watchdog_installed\":false"));

        let (status, heat) = get(addr, "/heat").unwrap();
        assert_eq!(status, 200);
        let parsed: serde_json::Value = serde_json::from_str(&heat).expect("heat parses");
        drop(parsed);

        let (status, alerts) = get(addr, "/alerts").unwrap();
        assert_eq!(status, 200);
        assert_eq!(alerts, "[]");

        let (status, _) = get(addr, "/nope").unwrap();
        assert_eq!(status, 404);
        let (status, _) = get(addr, "/decision/zzz").unwrap();
        assert_eq!(status, 400);
        let (status, _) = get(addr, "/decision/ffffffffffffffffffffffffffffffff").unwrap();
        assert_eq!(status, 404);

        // Non-GET methods are refused with 405 and the RFC-required
        // `Allow` header, alongside the 400/404 cases above.
        for method in ["POST", "PUT", "DELETE", "HEAD"] {
            let (status, head, _) = request(addr, method, "/metrics").unwrap();
            assert_eq!(status, 405, "{method} must be refused");
            assert!(
                head.contains("Allow: GET"),
                "405 must carry `Allow: GET`, got: {head}"
            );
        }
        // GET itself never sees the Allow header.
        let (_, head, _) = request(addr, "GET", "/metrics").unwrap();
        assert!(!head.contains("Allow:"));

        // Without a span store attached, the trace routes 404 rather
        // than pretending an empty plane is a quiet one.
        let (status, _) = get(addr, "/traces").unwrap();
        assert_eq!(status, 404);
        let (status, _) = get(addr, "/traces.json").unwrap();
        assert_eq!(status, 404);

        server.shutdown();
        assert!(
            get(addr, "/metrics").is_err() || get(addr, "/metrics").map(|r| r.0).unwrap_or(0) == 0,
            "the listener must be closed after shutdown"
        );
    }

    /// The trace routes over a hand-built trace: `/traces` lists the
    /// root (and filters by tenant/op/duration), `/trace/<id>` returns
    /// the assembled tree, `/traces.json` is OTLP-shaped, and bad
    /// inputs answer 400/404.
    #[test]
    fn trace_routes_serve_span_trees() {
        let engine = engine_with_policy();
        let spans = Arc::new(SpanStore::new());

        let trace_id = TraceId::from_parts(0x1234_5678_9abc_def0, 0x0fed_cba9_8765_4321);
        let mut root = Span::start(trace_id, None, SpanKind::Server, "decide");
        root.tenant = Some("acme".to_owned());
        root.op = Some("decide".to_owned());
        let mut engine_child =
            Span::start(trace_id, Some(root.span_id), SpanKind::Engine, "decide");
        engine_child.finish();
        spans.record(engine_child);
        let mut queue_child =
            Span::start(trace_id, Some(root.span_id), SpanKind::Queue, "queue_wait");
        queue_child.finish();
        spans.record(queue_child);
        root.finish();
        spans.record(root);

        let obs = EngineObs::new(Arc::clone(&engine)).with_spans(Arc::clone(&spans));
        let server = ObsServer::serve(obs, "127.0.0.1:0").unwrap();
        let addr = server.addr();

        let (status, body) = get(addr, "/traces").unwrap();
        assert_eq!(status, 200, "{body}");
        let listed: serde_json::Value = serde_json::from_str(&body).expect("traces parses");
        drop(listed);
        assert!(body.contains(&trace_id.to_string()));
        assert!(body.contains("\"total_recorded\":3"));

        // Filters: matching tenant+op keeps the root; a wrong tenant
        // filters it out; an absurd duration floor filters it out.
        let (_, body) = get(addr, "/traces?tenant=acme&op=decide").unwrap();
        assert!(body.contains(&trace_id.to_string()));
        let (_, body) = get(addr, "/traces?tenant=other").unwrap();
        assert!(!body.contains(&trace_id.to_string()));
        let (_, body) = get(addr, "/traces?min_duration_us=86400000000").unwrap();
        assert!(!body.contains(&trace_id.to_string()));
        let (status, _) = get(addr, "/traces?limit=zero").unwrap();
        assert_eq!(status, 400);
        let (status, _) = get(addr, "/traces?min_duration_us=-3").unwrap();
        assert_eq!(status, 400);

        // The assembled tree: one root holding both children.
        let (status, body) = get(addr, &format!("/trace/{trace_id}")).unwrap();
        assert_eq!(status, 200, "{body}");
        let tree: serde_json::Value = serde_json::from_str(&body).expect("trace parses");
        drop(tree);
        assert!(body.contains("\"span_count\":3"));
        assert!(body.contains("queue_wait"));
        assert!(body.contains("\"kind\":\"engine\""));

        let (status, _) = get(addr, "/trace/zzz").unwrap();
        assert_eq!(status, 400);
        let (status, _) = get(addr, "/trace/ffffffffffffffffffffffffffffffff").unwrap();
        assert_eq!(status, 404);

        // OTLP export: resourceSpans shape with stringified nanos.
        let (status, body) = get(addr, "/traces.json").unwrap();
        assert_eq!(status, 200);
        let otlp: serde_json::Value = serde_json::from_str(&body).expect("otlp parses");
        drop(otlp);
        assert!(body.contains("resourceSpans"));
        assert!(body.contains("scopeSpans"));
        assert!(body.contains("startTimeUnixNano"));

        server.shutdown();
    }

    /// The acceptance-criterion round trip: a decision id scraped out
    /// of an exported exemplar on `/metrics` resolves via
    /// `/decision/<id>` to a recorder record, a replay diff, and an
    /// audit-row slot that agree structurally.
    #[test]
    fn exemplar_id_resolves_to_a_full_story() {
        if !grbac_core::telemetry::ENABLED {
            return;
        }
        let engine = engine_with_policy();
        engine.read().unwrap().metrics().set_latency_sample_rate(1);
        for _ in 0..4 {
            decide_once(&engine);
        }
        let server = ObsServer::serve(EngineObs::new(Arc::clone(&engine)), "127.0.0.1:0").unwrap();

        let (status, metrics) = get(server.addr(), "/metrics").unwrap();
        assert_eq!(status, 200);
        let hex = metrics
            .lines()
            .find_map(|line| {
                let (_, rest) = line.split_once("# {decision_id=\"")?;
                rest.split('"').next().map(str::to_owned)
            })
            .expect("a sampled decide must export at least one exemplar");
        let id: DecisionId = hex.parse().expect("exemplar ids are hex");
        assert!(id.is_assigned());

        let (status, story) = get(server.addr(), &format!("/decision/{hex}")).unwrap();
        assert_eq!(status, 200, "the exemplar id must resolve: {story}");
        let story: grbac_core::DecisionStory =
            serde_json::from_str(&story).expect("story deserializes");
        assert_eq!(story.decision_id, id);
        assert_eq!(story.record.decision_id, id);
        let replay = story.replay.as_ref().expect("same policy still replays");
        assert_eq!(replay.recorded_effect, story.record.effect);
        assert!(
            story.agrees(),
            "recorder, replay, and audit must agree structurally"
        );

        server.shutdown();
    }
}
