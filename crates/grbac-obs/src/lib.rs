//! # grbac-obs — a live observability plane for GRBAC engines
//!
//! The engine's four telemetry surfaces — metrics, quantile sketches
//! with exemplars, the decision flight recorder, and the audit log —
//! are all in-process data structures. This crate makes them reachable
//! over the network with **zero external dependencies**: a small
//! threaded HTTP/1.1 server on std's [`TcpListener`] with a bounded
//! worker pool and graceful shutdown.
//!
//! | Route | Body |
//! |---|---|
//! | `GET /metrics` | Prometheus text exposition (with OpenMetrics exemplars) |
//! | `GET /metrics.json` | the same snapshot as JSON |
//! | `GET /health` | watchdog tick + policy health score |
//! | `GET /heat` | per-rule heat table |
//! | `GET /alerts` | the watchdog's retained alert log |
//! | `GET /decision/<id>` | cross-surface correlation lookup for one decision |
//! | `GET /trace/<trace_id>` | assembled span tree for one wire trace, decide spans joined with their decision story |
//! | `GET /traces` | recent trace roots (`?tenant=`, `?op=`, `?min_duration_us=`, `?limit=`) |
//! | `GET /traces.json` | every retained span as OTLP-shaped JSON |
//! | `GET /events` | live telemetry events as Server-Sent Events (`?kinds=`, `?min_severity=`, `?since=`; `Last-Event-ID` resumes) |
//! | `GET /timeseries` | windowed metrics series (`?series=`, `?windows=`) |
//! | `GET /dashboard` | self-contained live HTML dashboard (sparklines + event feed) |
//!
//! `/decision/<id>` is the payoff of the decision-correlation scheme:
//! the 32-hex-digit [`DecisionId`] scraped out of an exemplar on
//! `/metrics` resolves here to the decision's flight-recorder entry, a
//! structural replay diff against the current policy, and its audit
//! row — one id, the full story. The trace routes extend that story
//! upstream of the engine: attach a
//! [`SpanStore`] with
//! [`EngineObs::with_spans`] (or serve through
//! `PolicyService::serve_observability`, which attaches the service's
//! store) and a `trace` id echoed on the wire resolves to the full
//! queue → lock → engine breakdown, with each decide span joined to its
//! decision story by the stamped `DecisionId`. All routes are GET-only;
//! other methods answer `405` with an `Allow: GET` header.
//!
//! The three live routes require [`EngineObs::with_live_telemetry`]
//! (absent, they answer 404): it subscribes the plane to the engine's
//! [`EventBus`](grbac_core::telemetry::EventBus) and starts — once
//! served — a background pump that drains events into a bounded
//! replayable ring and records a [`MetricsHistory`] window every
//! ~500 ms. `/events` streams the ring as SSE (`id:` is the bus seq,
//! so `Last-Event-ID` reconnects resume exactly where the client left
//! off) with `: heartbeat` comments while quiet; `/timeseries` answers
//! windowed rate series for dashboards; `/dashboard` is a single
//! self-contained HTML page consuming both. A streaming `/events`
//! connection occupies one worker for its lifetime — size the pool
//! with [`ObsServer::serve_with_workers`] when you expect several
//! concurrent watchers.
//!
//! ```no_run
//! use std::sync::{Arc, RwLock};
//! use grbac_core::Grbac;
//! use grbac_obs::{EngineObs, ObsServer};
//!
//! let engine = Arc::new(RwLock::new(Grbac::new()));
//! let server = ObsServer::serve(EngineObs::new(engine), "127.0.0.1:0").unwrap();
//! println!("scrape http://{}/metrics", server.addr());
//! server.shutdown();
//! ```
//!
//! The server never takes the engine's write lock and holds the read
//! lock only while rendering one response, so a home mediating
//! requests concurrently is delayed at most one snapshot per scrape
//! (experiment E15 bounds the cost under sustained load at ≤2%
//! decide throughput).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use grbac_core::analysis::health_report;
use grbac_core::provenance::decision_story;
use grbac_core::telemetry::{
    assemble_trace, otlp_value, DecisionWatchdog, EventFilter, EventKind, EventSubscription,
    Exporter, JsonExporter, MetricsHistory, PrometheusExporter, Severity, SpanStore, SpanTree,
    TelemetryEvent, TraceId,
};
use grbac_core::{DecisionId, Grbac};
use serde::Value;

/// The obs plane's own tap on the engine's event bus plus its metrics
/// time series: a long-lived bus subscription drained into a bounded
/// replayable ring (so SSE reconnects can resume by seq) and a
/// [`MetricsHistory`] recorded on a ~500 ms cadence.
///
/// Pull-fed like the history itself: [`EngineObs::live_tick`] does one
/// pump-and-maybe-scrape step. [`ObsServer`] runs a background ticker
/// whenever the plane it serves has live telemetry attached, and every
/// `/events` stream ticks on its own poll loop too, so events reach
/// watchers within one tick even between scrapes.
#[derive(Debug)]
pub struct LiveTelemetry {
    subscription: EventSubscription,
    ring: Mutex<VecDeque<Arc<TelemetryEvent>>>,
    history: MetricsHistory,
    last_scrape: Mutex<Option<Instant>>,
}

impl LiveTelemetry {
    /// Events the replay ring retains for `Last-Event-ID` resume (and
    /// the bus-side ring capacity of the plane's subscription).
    pub const RETAINED_EVENTS: usize = 1_024;

    /// Target cadence between metrics-history captures.
    pub const SCRAPE_INTERVAL: Duration = Duration::from_millis(500);

    fn new(engine: &Arc<RwLock<Grbac>>) -> Self {
        let subscription = engine
            .read()
            .expect("engine lock")
            .metrics()
            .events
            .subscribe(Self::RETAINED_EVENTS, EventFilter::all());
        Self {
            subscription,
            ring: Mutex::new(VecDeque::new()),
            history: MetricsHistory::new(MetricsHistory::DEFAULT_CAPACITY),
            last_scrape: Mutex::new(None),
        }
    }

    /// The metrics time series behind `/timeseries`.
    #[must_use]
    pub fn history(&self) -> &MetricsHistory {
        &self.history
    }

    /// Moves everything the bus delivered since the last pump into the
    /// retained ring, evicting oldest beyond
    /// [`RETAINED_EVENTS`](Self::RETAINED_EVENTS).
    fn pump(&self) {
        let events = self.subscription.drain();
        if events.is_empty() {
            return;
        }
        let mut ring = self
            .ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for event in events {
            if ring.len() >= Self::RETAINED_EVENTS {
                ring.pop_front();
            }
            ring.push_back(event);
        }
    }

    /// Retained events with a bus seq strictly greater than `cursor`,
    /// oldest first.
    fn events_after(&self, cursor: u64) -> Vec<Arc<TelemetryEvent>> {
        let ring = self
            .ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        ring.iter()
            .filter(|event| event.seq > cursor)
            .cloned()
            .collect()
    }

    /// Unconditionally captures one history window from the engine's
    /// current counters.
    fn scrape(&self, engine: &Arc<RwLock<Grbac>>) {
        let snapshot = engine.read().expect("engine lock").metrics_snapshot();
        self.history.record(snapshot);
    }

    /// [`Self::scrape`] gated to the [`SCRAPE_INTERVAL`](Self::SCRAPE_INTERVAL)
    /// cadence — callers can tick as often as they like.
    fn maybe_scrape(&self, engine: &Arc<RwLock<Grbac>>) {
        {
            let mut last = self
                .last_scrape
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if last.is_some_and(|at| at.elapsed() < Self::SCRAPE_INTERVAL) {
                return;
            }
            *last = Some(Instant::now());
        }
        self.scrape(engine);
    }
}

/// The engine-side state one observability server exposes: a shared
/// engine plus an optional shared watchdog slot (`/health` ticks it,
/// `/alerts` reads its retained log), an optional shared span store
/// (the `/trace*` routes; absent, they answer 404), and optional live
/// telemetry (the `/events`, `/timeseries` and `/dashboard` routes;
/// absent, they answer 404).
#[derive(Debug, Clone)]
pub struct EngineObs {
    engine: Arc<RwLock<Grbac>>,
    watchdog: Arc<Mutex<Option<DecisionWatchdog>>>,
    spans: Option<Arc<SpanStore>>,
    live: Option<Arc<LiveTelemetry>>,
}

impl EngineObs {
    /// Observes `engine` with no watchdog (`/health` still reports the
    /// policy health score; `/alerts` serves an empty log).
    #[must_use]
    pub fn new(engine: Arc<RwLock<Grbac>>) -> Self {
        Self {
            engine,
            watchdog: Arc::new(Mutex::new(None)),
            spans: None,
            live: None,
        }
    }

    /// Observes `engine` and shares `watchdog` — pass the same handle
    /// the mediating side ticks (e.g. `AwareHome::watchdog_handle`) so
    /// `/health` scrapes advance the same EWMA baselines.
    #[must_use]
    pub fn with_watchdog(
        engine: Arc<RwLock<Grbac>>,
        watchdog: Arc<Mutex<Option<DecisionWatchdog>>>,
    ) -> Self {
        Self {
            engine,
            watchdog,
            spans: None,
            live: None,
        }
    }

    /// Attaches a span store, enabling `/trace/<trace_id>`, `/traces`
    /// and `/traces.json` — pass the same store the serving side
    /// records into (e.g. `PolicyService::span_store`).
    #[must_use]
    pub fn with_spans(mut self, spans: Arc<SpanStore>) -> Self {
        self.spans = Some(spans);
        self
    }

    /// Attaches live telemetry, enabling `/events`, `/timeseries` and
    /// `/dashboard`: subscribes this plane to the engine's event bus
    /// (which flips the bus out of its nobody-listening fast path) and
    /// allocates the metrics-history ring. [`ObsServer::serve`] starts
    /// the background ticker automatically when it sees live telemetry
    /// attached.
    #[must_use]
    pub fn with_live_telemetry(mut self) -> Self {
        self.live = Some(Arc::new(LiveTelemetry::new(&self.engine)));
        self
    }

    /// The attached live telemetry, when enabled.
    #[must_use]
    pub fn live(&self) -> Option<&Arc<LiveTelemetry>> {
        self.live.as_ref()
    }

    /// One live-telemetry step: drain the bus subscription into the
    /// replay ring and, if the scrape interval elapsed, record a
    /// metrics-history window. No-op without live telemetry.
    pub fn live_tick(&self) {
        if let Some(live) = &self.live {
            live.pump();
            live.maybe_scrape(&self.engine);
        }
    }

    fn respond(&self, path: &str, query: &str) -> Response {
        match path {
            "/metrics" => {
                let snapshot = self.engine.read().expect("engine lock").metrics_snapshot();
                Response::ok(
                    "text/plain; version=0.0.4; charset=utf-8",
                    PrometheusExporter.export(&snapshot),
                )
            }
            "/metrics.json" => {
                let snapshot = self.engine.read().expect("engine lock").metrics_snapshot();
                Response::ok("application/json", JsonExporter.export(&snapshot))
            }
            "/health" => self.health(),
            "/heat" => {
                let heat = self.engine.read().expect("engine lock").heat_snapshot();
                Response::json(&heat)
            }
            "/alerts" => {
                let alerts: Vec<_> = self
                    .watchdog
                    .lock()
                    .expect("watchdog lock")
                    .as_ref()
                    .map(|w| w.alerts().cloned().collect())
                    .unwrap_or_default();
                Response::json(&alerts)
            }
            "/traces" => self.traces(query),
            "/traces.json" => match &self.spans {
                Some(spans) => Response::json_value(&otlp_value("grbac", &spans.snapshot())),
                None => Response::not_found("tracing not enabled on this plane"),
            },
            "/timeseries" => self.timeseries(query),
            "/dashboard" => {
                if self.live.is_some() {
                    Response::ok("text/html; charset=utf-8", DASHBOARD_HTML.to_owned())
                } else {
                    Response::not_found("live telemetry not enabled on this plane")
                }
            }
            _ => {
                if let Some(hex) = path.strip_prefix("/decision/") {
                    self.decision(hex)
                } else if let Some(hex) = path.strip_prefix("/trace/") {
                    self.trace(hex)
                } else {
                    Response::not_found("no such route")
                }
            }
        }
    }

    /// `/health`: tick the watchdog against the engine's registry, then
    /// score the current policy. The registry `Arc` is cloned out of
    /// the read guard and the guard dropped before the watchdog lock is
    /// taken, so a concurrent `watchdog_tick` on the mediating side can
    /// never deadlock against a scrape.
    fn health(&self) -> Response {
        let (metrics, report) = {
            let engine = self.engine.read().expect("engine lock");
            (Arc::clone(engine.metrics()), health_report(&engine))
        };
        let (installed, fresh_alerts, ticks) = {
            let mut slot = self.watchdog.lock().expect("watchdog lock");
            match slot.as_mut() {
                Some(watchdog) => {
                    let raised = watchdog.tick(&metrics);
                    (true, raised.len(), watchdog.tick_count())
                }
                None => (false, 0, 0),
            }
        };
        let healthy = report.is_healthy() && fresh_alerts == 0;
        let body = format!(
            "{{\"status\":\"{}\",\"policy_score\":{:.4},\"policy_healthy\":{},\"watchdog_installed\":{},\"watchdog_ticks\":{},\"alerts_this_tick\":{}}}",
            if healthy { "ok" } else { "degraded" },
            report.score(),
            report.is_healthy(),
            installed,
            ticks,
            fresh_alerts,
        );
        Response::ok("application/json", body)
    }

    /// `/decision/<id>`: the correlation lookup. 400 for unparseable
    /// ids, 404 for ids the recorder no longer (or never) retained.
    fn decision(&self, hex: &str) -> Response {
        let id: DecisionId = match hex.parse() {
            Ok(id) => id,
            Err(_) => return Response::bad_request("decision id must be hex digits"),
        };
        let engine = self.engine.read().expect("engine lock");
        match decision_story(&engine, id) {
            Some(story) => Response::json(&story),
            None => Response::not_found("decision not retained"),
        }
    }

    /// `/trace/<trace_id>`: the assembled span tree for one wire
    /// trace. Spans stamped with an assigned `DecisionId` (the engine
    /// children of decide/explain requests) are joined with their
    /// [`decision_story`] inline, so one echoed trace id resolves both
    /// *where the time went* and *why the answer was what it was*. 400
    /// for unparseable ids, 404 when no span of the trace is retained.
    fn trace(&self, hex: &str) -> Response {
        let Some(store) = &self.spans else {
            return Response::not_found("tracing not enabled on this plane");
        };
        let id: TraceId = match hex.parse() {
            Ok(id) => id,
            Err(_) => return Response::bad_request("trace id must be 32 hex digits"),
        };
        let spans = store.trace(id);
        if spans.is_empty() {
            return Response::not_found("trace not retained");
        }
        let count = spans.len();
        let trees = assemble_trace(spans);
        let engine = self.engine.read().expect("engine lock");
        let rendered: Vec<Value> = trees
            .iter()
            .map(|tree| tree_with_stories(tree, &engine))
            .collect();
        drop(engine);
        Response::json_value(&Value::Map(vec![
            ("trace_id".to_owned(), Value::Str(id.to_string())),
            ("span_count".to_owned(), Value::UInt(count as u64)),
            ("spans".to_owned(), Value::Seq(rendered)),
        ]))
    }

    /// `/traces`: recent trace roots, newest first. Query filters:
    /// `tenant=<name>`, `op=<op>`, `min_duration_us=<n>`, `limit=<n>`
    /// (default 64). Unknown keys are ignored (forward compatibility);
    /// unparseable numeric values answer 400.
    fn traces(&self, query: &str) -> Response {
        let Some(store) = &self.spans else {
            return Response::not_found("tracing not enabled on this plane");
        };
        let mut tenant: Option<&str> = None;
        let mut op: Option<&str> = None;
        let mut min_duration_ns: u64 = 0;
        let mut limit: usize = 64;
        for (key, value) in query
            .split('&')
            .filter(|pair| !pair.is_empty())
            .map(|pair| pair.split_once('=').unwrap_or((pair, "")))
        {
            match key {
                "tenant" => tenant = Some(value),
                "op" => op = Some(value),
                "min_duration_us" => match value.parse::<u64>() {
                    Ok(us) => min_duration_ns = us.saturating_mul(1_000),
                    Err(_) => return Response::bad_request("min_duration_us must be an integer"),
                },
                "limit" => match value.parse::<usize>() {
                    Ok(n) => limit = n,
                    Err(_) => return Response::bad_request("limit must be an integer"),
                },
                _ => {}
            }
        }
        let roots: Vec<Value> = store
            .roots()
            .into_iter()
            .filter(|span| tenant.is_none_or(|t| span.tenant.as_deref() == Some(t)))
            .filter(|span| op.is_none_or(|o| span.op.as_deref() == Some(o)))
            .filter(|span| span.duration_ns() >= min_duration_ns)
            .take(limit)
            .map(|span| span.to_value())
            .collect();
        Response::json_value(&Value::Map(vec![
            ("traces".to_owned(), Value::Seq(roots)),
            (
                "total_recorded".to_owned(),
                Value::UInt(store.total_recorded()),
            ),
            ("dropped".to_owned(), Value::UInt(store.dropped())),
            ("sample_rate".to_owned(), Value::UInt(store.sample_rate())),
        ]))
    }

    /// `/timeseries`: named per-window metrics series, oldest first.
    /// Query: `series=<name,...>` (default the three derived rate
    /// series), `windows=<n>` (default 32). Unknown series names and
    /// unparseable counts answer 400.
    fn timeseries(&self, query: &str) -> Response {
        let Some(live) = &self.live else {
            return Response::not_found("live telemetry not enabled on this plane");
        };
        // Serve fresh data even when scraped between ticker beats.
        self.live_tick();
        let mut names = vec![
            "deny_rate_ppm".to_owned(),
            "decide_per_sec".to_owned(),
            "degraded_ppm".to_owned(),
        ];
        let mut windows: usize = 32;
        for (key, value) in query
            .split('&')
            .filter(|pair| !pair.is_empty())
            .map(|pair| pair.split_once('=').unwrap_or((pair, "")))
        {
            match key {
                "series" => {
                    names = value
                        .split(',')
                        .filter(|name| !name.is_empty())
                        .map(str::to_owned)
                        .collect();
                }
                "windows" => match value.parse::<usize>() {
                    Ok(n) if n > 0 => windows = n,
                    _ => return Response::bad_request("windows must be a positive integer"),
                },
                _ => {}
            }
        }
        let recent = live.history.windows(windows);
        let mut series = Vec::with_capacity(names.len());
        for name in names {
            let Some(points) = live.history.series(&name, windows) else {
                return Response::bad_request("unknown series (derived names: deny_rate_ppm, decide_per_sec, degraded_ppm; otherwise any exported counter or gauge)");
            };
            series.push((
                name,
                Value::Seq(points.into_iter().map(Value::Float).collect()),
            ));
        }
        Response::json_value(&Value::Map(vec![
            ("windows".to_owned(), Value::UInt(recent.len() as u64)),
            (
                "elapsed_ns".to_owned(),
                Value::Seq(recent.iter().map(|w| Value::UInt(w.elapsed_ns)).collect()),
            ),
            ("series".to_owned(), Value::Map(series)),
        ]))
    }
}

/// The `/dashboard` page: one self-contained HTML document — inline
/// CSS, inline JS, SVG sparklines — polling `/timeseries` and tailing
/// `/events` over `EventSource`. No external assets, so it renders on
/// an air-gapped network exactly as it does here.
const DASHBOARD_HTML: &str = r##"<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>grbac live telemetry</title>
<style>
 body { font: 14px/1.4 system-ui, sans-serif; margin: 2rem; background: #11151a; color: #d8dee6; }
 h1 { font-size: 1.3rem; } h2 { font-size: 1rem; margin: 1.2rem 0 .4rem; color: #8fa3b8; }
 .spark { display: inline-block; margin-right: 2rem; }
 .spark svg { background: #1a2129; border: 1px solid #2a3543; }
 .spark .val { font-size: 1.2rem; font-variant-numeric: tabular-nums; }
 #events li { list-style: none; font: 12px/1.5 ui-monospace, monospace; white-space: nowrap; overflow: hidden; text-overflow: ellipsis; }
 #events li.warning { color: #e6c07b; } #events li.critical { color: #e06c75; }
 #events { padding: 0; max-width: 72rem; }
</style>
</head>
<body>
<h1>grbac live telemetry</h1>
<div id="sparks"></div>
<h2>event stream</h2>
<ul id="events"></ul>
<script>
const SERIES = ["deny_rate_ppm", "decide_per_sec", "degraded_ppm"];
const W = 240, H = 48;
function sparkline(points) {
  if (!points.length) return "";
  const max = Math.max(...points, 1e-9);
  const step = points.length > 1 ? W / (points.length - 1) : 0;
  const path = points
    .map((p, i) => `${(i * step).toFixed(1)},${(H - 4 - (p / max) * (H - 8)).toFixed(1)}`)
    .join(" ");
  return `<svg width="${W}" height="${H}"><polyline fill="none" stroke="#61afef" stroke-width="1.5" points="${path}"/></svg>`;
}
async function refresh() {
  try {
    const body = await (await fetch("/timeseries?windows=64")).json();
    document.getElementById("sparks").innerHTML = SERIES.map(name => {
      const points = body.series[name] || [];
      const last = points.length ? points[points.length - 1] : 0;
      return `<div class="spark"><h2>${name}</h2>${sparkline(points)}<div class="val">${last.toFixed(1)}</div></div>`;
    }).join("");
  } catch (e) { /* plane restarting; retry on the next beat */ }
}
refresh();
setInterval(refresh, 1000);
const feed = document.getElementById("events");
const source = new EventSource("/events");
source.onmessage = frame => {
  const event = JSON.parse(frame.data);
  const row = document.createElement("li");
  row.className = event.severity;
  row.textContent = `#${event.seq} ${event.kind} ` + JSON.stringify(event);
  feed.prepend(row);
  while (feed.children.length > 50) feed.removeChild(feed.lastChild);
};
</script>
</body>
</html>
"##;

/// Renders a span tree as JSON, attaching `decision_story` to any span
/// whose stamped decision id still resolves against the engine's
/// correlation surfaces.
fn tree_with_stories(tree: &SpanTree, engine: &Grbac) -> Value {
    let mut value = tree.span.to_value();
    if let Value::Map(fields) = &mut value {
        if tree.span.decision_id.is_assigned() {
            if let Some(story) = decision_story(engine, tree.span.decision_id) {
                fields.push((
                    "decision_story".to_owned(),
                    serde::Serialize::to_value(&story),
                ));
            }
        }
        fields.push((
            "children".to_owned(),
            Value::Seq(
                tree.children
                    .iter()
                    .map(|child| tree_with_stories(child, engine))
                    .collect(),
            ),
        ));
    }
    value
}

struct Response {
    status: u16,
    reason: &'static str,
    content_type: &'static str,
    body: String,
    /// Extra `Allow:` header — RFC 9110 requires one on a 405.
    allow: Option<&'static str>,
}

impl Response {
    fn ok(content_type: &'static str, body: String) -> Self {
        Self {
            status: 200,
            reason: "OK",
            content_type,
            body,
            allow: None,
        }
    }

    fn json<T: serde::Serialize>(value: &T) -> Self {
        match serde_json::to_string(value) {
            Ok(body) => Self::ok("application/json", body),
            Err(_) => Self {
                status: 500,
                reason: "Internal Server Error",
                content_type: "text/plain; charset=utf-8",
                body: "serialization failed".to_owned(),
                allow: None,
            },
        }
    }

    /// Like [`Response::json`] but named for an already-assembled
    /// [`Value`] (the trace handlers build composite bodies no single
    /// type serializes to).
    fn json_value(value: &Value) -> Self {
        Self::json(value)
    }

    fn bad_request(message: &str) -> Self {
        Self {
            status: 400,
            reason: "Bad Request",
            content_type: "text/plain; charset=utf-8",
            body: message.to_owned(),
            allow: None,
        }
    }

    fn not_found(message: &str) -> Self {
        Self {
            status: 404,
            reason: "Not Found",
            content_type: "text/plain; charset=utf-8",
            body: message.to_owned(),
            allow: None,
        }
    }

    fn method_not_allowed() -> Self {
        Self {
            status: 405,
            reason: "Method Not Allowed",
            content_type: "text/plain; charset=utf-8",
            body: "only GET is served".to_owned(),
            allow: Some("GET"),
        }
    }

    fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let allow = match self.allow {
            Some(methods) => format!("Allow: {methods}\r\n"),
            None => String::new(),
        };
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{}Connection: close\r\n\r\n",
            self.status,
            self.reason,
            self.content_type,
            self.body.len(),
            allow,
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(self.body.as_bytes())
    }
}

/// One parsed HTTP/1.1 request head.
struct ParsedRequest {
    method: String,
    path: String,
    query: String,
    /// The SSE resume cursor, when the client sent `Last-Event-ID`.
    last_event_id: Option<u64>,
}

/// Parses the request line of one HTTP/1.1 request. Headers are read
/// and discarded except `Last-Event-ID` (the server is otherwise
/// GET-only and stateless). The query string (without the `?`) is
/// preserved for the routes that filter, empty when absent.
fn parse_request(stream: &TcpStream) -> std::io::Result<Option<ParsedRequest>> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_owned();
    let target = parts.next().unwrap_or_default();
    let (path, query) = match target.split_once('?') {
        Some((path, query)) => (path.to_owned(), query.to_owned()),
        None => (target.to_owned(), String::new()),
    };
    // Drain the headers so the peer sees the response after a clean
    // request; bodies are ignored (GET has none).
    let mut last_event_id = None;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header == "\r\n" || header == "\n" {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.trim().eq_ignore_ascii_case("last-event-id") {
                last_event_id = value.trim().parse::<u64>().ok();
            }
        }
    }
    Ok(Some(ParsedRequest {
        method,
        path,
        query,
        last_event_id,
    }))
}

/// How often a streaming `/events` connection polls the live plane for
/// fresh events (and checks the server's stop flag).
const SSE_POLL: Duration = Duration::from_millis(50);

/// Quiet polls before a `: heartbeat` comment goes out (~2 s at
/// [`SSE_POLL`]) — keeps proxies from timing out the stream and lets
/// the server notice a dead client.
const SSE_HEARTBEAT_POLLS: u32 = 40;

/// `/events`: the SSE stream. Each frame is `id: <bus seq>` plus a
/// `data:` line holding the event's flat JSON; the cursor starts at
/// `Last-Event-ID` (or `?since=`), so reconnects replay exactly the
/// retained events the client missed. Runs until the client hangs up
/// or the server shuts down.
fn stream_events(
    obs: &EngineObs,
    stream: &mut TcpStream,
    query: &str,
    last_event_id: Option<u64>,
    stop: &AtomicBool,
) {
    let Some(live) = obs.live.as_ref() else {
        let _ = Response::not_found("live telemetry not enabled on this plane").write_to(stream);
        return;
    };
    let mut filter = EventFilter::all();
    let mut cursor = 0u64;
    for (key, value) in query
        .split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| pair.split_once('=').unwrap_or((pair, "")))
    {
        match key {
            "kinds" => {
                for name in value.split(',').filter(|name| !name.is_empty()) {
                    match EventKind::from_name(name) {
                        Some(kind) => filter = filter.kind(kind),
                        None => {
                            let _ = Response::bad_request("unknown event kind").write_to(stream);
                            return;
                        }
                    }
                }
            }
            "min_severity" => match Severity::from_name(value) {
                Some(severity) => filter = filter.min_severity(severity),
                None => {
                    let _ = Response::bad_request("unknown severity").write_to(stream);
                    return;
                }
            },
            "since" => match value.parse::<u64>() {
                Ok(seq) => cursor = seq,
                Err(_) => {
                    let _ = Response::bad_request("since must be an integer seq").write_to(stream);
                    return;
                }
            },
            _ => {}
        }
    }
    // The SSE spec's reconnect header wins over the query cursor.
    if let Some(seq) = last_event_id {
        cursor = seq;
    }
    if stream
        .write_all(
            b"HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-store\r\nConnection: close\r\n\r\nretry: 2000\n\n",
        )
        .is_err()
    {
        return;
    }
    let mut quiet_polls = 0u32;
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        obs.live_tick();
        let mut wrote = false;
        for event in live.events_after(cursor) {
            cursor = event.seq;
            if !filter.matches(&event) {
                continue;
            }
            let frame = format!(
                "id: {}\ndata: {}\n\n",
                event.seq,
                serde_json::to_string(&event.to_value()).unwrap_or_default()
            );
            if stream.write_all(frame.as_bytes()).is_err() {
                return;
            }
            wrote = true;
        }
        if wrote {
            quiet_polls = 0;
            let _ = stream.flush();
        } else {
            quiet_polls += 1;
            if quiet_polls >= SSE_HEARTBEAT_POLLS {
                quiet_polls = 0;
                if stream.write_all(b": heartbeat\n\n").is_err() {
                    return;
                }
                let _ = stream.flush();
            }
        }
        std::thread::sleep(SSE_POLL);
    }
}

fn handle_connection(obs: &EngineObs, mut stream: TcpStream, stop: &AtomicBool) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let request = match parse_request(&stream) {
        Ok(Some(request)) => request,
        Ok(None) => return,
        Err(_) => {
            let _ = Response::bad_request("malformed request").write_to(&mut stream);
            let _ = stream.flush();
            return;
        }
    };
    if request.method == "GET" && request.path == "/events" {
        stream_events(
            obs,
            &mut stream,
            &request.query,
            request.last_event_id,
            stop,
        );
        let _ = stream.flush();
        return;
    }
    let response = if request.method == "GET" {
        obs.respond(&request.path, &request.query)
    } else {
        Response::method_not_allowed()
    };
    let _ = response.write_to(&mut stream);
    let _ = stream.flush();
}

fn worker(obs: EngineObs, jobs: Arc<Mutex<Receiver<TcpStream>>>, stop: Arc<AtomicBool>) {
    loop {
        // Hold the receiver lock only to dequeue, not to serve.
        let stream = match jobs.lock().expect("job queue lock").recv() {
            Ok(stream) => stream,
            Err(_) => return, // acceptor dropped the sender: shutdown
        };
        handle_connection(&obs, stream, &stop);
    }
}

/// A running observability server: an acceptor thread feeding a
/// bounded pool of worker threads. Dropping the handle without calling
/// [`shutdown`](Self::shutdown) leaves the threads serving until the
/// process exits (detached); shutdown joins them.
#[derive(Debug)]
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    ticker: Option<JoinHandle<()>>,
}

impl ObsServer {
    /// How many connections may queue behind busy workers before
    /// accepts block (bounding memory under scrape storms).
    pub const QUEUE_DEPTH: usize = 32;

    /// Serves `obs` on `addr` (use port 0 for an ephemeral port; the
    /// bound address is [`addr`](Self::addr)) with
    /// [`DEFAULT_WORKERS`](Self::DEFAULT_WORKERS) workers.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn serve(obs: EngineObs, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Self::serve_with_workers(obs, addr, Self::DEFAULT_WORKERS)
    }

    /// Worker threads serving requests concurrently; scrapes are
    /// read-lock-only so a handful is plenty.
    pub const DEFAULT_WORKERS: usize = 2;

    /// Serves `obs` on `addr` with an explicit worker count (min 1).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn serve_with_workers(
        obs: EngineObs,
        addr: impl ToSocketAddrs,
        workers: usize,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let (sender, receiver): (SyncSender<TcpStream>, Receiver<TcpStream>) =
            sync_channel(Self::QUEUE_DEPTH);
        let receiver = Arc::new(Mutex::new(receiver));

        let pool: Vec<JoinHandle<()>> = (0..workers.max(1))
            .map(|_| {
                let obs = obs.clone();
                let jobs = Arc::clone(&receiver);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || worker(obs, jobs, stop))
            })
            .collect();

        // With live telemetry attached, a background ticker keeps the
        // event ring and the metrics history fed even while nobody is
        // watching — so the first dashboard load already has a past.
        let ticker = obs.live.is_some().then(|| {
            let obs = obs.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    obs.live_tick();
                    std::thread::sleep(Self::TICKER_POLL);
                }
            })
        });

        let acceptor = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::Acquire) {
                        break; // the shutdown self-connect woke us
                    }
                    match stream {
                        Ok(stream) => {
                            if sender.send(stream).is_err() {
                                break;
                            }
                        }
                        Err(_) => continue,
                    }
                }
                // Dropping `sender` here disconnects the channel, so
                // workers drain the queue and exit.
            })
        };

        Ok(Self {
            addr,
            stop,
            acceptor: Some(acceptor),
            workers: pool,
            ticker,
        })
    }

    /// How often the live-telemetry ticker wakes (the history scrape
    /// itself is gated to [`LiveTelemetry::SCRAPE_INTERVAL`]; events
    /// move to the replay ring on every beat).
    const TICKER_POLL: Duration = Duration::from_millis(100);

    /// The bound address (resolves port 0 to the actual port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains queued connections, and joins every
    /// thread. In-flight responses finish; new connections are
    /// refused once the listener closes.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        // The acceptor blocks in `incoming()`; a throwaway connection
        // wakes it so it observes the stop flag.
        if let Ok(mut wake) = TcpStream::connect(self.addr) {
            let _ = wake.write_all(b"");
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(ticker) = self.ticker.take() {
            let _ = ticker.join();
        }
    }
}

/// Blocking one-shot GET against a running server, for tests and
/// smoke checks: returns `(status, body)`.
///
/// # Errors
///
/// Connection or protocol failures.
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: grbac-obs\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no status line"))?;
    let body = match raw.split_once("\r\n\r\n") {
        Some((_, body)) => body.to_owned(),
        None => String::new(),
    };
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use grbac_core::telemetry::{Span, SpanKind};

    /// Like [`get`] but with an arbitrary method and the raw response
    /// head preserved, so tests can assert on headers.
    fn request(
        addr: SocketAddr,
        method: &str,
        path: &str,
    ) -> std::io::Result<(u16, String, String)> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: grbac-obs\r\nConnection: close\r\n\r\n"
        )?;
        stream.flush()?;
        let mut raw = String::new();
        stream.read_to_string(&mut raw)?;
        let status: u16 = raw
            .split_whitespace()
            .nth(1)
            .and_then(|code| code.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "no status line")
            })?;
        let (head, body) = raw.split_once("\r\n\r\n").unwrap_or((raw.as_str(), ""));
        Ok((status, head.to_owned(), body.to_owned()))
    }

    fn engine_with_policy() -> Arc<RwLock<Grbac>> {
        let mut g = Grbac::new();
        let child = g.declare_subject_role("child").unwrap();
        let toys = g.declare_object_role("toys").unwrap();
        let use_t = g.declare_transaction("use").unwrap();
        let bobby = g.declare_subject("bobby").unwrap();
        g.assign_subject_role(bobby, child).unwrap();
        let tv = g.declare_object("tv").unwrap();
        g.assign_object_role(tv, toys).unwrap();
        g.add_rule(
            grbac_core::RuleDef::permit()
                .subject_role(child)
                .object_role(toys)
                .transaction(use_t),
        )
        .unwrap();
        Arc::new(RwLock::new(g))
    }

    fn decide_once(engine: &Arc<RwLock<Grbac>>) {
        let g = engine.read().unwrap();
        let request = {
            let bobby = grbac_core::prelude::SubjectId::from_raw(0);
            let tv = grbac_core::prelude::ObjectId::from_raw(0);
            let use_t = grbac_core::prelude::TransactionId::from_raw(0);
            grbac_core::AccessRequest::by_subject(
                bobby,
                use_t,
                tv,
                grbac_core::EnvironmentSnapshot::new(),
            )
        };
        g.decide(&request).unwrap();
    }

    #[test]
    fn routes_serve_and_shutdown_joins() {
        let engine = engine_with_policy();
        engine.read().unwrap().metrics().set_latency_sample_rate(1);
        decide_once(&engine);
        let server = ObsServer::serve(EngineObs::new(Arc::clone(&engine)), "127.0.0.1:0").unwrap();
        let addr = server.addr();

        let (status, metrics) = get(addr, "/metrics").unwrap();
        assert_eq!(status, 200);
        assert!(metrics.contains("grbac_decisions_permit_total"));

        let (status, json) = get(addr, "/metrics.json").unwrap();
        assert_eq!(status, 200);
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("metrics.json parses");
        drop(parsed);

        let (status, health) = get(addr, "/health").unwrap();
        assert_eq!(status, 200);
        assert!(health.contains("\"policy_score\""));
        assert!(health.contains("\"watchdog_installed\":false"));

        let (status, heat) = get(addr, "/heat").unwrap();
        assert_eq!(status, 200);
        let parsed: serde_json::Value = serde_json::from_str(&heat).expect("heat parses");
        drop(parsed);

        let (status, alerts) = get(addr, "/alerts").unwrap();
        assert_eq!(status, 200);
        assert_eq!(alerts, "[]");

        let (status, _) = get(addr, "/nope").unwrap();
        assert_eq!(status, 404);
        let (status, _) = get(addr, "/decision/zzz").unwrap();
        assert_eq!(status, 400);
        let (status, _) = get(addr, "/decision/ffffffffffffffffffffffffffffffff").unwrap();
        assert_eq!(status, 404);

        // Non-GET methods are refused with 405 and the RFC-required
        // `Allow` header, alongside the 400/404 cases above.
        for method in ["POST", "PUT", "DELETE", "HEAD"] {
            let (status, head, _) = request(addr, method, "/metrics").unwrap();
            assert_eq!(status, 405, "{method} must be refused");
            assert!(
                head.contains("Allow: GET"),
                "405 must carry `Allow: GET`, got: {head}"
            );
        }
        // GET itself never sees the Allow header.
        let (_, head, _) = request(addr, "GET", "/metrics").unwrap();
        assert!(!head.contains("Allow:"));

        // Without a span store attached, the trace routes 404 rather
        // than pretending an empty plane is a quiet one.
        let (status, _) = get(addr, "/traces").unwrap();
        assert_eq!(status, 404);
        let (status, _) = get(addr, "/traces.json").unwrap();
        assert_eq!(status, 404);

        server.shutdown();
        assert!(
            get(addr, "/metrics").is_err() || get(addr, "/metrics").map(|r| r.0).unwrap_or(0) == 0,
            "the listener must be closed after shutdown"
        );
    }

    /// The trace routes over a hand-built trace: `/traces` lists the
    /// root (and filters by tenant/op/duration), `/trace/<id>` returns
    /// the assembled tree, `/traces.json` is OTLP-shaped, and bad
    /// inputs answer 400/404.
    #[test]
    fn trace_routes_serve_span_trees() {
        let engine = engine_with_policy();
        let spans = Arc::new(SpanStore::new());

        let trace_id = TraceId::from_parts(0x1234_5678_9abc_def0, 0x0fed_cba9_8765_4321);
        let mut root = Span::start(trace_id, None, SpanKind::Server, "decide");
        root.tenant = Some("acme".to_owned());
        root.op = Some("decide".to_owned());
        let mut engine_child =
            Span::start(trace_id, Some(root.span_id), SpanKind::Engine, "decide");
        engine_child.finish();
        spans.record(engine_child);
        let mut queue_child =
            Span::start(trace_id, Some(root.span_id), SpanKind::Queue, "queue_wait");
        queue_child.finish();
        spans.record(queue_child);
        root.finish();
        spans.record(root);

        let obs = EngineObs::new(Arc::clone(&engine)).with_spans(Arc::clone(&spans));
        let server = ObsServer::serve(obs, "127.0.0.1:0").unwrap();
        let addr = server.addr();

        let (status, body) = get(addr, "/traces").unwrap();
        assert_eq!(status, 200, "{body}");
        let listed: serde_json::Value = serde_json::from_str(&body).expect("traces parses");
        drop(listed);
        assert!(body.contains(&trace_id.to_string()));
        assert!(body.contains("\"total_recorded\":3"));

        // Filters: matching tenant+op keeps the root; a wrong tenant
        // filters it out; an absurd duration floor filters it out.
        let (_, body) = get(addr, "/traces?tenant=acme&op=decide").unwrap();
        assert!(body.contains(&trace_id.to_string()));
        let (_, body) = get(addr, "/traces?tenant=other").unwrap();
        assert!(!body.contains(&trace_id.to_string()));
        let (_, body) = get(addr, "/traces?min_duration_us=86400000000").unwrap();
        assert!(!body.contains(&trace_id.to_string()));
        let (status, _) = get(addr, "/traces?limit=zero").unwrap();
        assert_eq!(status, 400);
        let (status, _) = get(addr, "/traces?min_duration_us=-3").unwrap();
        assert_eq!(status, 400);

        // The assembled tree: one root holding both children.
        let (status, body) = get(addr, &format!("/trace/{trace_id}")).unwrap();
        assert_eq!(status, 200, "{body}");
        let tree: serde_json::Value = serde_json::from_str(&body).expect("trace parses");
        drop(tree);
        assert!(body.contains("\"span_count\":3"));
        assert!(body.contains("queue_wait"));
        assert!(body.contains("\"kind\":\"engine\""));

        let (status, _) = get(addr, "/trace/zzz").unwrap();
        assert_eq!(status, 400);
        let (status, _) = get(addr, "/trace/ffffffffffffffffffffffffffffffff").unwrap();
        assert_eq!(status, 404);

        // OTLP export: resourceSpans shape with stringified nanos.
        let (status, body) = get(addr, "/traces.json").unwrap();
        assert_eq!(status, 200);
        let otlp: serde_json::Value = serde_json::from_str(&body).expect("otlp parses");
        drop(otlp);
        assert!(body.contains("resourceSpans"));
        assert!(body.contains("scopeSpans"));
        assert!(body.contains("startTimeUnixNano"));

        server.shutdown();
    }

    /// The acceptance-criterion round trip: a decision id scraped out
    /// of an exported exemplar on `/metrics` resolves via
    /// `/decision/<id>` to a recorder record, a replay diff, and an
    /// audit-row slot that agree structurally.
    #[test]
    fn exemplar_id_resolves_to_a_full_story() {
        if !grbac_core::telemetry::ENABLED {
            return;
        }
        let engine = engine_with_policy();
        engine.read().unwrap().metrics().set_latency_sample_rate(1);
        for _ in 0..4 {
            decide_once(&engine);
        }
        let server = ObsServer::serve(EngineObs::new(Arc::clone(&engine)), "127.0.0.1:0").unwrap();

        let (status, metrics) = get(server.addr(), "/metrics").unwrap();
        assert_eq!(status, 200);
        let hex = metrics
            .lines()
            .find_map(|line| {
                let (_, rest) = line.split_once("# {decision_id=\"")?;
                rest.split('"').next().map(str::to_owned)
            })
            .expect("a sampled decide must export at least one exemplar");
        let id: DecisionId = hex.parse().expect("exemplar ids are hex");
        assert!(id.is_assigned());

        let (status, story) = get(server.addr(), &format!("/decision/{hex}")).unwrap();
        assert_eq!(status, 200, "the exemplar id must resolve: {story}");
        let story: grbac_core::DecisionStory =
            serde_json::from_str(&story).expect("story deserializes");
        assert_eq!(story.decision_id, id);
        assert_eq!(story.record.decision_id, id);
        let replay = story.replay.as_ref().expect("same policy still replays");
        assert_eq!(replay.recorded_effect, story.record.effect);
        assert!(
            story.agrees(),
            "recorder, replay, and audit must agree structurally"
        );

        server.shutdown();
    }

    /// Opens `path` as an SSE stream (optionally resuming with
    /// `Last-Event-ID`) and reads raw bytes until `until` matches or
    /// the deadline passes. The connection is then dropped — which is
    /// exactly how real SSE clients leave.
    fn sse_read(
        addr: SocketAddr,
        path: &str,
        last_event_id: Option<u64>,
        until: &str,
        deadline: Duration,
    ) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_millis(100)))
            .unwrap();
        let resume = match last_event_id {
            Some(id) => format!("Last-Event-ID: {id}\r\n"),
            None => String::new(),
        };
        write!(
            stream,
            "GET {path} HTTP/1.1\r\nHost: grbac-obs\r\nAccept: text/event-stream\r\n{resume}\r\n"
        )
        .unwrap();
        stream.flush().unwrap();
        let started = std::time::Instant::now();
        let mut raw = Vec::new();
        let mut buf = [0u8; 4096];
        loop {
            match stream.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => raw.extend_from_slice(&buf[..n]),
                Err(err)
                    if matches!(
                        err.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) => {}
                Err(_) => break,
            }
            let text = String::from_utf8_lossy(&raw);
            if text.contains(until) || started.elapsed() > deadline {
                break;
            }
        }
        String::from_utf8_lossy(&raw).into_owned()
    }

    /// Satellite: every route answers with the exact media type its
    /// consumers key on — Prometheus scrapers, JSON dashboards, and
    /// EventSource all sniff `Content-Type` strictly.
    #[test]
    fn header_conformance_across_all_routes() {
        let engine = engine_with_policy();
        let obs = EngineObs::new(Arc::clone(&engine))
            .with_spans(Arc::new(SpanStore::new()))
            .with_live_telemetry();
        let server = ObsServer::serve(obs, "127.0.0.1:0").unwrap();
        let addr = server.addr();

        let expectations = [
            ("/metrics", 200, "text/plain; version=0.0.4; charset=utf-8"),
            ("/metrics.json", 200, "application/json"),
            ("/health", 200, "application/json"),
            ("/heat", 200, "application/json"),
            ("/alerts", 200, "application/json"),
            ("/traces", 200, "application/json"),
            ("/traces.json", 200, "application/json"),
            ("/timeseries", 200, "application/json"),
            ("/dashboard", 200, "text/html; charset=utf-8"),
            ("/nope", 404, "text/plain; charset=utf-8"),
            ("/decision/zzz", 400, "text/plain; charset=utf-8"),
        ];
        for (path, want_status, want_type) in expectations {
            let (status, head, _) = request(addr, "GET", path).unwrap();
            assert_eq!(status, want_status, "{path}");
            assert!(
                head.contains(&format!("Content-Type: {want_type}")),
                "{path} must answer `{want_type}`, got: {head}"
            );
        }

        // The SSE stream: correct media type plus the no-store cache
        // directive (a cached event stream is a frozen dashboard).
        let raw = sse_read(addr, "/events", None, "\r\n\r\n", Duration::from_secs(3));
        assert!(
            raw.contains("Content-Type: text/event-stream"),
            "SSE head was: {raw}"
        );
        assert!(
            raw.contains("Cache-Control: no-store"),
            "SSE head was: {raw}"
        );

        server.shutdown();
    }

    /// The live tentpole round trip: decisions publish onto the bus,
    /// the plane's pump retains them, `/events` streams them as SSE
    /// frames, and a `Last-Event-ID` reconnect resumes past everything
    /// already seen.
    #[test]
    fn events_stream_delivers_and_resumes_by_seq() {
        let engine = engine_with_policy();
        let obs = EngineObs::new(Arc::clone(&engine)).with_live_telemetry();
        let server = ObsServer::serve(obs, "127.0.0.1:0").unwrap();
        let addr = server.addr();

        for _ in 0..3 {
            decide_once(&engine);
        }
        if !grbac_core::telemetry::ENABLED {
            // No events exist under telemetry-off; the stream is just
            // a well-formed head (heartbeats only). Covered above.
            server.shutdown();
            return;
        }

        let raw = sse_read(addr, "/events", Some(0), "\ndata:", Duration::from_secs(5));
        assert!(raw.contains("\ndata:"), "no event frame arrived: {raw}");
        assert!(raw.contains("\"kind\""), "frames carry the event JSON");
        let max_seq = raw
            .lines()
            .filter_map(|line| line.strip_prefix("id: "))
            .filter_map(|seq| seq.trim().parse::<u64>().ok())
            .max()
            .expect("id: lines accompany every frame");

        // New decisions land after the cursor; a resumed stream must
        // start strictly past everything acknowledged.
        for _ in 0..2 {
            decide_once(&engine);
        }
        let resumed = sse_read(
            addr,
            "/events",
            Some(max_seq),
            "\ndata:",
            Duration::from_secs(5),
        );
        let first_resumed = resumed
            .lines()
            .filter_map(|line| line.strip_prefix("id: "))
            .filter_map(|seq| seq.trim().parse::<u64>().ok())
            .next()
            .expect("resumed stream must deliver the new events");
        assert!(
            first_resumed > max_seq,
            "resume replayed seq {first_resumed} <= cursor {max_seq}"
        );

        // A kind filter suppresses decision frames entirely; bad
        // filter values fail fast as one-shot 400s.
        let filtered = sse_read(
            addr,
            "/events?kinds=alert",
            Some(0),
            "never-matches",
            Duration::from_millis(600),
        );
        assert!(
            !filtered.contains("\"kind\":\"decision\""),
            "kind filter leaked: {filtered}"
        );
        let (status, _, _) = request(addr, "GET", "/events?kinds=bogus").unwrap();
        assert_eq!(status, 400);
        let (status, _, _) = request(addr, "GET", "/events?min_severity=loud").unwrap();
        assert_eq!(status, 400);

        server.shutdown();
    }

    /// `/timeseries` serves windowed series out of the scraped
    /// history; `/dashboard` is the self-contained page wired to both
    /// live routes. Without live telemetry all three routes 404.
    #[test]
    fn timeseries_and_dashboard_serve_live_plane() {
        let engine = engine_with_policy();
        let obs = EngineObs::new(Arc::clone(&engine)).with_live_telemetry();
        let live = Arc::clone(obs.live().expect("live telemetry attached"));
        let server = ObsServer::serve(obs.clone(), "127.0.0.1:0").unwrap();
        let addr = server.addr();

        // Drive two captures by hand (the background ticker is gated
        // to its real 500 ms cadence; tests shouldn't sleep for it).
        live.scrape(&engine);
        decide_once(&engine);
        live.scrape(&engine);

        let (status, body) = get(addr, "/timeseries").unwrap();
        assert_eq!(status, 200, "{body}");
        let parsed: serde_json::Value = serde_json::from_str(&body).expect("timeseries parses");
        let series = parsed.get("series").expect("series object");
        for name in ["deny_rate_ppm", "decide_per_sec", "degraded_ppm"] {
            assert!(series.get(name).is_some(), "default series {name} missing");
        }
        let windows = match parsed.get("windows") {
            Some(serde_json::Value::UInt(n)) => *n,
            Some(serde_json::Value::Int(n)) => u64::try_from(*n).unwrap(),
            other => panic!("windows must be an unsigned count, got {other:?}"),
        };
        assert!(windows >= 1, "two captures must yield a window");

        let (status, body) = get(addr, "/timeseries?series=decide_per_sec&windows=4").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("decide_per_sec"));
        assert!(!body.contains("deny_rate_ppm"));
        let (status, _) = get(addr, "/timeseries?series=no_such_series").unwrap();
        assert_eq!(status, 400);
        let (status, _) = get(addr, "/timeseries?windows=zero").unwrap();
        assert_eq!(status, 400);

        let (status, page) = get(addr, "/dashboard").unwrap();
        assert_eq!(status, 200);
        assert!(page.contains("EventSource"), "dashboard tails /events");
        assert!(page.contains("/timeseries"), "dashboard polls the series");
        assert!(!page.contains("http://"), "the page must be self-contained");

        server.shutdown();

        // A plane without live telemetry refuses the live routes.
        let bare = ObsServer::serve(EngineObs::new(Arc::clone(&engine)), "127.0.0.1:0").unwrap();
        for path in ["/timeseries", "/dashboard", "/events"] {
            let (status, _) = get(bare.addr(), path).unwrap();
            assert_eq!(status, 404, "{path} must 404 without live telemetry");
        }
        bare.shutdown();
    }
}
