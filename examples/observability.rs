//! The observability plane, end to end: serve a living Aware Home
//! over HTTP, scrape its metrics, pull a decision correlation id out
//! of a latency exemplar, and resolve that id to the full story of
//! the decision — flight-recorder record, fresh replay diff, and
//! audit row.
//!
//! Also used as the CI endpoint smoke: every assertion here must hold
//! on a clean build, so `cargo run --release --example observability`
//! failing means the endpoints regressed.
//!
//! Run with: `cargo run --example observability`

use grbac::core::telemetry::{self, WatchdogConfig};
use grbac::core::DecisionStory;
use grbac::home::scenario::paper_household;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The §5 household, with a watchdog installed and every decision
    // sampled so exemplars appear immediately (the default 1-in-8
    // sampling would need more traffic).
    let mut home = paper_household()?;
    home.install_watchdog(WatchdogConfig::default());
    home.engine().metrics().set_latency_sample_rate(1);

    let vocab = *home.vocab();
    let alice = home.person("alice")?.subject();
    let mom = home.person("mom")?.subject();
    let tv = home.device("tv")?.object();
    let oven = home.device("oven")?.object();
    for _ in 0..4 {
        home.request(alice, vocab.operate, tv)?;
        home.request(alice, vocab.operate, oven)?;
        home.request(mom, vocab.operate, oven)?;
    }

    // Serve the live home on an ephemeral port. The server shares the
    // engine and watchdog with the home — nothing is copied.
    let server = home.serve_observability("127.0.0.1:0")?;
    let addr = server.addr();
    println!("serving http://{addr}\n");

    // Every endpoint answers 200 with a parseable body.
    let (status, metrics) = grbac::obs::get(addr, "/metrics")?;
    assert_eq!(status, 200, "/metrics");
    println!(
        "/metrics       {} lines of Prometheus text",
        metrics.lines().count()
    );

    let (status, json) = grbac::obs::get(addr, "/metrics.json")?;
    assert_eq!(status, 200, "/metrics.json");
    serde_json::from_str::<serde_json::Value>(&json)?;
    println!("/metrics.json  {} bytes of valid JSON", json.len());

    let (status, health) = grbac::obs::get(addr, "/health")?;
    assert_eq!(status, 200, "/health");
    assert!(health.contains("\"watchdog_installed\":true"));
    serde_json::from_str::<serde_json::Value>(&health)?;
    println!("/health        {health}");

    let (status, heat) = grbac::obs::get(addr, "/heat")?;
    assert_eq!(status, 200, "/heat");
    serde_json::from_str::<serde_json::Value>(&heat)?;
    println!("/heat          {} bytes of valid JSON", heat.len());

    let (status, alerts) = grbac::obs::get(addr, "/alerts")?;
    assert_eq!(status, 200, "/alerts");
    serde_json::from_str::<serde_json::Value>(&alerts)?;
    println!("/alerts        {alerts}");

    // The live-telemetry plane: a windowed time series over repeated
    // scrapes, and the self-contained dashboard that consumes it.
    let (status, series) = grbac::obs::get(addr, "/timeseries")?;
    assert_eq!(status, 200, "/timeseries");
    serde_json::from_str::<serde_json::Value>(&series)?;
    println!("/timeseries    {} bytes of valid JSON", series.len());

    let (status, dashboard) = grbac::obs::get(addr, "/dashboard")?;
    assert_eq!(status, 200, "/dashboard");
    assert!(dashboard.contains("EventSource"), "dashboard streams live");
    println!("/dashboard     {} bytes of HTML", dashboard.len());

    // /events streams Server-Sent Events and never ends on its own, so
    // read it off a raw socket: mediate a few live requests first (the
    // plane retains their events), then expect the SSE head — and,
    // with telemetry compiled in, a replayed event frame.
    for _ in 0..4 {
        home.request(mom, vocab.operate, oven)?;
    }
    let sse = {
        use std::io::{Read, Write};
        let mut stream = std::net::TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(std::time::Duration::from_millis(200)))?;
        write!(stream, "GET /events HTTP/1.1\r\nHost: grbac-obs\r\n\r\n")?;
        stream.flush()?;
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        let mut raw = String::new();
        let mut buf = [0u8; 4096];
        while std::time::Instant::now() < deadline {
            match stream.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => {
                    raw.push_str(&String::from_utf8_lossy(&buf[..n]));
                    if raw.contains("\ndata: ") || (!telemetry::ENABLED && raw.contains("retry:")) {
                        break;
                    }
                }
                Err(ref err)
                    if matches!(
                        err.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) => {}
                Err(err) => return Err(err.into()),
            }
        }
        raw
    };
    assert!(sse.contains("200 OK"), "/events answers");
    assert!(sse.contains("text/event-stream"), "/events is SSE");
    if telemetry::ENABLED {
        assert!(sse.contains("\ndata: "), "live requests become frames");
    }
    println!("/events        SSE head + frames, {} bytes read", sse.len());

    // The correlation round-trip: an exemplar in the scrape names a
    // real decision; /decision/<id> tells its whole story.
    if telemetry::ENABLED {
        let exemplar = metrics
            .lines()
            .find(|l| l.contains("# {decision_id=\""))
            .expect("sampled decisions leave exemplars");
        let (_, rest) = exemplar.split_once("decision_id=\"").expect("exemplar id");
        let (hex, _) = rest.split_once('"').expect("closing quote");

        let (status, body) = grbac::obs::get(addr, &format!("/decision/{hex}"))?;
        assert_eq!(status, 200, "/decision/{hex}");
        let story: DecisionStory = serde_json::from_str(&body)?;
        assert_eq!(story.decision_id.to_string(), hex);
        assert!(story.agrees(), "replay agrees with the recorded verdict");
        println!("\nexemplar id    {hex}");
        println!(
            "/decision/<id> effect={:?} replay_agrees={} audit_row={}",
            story.record.effect,
            story.agrees(),
            story.audit.is_some(),
        );
    }

    // Unknown and malformed ids answer 404/400, not 500.
    let missing = "f".repeat(32);
    let (status, _) = grbac::obs::get(addr, &format!("/decision/{missing}"))?;
    assert_eq!(status, 404, "unknown id");
    let (status, _) = grbac::obs::get(addr, "/decision/not-hex")?;
    assert_eq!(status, 400, "malformed id");

    server.shutdown();
    println!("\nserver shut down cleanly; the home keeps mediating");
    assert!(home.request(mom, vocab.operate, oven)?.is_permitted());
    Ok(())
}
