//! Quickstart: the §5.1 policy in under a minute.
//!
//! Builds the paper's flagship example — *"any child can use
//! entertainment devices on weekdays during free time"* — as one GRBAC
//! rule, then mediates a few requests at different times.
//!
//! Run with: `cargo run --example quickstart`

use grbac::core::prelude::*;

fn main() -> Result<(), GrbacError> {
    let mut home = Grbac::new();

    // 1. Vocabulary: roles of all three kinds, one transaction.
    let child = home.declare_subject_role("child")?;
    let parent = home.declare_subject_role("parent")?;
    let entertainment = home.declare_object_role("entertainment_devices")?;
    let weekdays = home.declare_environment_role("weekdays")?;
    let free_time = home.declare_environment_role("free_time")?;
    let use_t = home.declare_transaction("use")?;

    // 2. Entities.
    let alice = home.declare_subject("alice")?;
    let mom = home.declare_subject("mom")?;
    home.assign_subject_role(alice, child)?;
    home.assign_subject_role(mom, parent)?;
    let tv = home.declare_object("living_room_tv")?;
    home.assign_object_role(tv, entertainment)?;

    // 3. The policy: exactly one rule.
    home.add_rule(
        RuleDef::permit()
            .named("any child can use entertainment devices on weekdays during free time")
            .subject_role(child)
            .object_role(entertainment)
            .transaction(use_t)
            .when(weekdays)
            .when(free_time),
    )?;

    // 4. Mediate. The environment snapshot says which environment roles
    //    are active right now (grbac-env computes these from a clock;
    //    here we set them by hand).
    let tuesday_evening = EnvironmentSnapshot::from_active([weekdays, free_time]);
    let tuesday_noon = EnvironmentSnapshot::from_active([weekdays]);

    let decision = home.decide(&AccessRequest::by_subject(
        alice,
        use_t,
        tv,
        tuesday_evening.clone(),
    ))?;
    println!("alice -> tv, Tuesday 8pm : {decision}");
    assert!(decision.is_permitted());

    let decision = home.decide(&AccessRequest::by_subject(alice, use_t, tv, tuesday_noon))?;
    println!("alice -> tv, Tuesday noon: {decision}");
    assert!(!decision.is_permitted());

    // Mom holds `parent`, not `child`: the rule does not apply, and the
    // engine falls back to deny-by-default.
    let decision = home.decide(&AccessRequest::by_subject(mom, use_t, tv, tuesday_evening))?;
    println!("mom   -> tv, Tuesday 8pm : {decision}");
    assert!(!decision.is_permitted());

    println!("\nExplanation for the last decision:");
    println!(
        "  subject roles held : {:?}",
        decision.explanation().subject_roles
    );
    println!(
        "  rules matched      : {}",
        decision.explanation().matched.len()
    );
    println!("  reason             : {:?}", decision.explanation().reason);
    Ok(())
}
