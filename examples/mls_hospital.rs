//! Multilevel security in GRBAC (§6): a small hospital records system
//! with classification levels and need-to-know compartments, run twice
//! — once through the direct Bell–LaPadula monitor, once through the
//! GRBAC encoding — and shown to agree on every decision.
//!
//! Run with: `cargo run --example mls_hospital`

use grbac::mls::{BlpMonitor, Classification, MlsGrbac, MlsOp, SecurityLevel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Levels: general ward data, psychiatric records (compartmented),
    // and research data (compartmented).
    let ward = SecurityLevel::new(Classification::Confidential);
    let psych = SecurityLevel::with_compartments(Classification::Secret, ["psych"]);
    let research = SecurityLevel::with_compartments(Classification::Secret, ["research"]);
    let chief = SecurityLevel::with_compartments(Classification::TopSecret, ["psych", "research"]);

    let principals: [(&str, &SecurityLevel); 4] = [
        ("nurse", &ward),
        ("psychiatrist", &psych),
        ("researcher", &research),
        ("chief_of_medicine", &chief),
    ];
    let records: [(&str, &SecurityLevel); 3] = [
        ("ward_chart", &ward),
        ("psych_eval", &psych),
        ("trial_data", &research),
    ];

    let mut direct = BlpMonitor::new();
    let mut encoded = MlsGrbac::new()?;
    for (name, level) in principals {
        direct.set_clearance(name, level.clone());
        encoded.add_subject(name, level)?;
    }
    for (name, level) in records {
        direct.set_classification(name, level.clone());
        encoded.add_object(name, level)?;
    }

    println!(
        "{:<18} {:<11} {:<11} {:>7} {:>7}  agree",
        "subject", "op", "object", "direct", "grbac"
    );
    let mut mismatches = 0;
    for (subject, _) in principals {
        for (object, _) in records {
            for op in [MlsOp::Read, MlsOp::Write] {
                let a = direct.decide(subject, op, object);
                let b = encoded.decide(subject, op, object)?;
                if a != b {
                    mismatches += 1;
                }
                println!(
                    "{:<18} {:<11} {:<11} {:>7} {:>7}  {}",
                    subject,
                    format!("{op:?}"),
                    object,
                    a,
                    b,
                    a == b
                );
            }
        }
    }
    println!("\nmismatches: {mismatches}");
    assert_eq!(mismatches, 0, "the GRBAC encoding is decision-equivalent");

    // Spot-check the famous properties:
    assert!(
        !direct.decide("nurse", MlsOp::Read, "psych_eval"),
        "no read up"
    );
    assert!(
        direct.decide("nurse", MlsOp::Write, "psych_eval"),
        "write up ok"
    );
    assert!(
        !direct.decide("chief_of_medicine", MlsOp::Write, "ward_chart"),
        "no write down — even the chief cannot leak into the ward chart"
    );
    assert!(
        !direct.decide("psychiatrist", MlsOp::Read, "trial_data"),
        "compartments enforce need-to-know"
    );
    Ok(())
}
