//! Partial authentication (§5.2): Alice, the Smart Floor, and the 90%
//! policy.
//!
//! The Smart Floor measures Alice's weight, identifies her *as Alice*
//! with only ~75% confidence (Bobby's weight is close), but places her
//! *in the child role* with ~99% confidence. Under a 90% threshold,
//! identity-based access fails while role-based access succeeds — the
//! paper's key scenario, reproduced end to end through real sensor
//! models and the real mediation engine.
//!
//! Run with: `cargo run --example partial_auth`

use grbac::core::confidence::AuthContext;
use grbac::home::scenario::{
    paper_confidence_threshold, paper_household, paper_smart_floor, weights,
};
use grbac::sense::evidence::Claim;
use grbac::sense::fusion::FusionStrategy;
use grbac::sense::{Authenticator, FaceRecognizer, Presence, VoiceRecognizer};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut home = paper_household()?;
    let vocab = *home.vocab();
    home.engine_mut()
        .set_default_min_confidence(paper_confidence_threshold());

    let alice = home.person("alice")?.subject();
    let tv = home.device("tv")?.object();
    let floor = paper_smart_floor(&home)?;

    // --- The deterministic heart of §5.2. ---
    println!(
        "Smart Floor reading at Alice's exact weight ({} kg):",
        weights::ALICE
    );
    let evidence = floor.evidence_for_measurement(weights::ALICE);
    let mut identity_ctx = AuthContext::new();
    let mut full_ctx = AuthContext::new();
    for e in &evidence {
        match e.claim {
            Claim::Identity(s) => {
                println!("  identity claim  : subject {s} at {}", e.confidence);
                identity_ctx.claim_identity(s, e.confidence);
                full_ctx.claim_identity(s, e.confidence);
            }
            Claim::RoleMembership(r) => {
                println!("  role claim      : role {r} (child) at {}", e.confidence);
                full_ctx.claim_role(r, e.confidence);
            }
        }
    }

    let d = home.request_sensed(identity_ctx, vocab.operate, tv)?;
    println!("\nidentity-only request (90% policy)  -> {d}");
    assert!(!d.is_permitted(), "75% identity misses the 90% bar");

    let d = home.request_sensed(full_ctx, vocab.operate, tv)?;
    println!("with the child-role claim           -> {d}");
    assert!(d.is_permitted(), "the 99% role claim clears the bar");

    // --- Multi-sensor fusion: floor + face + voice. ---
    let mut face = FaceRecognizer::new(0.90)?;
    let mut voice = VoiceRecognizer::new(0.70)?;
    for person in home.people() {
        face.enroll(person.subject())?;
        voice.enroll(person.subject())?;
    }
    let authenticator = Authenticator::new(FusionStrategy::NoisyOr)
        .with_sensor(Box::new(paper_smart_floor(&home)?))
        .with_sensor(Box::new(face))
        .with_sensor(Box::new(voice));

    let mut rng = rand::rngs::StdRng::seed_from_u64(2000);
    let presence = Presence::walking(alice, weights::ALICE).speaking();
    let mut grants = 0;
    let trials = 200;
    for _ in 0..trials {
        let ctx = authenticator.authenticate(&presence, &mut rng);
        if home.request_sensed(ctx, vocab.operate, tv)?.is_permitted() {
            grants += 1;
        }
    }
    println!(
        "\nfused floor+face+voice over {trials} trials -> granted {grants} ({}%)",
        grants * 100 / trials
    );
    Ok(())
}
