//! The §3 repairman: *"a repairman has access to the refrigerator only
//! while he is inside the home on January 17, 2000, between 8:00 a.m.
//! and 1:00 p.m."* — one environment role combining date, time-of-day
//! and physical presence.
//!
//! Run with: `cargo run --example repairman`

use grbac::core::rule::RuleDef;
use grbac::env::calendar::TimeExpr;
use grbac::env::provider::EnvCondition;
use grbac::env::time::{Date, Duration, TimeOfDay, Timestamp};
use grbac::home::{AwareHome, DeviceKind, PersonKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build a home whose clock starts just before the service window.
    let visit_day = Date::new(2000, 1, 17)?;
    let mut home = AwareHome::builder()
        .starting_at(Timestamp::from_civil(visit_day, TimeOfDay::hm(7, 30)?))
        .room("kitchen")
        .person("mom", PersonKind::Adult, 61.0, "kitchen")
        .person("technician", PersonKind::ServiceAgent, 78.0, "kitchen")
        .device("dishwasher", DeviceKind::Dishwasher, "kitchen")
        .build()?;
    let vocab = *home.vocab();

    // One environment role captures the whole §3 sentence.
    let visit_window = home.define_environment_role(
        "repair_visit_window",
        EnvCondition::Time(
            TimeExpr::DateRange {
                start: visit_day,
                end: visit_day,
            }
            .and(TimeExpr::between(
                TimeOfDay::hm(8, 0)?,
                TimeOfDay::hm(13, 0)?,
            )),
        )
        .and(EnvCondition::SubjectInZone(home.home_zone())),
    )?;

    home.engine_mut().add_rule(
        RuleDef::permit()
            .named("repairman access during the scheduled visit")
            .subject_role(vocab.service_agent)
            .object_role(vocab.appliance)
            .transaction(vocab.repair)
            .when(visit_window),
    )?;

    let technician = home.person("technician")?.subject();
    let dishwasher = home.device("dishwasher")?.object();

    // 07:30 — too early.
    let d = home.request(technician, vocab.repair, dishwasher)?;
    println!("{} tech -> dishwasher: {d}", home.now());
    assert!(!d.is_permitted());

    // 09:00 — inside the window, inside the home.
    home.advance(Duration::minutes(90));
    let d = home.request(technician, vocab.repair, dishwasher)?;
    println!("{} tech -> dishwasher: {d}", home.now());
    assert!(d.is_permitted());

    // 10:00 — steps outside (a remote attack with his credentials would
    // look exactly like this): the presence condition fails.
    home.advance(Duration::hours(1));
    home.remove_from_home(technician);
    let d = home.request(technician, vocab.repair, dishwasher)?;
    println!("{} tech -> dishwasher (outside): {d}", home.now());
    assert!(!d.is_permitted());

    // Back inside at 10:05.
    home.advance(Duration::minutes(5));
    home.place(technician, home.room("kitchen")?);
    let d = home.request(technician, vocab.repair, dishwasher)?;
    println!("{} tech -> dishwasher: {d}", home.now());
    assert!(d.is_permitted());

    // 13:00 — the window closes.
    home.advance(Duration::hours(3));
    let d = home.request(technician, vocab.repair, dishwasher)?;
    println!("{} tech -> dishwasher: {d}", home.now());
    assert!(!d.is_permitted());

    // And the window never lets him touch anything but appliances:
    let d = home.request(technician, vocab.operate, dishwasher)?;
    println!("{} tech operates dishwasher (not repair): {d}", home.now());
    assert!(!d.is_permitted());
    Ok(())
}
