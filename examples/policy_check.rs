//! A command-line policy checker: load a policy file written in the
//! GRBAC policy language, ask a question, get a decision with a
//! human-readable explanation — the §7 "prototype system" in miniature.
//!
//! ```text
//! cargo run --example policy_check -- <policy.grbac> <subject> <transaction> <object> [YYYY-MM-DD HH:MM]
//! ```
//!
//! Run without arguments to see it answer three questions against the
//! built-in §5.1 sample policy.

use grbac::core::engine::AccessRequest;
use grbac::env::provider::EnvironmentContext;
use grbac::env::time::{Date, TimeOfDay, Timestamp};
use grbac::policy::{compile, parse};

const SAMPLE_POLICY: &str = r#"
subject role family_member;
subject role parent extends family_member;
subject role child extends family_member;
object role entertainment_devices;
environment role weekdays = weekdays;
environment role free_time = between 19:00 and 22:00;
transaction operate;
subject alice is child;
subject mom is parent;
object tv is entertainment_devices;
"kids tv policy":
allow child to operate entertainment_devices when weekdays and free_time;
"parents any time":
allow parent to operate entertainment_devices;
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        println!("no arguments: demonstrating against the built-in sample policy\n");
        for (subject, when) in [
            ("alice", "2000-01-17 20:00"),
            ("alice", "2000-01-22 20:00"),
            ("mom", "2000-01-22 23:30"),
        ] {
            println!("$ policy_check <sample> {subject} operate tv \"{when}\"");
            check(SAMPLE_POLICY, subject, "operate", "tv", Some(when))?;
            println!();
        }
        return Ok(());
    }
    if args.len() < 4 {
        eprintln!(
            "usage: policy_check <policy.grbac> <subject> <transaction> <object> [YYYY-MM-DD HH:MM]"
        );
        std::process::exit(2);
    }
    let source = std::fs::read_to_string(&args[0])?;
    let when = args.get(4).map(String::as_str);
    check(&source, &args[1], &args[2], &args[3], when)?;
    Ok(())
}

fn check(
    source: &str,
    subject: &str,
    transaction: &str,
    object: &str,
    when: Option<&str>,
) -> Result<(), Box<dyn std::error::Error>> {
    let program = parse(source)?;
    let compiled = compile(&program)?;
    let mut engine = compiled.engine;
    let provider = compiled.provider;

    let subject_id = engine.entities().find_subject(subject)?;
    let transaction_id = engine.entities().find_transaction(transaction)?;
    let object_id = engine.entities().find_object(object)?;

    let now = match when {
        Some(text) => parse_datetime(text)?,
        None => Timestamp::EPOCH,
    };
    let environment = provider.snapshot(&EnvironmentContext::at(now).with_subject(subject_id));

    let decision = engine.check(&AccessRequest::by_subject(
        subject_id,
        transaction_id,
        object_id,
        environment,
    ))?;
    println!(
        "at {now}: may {subject} {transaction} {object}?  ->  {}",
        decision.effect()
    );
    print!("{}", engine.render_decision(&decision));
    Ok(())
}

/// Parses `YYYY-MM-DD HH:MM` without external dependencies.
fn parse_datetime(text: &str) -> Result<Timestamp, Box<dyn std::error::Error>> {
    let err = || format!("expected YYYY-MM-DD HH:MM, got {text:?}");
    let (date_part, time_part) = text.trim().split_once(' ').ok_or_else(err)?;
    let mut date_fields = date_part.split('-');
    let year: i32 = date_fields.next().ok_or_else(err)?.parse()?;
    let month: u8 = date_fields.next().ok_or_else(err)?.parse()?;
    let day: u8 = date_fields.next().ok_or_else(err)?.parse()?;
    let (hour_text, minute_text) = time_part.split_once(':').ok_or_else(err)?;
    let hour: u8 = hour_text.parse()?;
    let minute: u8 = minute_text.parse()?;
    Ok(Timestamp::from_civil(
        Date::new(year, month, day)?,
        TimeOfDay::hm(hour, minute)?,
    ))
}
