//! The multi-tenant policy service, end to end: start a server on a
//! loopback port, provision two tenants over the wire, build a small
//! household policy in one and a workplace policy in the other,
//! mediate requests against both, explain a decision, and scrape the
//! tenant-labelled metrics — all through the NDJSON protocol a
//! non-Rust client would speak.
//!
//! Also used as the CI service smoke: every assertion here must hold
//! on a clean build, so `cargo run --release --example serve` failing
//! means the wire protocol regressed. The request/response shapes are
//! documented in `docs/service.md`, whose examples are executed
//! verbatim by `tests/service_conformance.rs`.
//!
//! Run with: `cargo run --example serve`
//!
//! Pass `--listen` to keep the provisioned server running on
//! `127.0.0.1:7471` after the walkthrough, so you can speak the
//! protocol to it by hand (see the quickstart in `docs/service.md`):
//!
//! ```text
//! cargo run --example serve -- --listen
//! printf '%s\n' '{"op":"ping"}' | nc 127.0.0.1 7471
//! ```

use std::sync::Arc;

use grbac::serve::{Client, PolicyService, ServeServer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let listen = std::env::args().any(|a| a == "--listen");
    let service = Arc::new(PolicyService::with_defaults());
    let bind = if listen {
        "127.0.0.1:7471"
    } else {
        "127.0.0.1:0"
    };
    let server = ServeServer::serve(Arc::clone(&service), bind)?;
    let addr = server.local_addr();
    println!("policy service listening on {addr}");

    let mut client = Client::connect(addr)?;

    // Liveness and protocol version.
    let pong = client.request_line(r#"{"op":"ping"}"#)?;
    println!("ping -> {pong}");
    assert!(pong.contains("\"protocol\":1"));

    // Two tenants: the §5 household and an office, fully isolated.
    for line in [
        r#"{"op":"create_tenant","tenant":"home"}"#,
        r#"{"op":"create_tenant","tenant":"office"}"#,
        // The household: children may use entertainment devices, but
        // only during the day.
        r#"{"op":"declare","tenant":"home","kind":"subject_role","name":"child"}"#,
        r#"{"op":"declare","tenant":"home","kind":"object_role","name":"entertainment"}"#,
        r#"{"op":"declare","tenant":"home","kind":"environment_role","name":"daytime"}"#,
        r#"{"op":"declare","tenant":"home","kind":"transaction","name":"use"}"#,
        r#"{"op":"declare","tenant":"home","kind":"subject","name":"bobby"}"#,
        r#"{"op":"declare","tenant":"home","kind":"object","name":"tv"}"#,
        r#"{"op":"assign","tenant":"home","kind":"subject_role","entity":"bobby","role":"child"}"#,
        r#"{"op":"assign","tenant":"home","kind":"object_role","entity":"tv","role":"entertainment"}"#,
        r#"{"op":"add_rule","tenant":"home","effect":"permit","name":"kids daytime tv","subject_role":"child","object_role":"entertainment","transaction":"use","when":["daytime"]}"#,
        // The office: clerks may read records.
        r#"{"op":"declare","tenant":"office","kind":"subject_role","name":"clerk"}"#,
        r#"{"op":"declare","tenant":"office","kind":"transaction","name":"read"}"#,
        r#"{"op":"declare","tenant":"office","kind":"subject","name":"dana"}"#,
        r#"{"op":"declare","tenant":"office","kind":"object","name":"ledger"}"#,
        r#"{"op":"assign","tenant":"office","kind":"subject_role","entity":"dana","role":"clerk"}"#,
        r#"{"op":"add_rule","tenant":"office","effect":"permit","subject_role":"clerk","transaction":"read"}"#,
    ] {
        let response = client.request_line(line)?;
        assert!(response.contains("\"ok\":true"), "{line} -> {response}");
    }

    // Mediation: daytime permits, night denies (environment roles are
    // per-request snapshots, exactly as in the paper's model).
    let day = client.request_line(
        r#"{"op":"decide","tenant":"home","subject":"bobby","transaction":"use","object":"tv","env":["daytime"]}"#,
    )?;
    println!("home daytime -> {day}");
    assert!(day.contains("\"effect\":\"permit\""));

    let night = client.request_line(
        r#"{"op":"decide","tenant":"home","subject":"bobby","transaction":"use","object":"tv"}"#,
    )?;
    println!("home night   -> {night}");
    assert!(night.contains("\"effect\":\"deny\""));

    // Tenant isolation: the office has never heard of bobby.
    let cross = client.request_line(
        r#"{"op":"decide","tenant":"office","subject":"bobby","transaction":"read","object":"ledger"}"#,
    )?;
    assert!(cross.contains("\"unknown_name\""), "{cross}");

    // Batched mediation keeps one engine pass and one response line.
    let batch = client.request_line(
        r#"{"op":"decide_batch","tenant":"office","requests":[{"subject":"dana","transaction":"read","object":"ledger"},{"subject":"dana","transaction":"read","object":"ledger"}]}"#,
    )?;
    assert_eq!(batch.matches("\"effect\":\"permit\"").count(), 2, "{batch}");

    // Explanation carries the matched rules and the rendered story.
    let why = client.request_line(
        r#"{"op":"explain","tenant":"home","subject":"bobby","transaction":"use","object":"tv","env":["daytime"]}"#,
    )?;
    println!("explain      -> {why}");
    assert!(why.contains("\"matched\""));
    assert!(why.contains("kids daytime tv"));

    // Wire tracing: a request carrying a sampled trace context gets the
    // server's span id echoed back, and the span tree — queue wait, lock
    // stages, the engine call — is retrievable on the obs plane by the
    // trace id alone (grammar in docs/service.md, workflow in
    // docs/operations.md).
    let obs = service.serve_observability("home", "127.0.0.1:0")?;
    let traced = client.request_line(
        r#"{"op":"decide","tenant":"home","subject":"bobby","transaction":"use","object":"tv","env":["daytime"],"trace":"aaaabbbbccccdddd1111222233334444-00f067aa0ba902b7-01"}"#,
    )?;
    println!("traced       -> {traced}");
    assert!(
        traced.contains("\"trace\":\"aaaabbbbccccdddd1111222233334444-"),
        "traced decide did not echo the server span: {traced}"
    );
    let (status, tree) = grbac::obs::get(obs.addr(), "/trace/aaaabbbbccccdddd1111222233334444")?;
    assert_eq!(status, 200, "trace lookup failed: {tree}");
    for stage in ["queue_wait", "engine_lock", "\"decision_story\""] {
        assert!(tree.contains(stage), "span tree missing {stage}: {tree}");
    }
    println!("trace tree resolved on the obs plane (stages + decision story)");
    obs.shutdown();

    // Policy churn on one tenant bumps only that tenant's generation.
    let office_before = client.request_line(r#"{"op":"status","tenant":"office"}"#)?;
    let edit = client
        .request_line(r#"{"op":"add_rule","tenant":"home","effect":"deny","transaction":"use"}"#)?;
    assert!(edit.contains("\"ok\":true"), "{edit}");
    let office_after = client.request_line(r#"{"op":"status","tenant":"office"}"#)?;
    assert_eq!(office_before, office_after);

    // The merged exposition labels every engine series by tenant.
    let metrics = client.request_line(r#"{"op":"metrics"}"#)?;
    assert!(
        metrics.contains("grbac_serve_tenants 2"),
        "metrics exposition lost a tenant"
    );
    if grbac::core::telemetry::ENABLED {
        assert!(
            metrics.contains("tenant=\\\"home\\\""),
            "missing home tenant label"
        );
        assert!(
            metrics.contains("tenant=\\\"office\\\""),
            "missing office tenant label"
        );
    }
    println!("metrics exposition covers both tenants");

    println!("serve example: all assertions passed");
    if listen {
        println!("serving on {addr} until interrupted (tenants: home, office)");
        loop {
            std::thread::sleep(std::time::Duration::from_secs(60));
        }
    }
    server.shutdown();
    Ok(())
}
