//! The full Aware Home: the paper's §5 household living a simulated
//! evening, with the Cyberfridge and utility-management applications
//! from §2 running against the same policy engine.
//!
//! Run with: `cargo run --example aware_home`

use grbac::core::rule::RuleDef;
use grbac::env::time::Duration;
use grbac::home::apps::cyberfridge::Cyberfridge;
use grbac::home::apps::utility::{Preferences, UtilityManager};
use grbac::home::scenario::paper_household;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The §5 household: Mom, Dad, Alice, Bobby, the repair technician,
    // ten devices, and the paper's four policy rules. The clock starts
    // Monday, January 17, 2000 at 8:00 p.m.
    let mut home = paper_household()?;
    let vocab = *home.vocab();
    println!(
        "household: {} people, {} devices",
        home.people().count(),
        home.devices().count()
    );
    println!("time now : {}", home.now());

    let alice = home.person("alice")?.subject();
    let mom = home.person("mom")?.subject();
    let tv = home.device("tv")?.object();
    let oven = home.device("oven")?.object();

    // --- The evening unfolds. ---
    let d = home.request(alice, vocab.operate, tv)?;
    println!("\n[20:00] alice turns on the tv          -> {d}");

    let d = home.request(alice, vocab.operate, oven)?;
    println!("[20:05] alice tries the oven           -> {d} (dangerous appliance)");

    let d = home.request(mom, vocab.operate, oven)?;
    println!("[20:05] mom uses the oven              -> {d}");

    home.advance(Duration::hours(2) + Duration::minutes(30)); // 22:30
    let d = home.request(alice, vocab.operate, tv)?;
    println!("[22:30] alice tries the tv after hours -> {d}");

    // --- Cyberfridge (§2): inventory management over the same policy. ---
    home.engine_mut().add_rule(
        RuleDef::permit()
            .named("family reads the fridge inventory")
            .subject_role(vocab.family_member)
            .object_role(vocab.appliance)
            .transaction(vocab.read),
    )?;
    home.engine_mut().add_rule(
        RuleDef::permit()
            .named("parents update the fridge")
            .subject_role(vocab.parent)
            .object_role(vocab.appliance)
            .transaction(vocab.write),
    )?;

    let mut fridge = Cyberfridge::new(home.device("fridge")?.object());
    fridge.stock("milk", 1, 2);
    fridge.stock("eggs", 12, 6);

    let inventory = fridge.inventory(&mut home, alice)?;
    println!(
        "\ncyberfridge: alice reads inventory     -> granted={}",
        inventory.is_granted()
    );
    let proposals = fridge
        .reorder_proposals(&mut home, mom)?
        .granted()
        .expect("parents can read");
    for p in &proposals {
        println!("cyberfridge: reorder {} x{}", p.item, p.quantity);
    }
    let tech = home.person("repair_technician")?.subject();
    let denied = fridge.inventory(&mut home, tech)?;
    println!(
        "cyberfridge: technician reads inventory-> granted={}",
        denied.is_granted()
    );

    // --- Utility management (§2): occupancy-aware heating. ---
    home.engine_mut().add_rule(
        RuleDef::permit()
            .named("parents adjust utilities")
            .subject_role(vocab.parent)
            .object_role(vocab.utility_control)
            .transaction(vocab.adjust),
    )?;
    let utility = UtilityManager::new(home.device("thermostat")?.object(), None)
        .with_preferences(Preferences::default());
    let plan = utility.plan(&home);
    println!(
        "\nutility: occupied home plan            -> target {}°C",
        plan.target_temp_c
    );

    let everyone: Vec<_> = home.people().map(|p| p.subject()).collect();
    for person in everyone {
        home.remove_from_home(person);
    }
    let plan = utility.plan(&home);
    println!(
        "utility: empty home plan               -> target {}°C",
        plan.target_temp_c
    );

    // --- The audit trail saw everything. ---
    let engine = home.engine();
    let audit = engine.audit();
    println!(
        "\naudit: {} requests recorded ({} permits, {} denies)",
        audit.total_recorded(),
        audit.permit_count(),
        audit.deny_count()
    );
    Ok(())
}
