//! The policy language: write the §5.1 household policy as text, parse
//! and compile it, mediate against it, then pretty-print it back.
//!
//! Run with: `cargo run --example policy_language`

use grbac::core::engine::AccessRequest;
use grbac::env::provider::EnvironmentContext;
use grbac::env::time::{Date, TimeOfDay, Timestamp};
use grbac::policy::{compile, parse, print};

const POLICY: &str = r#"
# The sample household from the GRBAC paper, section 5.1.

subject role home_user;
subject role family_member extends home_user;
subject role parent extends family_member;
subject role child extends family_member;

object role entertainment_devices;
object role dangerous_appliance;

environment role weekdays = weekdays;
environment role free_time = between 19:00 and 22:00;

transaction operate;

subject mom is parent;
subject dad is parent;
subject alice is child;
subject bobby is child;

object tv is entertainment_devices;
object game_console is entertainment_devices;
object oven is dangerous_appliance;

"kids tv policy":
allow child to operate entertainment_devices when weekdays and free_time;

"parents may do anything":
allow parent to do anything anything;

"no dangerous appliances for children":
deny child to do anything dangerous_appliance;
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Parse and compile.
    let program = parse(POLICY)?;
    println!("parsed {} statements", program.statements.len());
    let compiled = compile(&program)?;
    let mut engine = compiled.engine;
    let provider = compiled.provider;
    println!("compiled {} rules\n", engine.rules().len());

    // Look names up and mediate at two times.
    let alice = engine.entities().find_subject("alice")?;
    let mom = engine.entities().find_subject("mom")?;
    let tv = engine.entities().find_object("tv")?;
    let oven = engine.entities().find_object("oven")?;
    let operate = engine.entities().find_transaction("operate")?;

    let monday_8pm = Timestamp::from_civil(Date::new(2000, 1, 17)?, TimeOfDay::hm(20, 0)?);
    let monday_noon = Timestamp::from_civil(Date::new(2000, 1, 17)?, TimeOfDay::hm(12, 0)?);

    for (label, ts) in [("Monday 20:00", monday_8pm), ("Monday 12:00", monday_noon)] {
        let env = provider.snapshot(&EnvironmentContext::at(ts));
        let d = engine.check(&AccessRequest::by_subject(alice, operate, tv, env.clone()))?;
        println!("{label}: alice -> tv   : {d}");
        let d = engine.check(&AccessRequest::by_subject(
            alice,
            operate,
            oven,
            env.clone(),
        ))?;
        println!("{label}: alice -> oven : {d}");
        let d = engine.check(&AccessRequest::by_subject(mom, operate, oven, env))?;
        println!("{label}: mom   -> oven : {d}");
    }

    // Round-trip: print the canonical form back out.
    println!("\ncanonical policy text:\n----------------------");
    print!("{}", print(&program));

    // The printed text re-parses to the identical AST.
    assert_eq!(parse(&print(&program))?, program);
    Ok(())
}
