//! Separation of duty (§4.1.2): the paper's bank example.
//!
//! A bank employee who also holds a checking account must never act as
//! teller and account holder *at the same time* (dynamic SoD), and no
//! one may ever be both auditor and approver at all (static SoD). This
//! example walks both constraint kinds plus role activation, and shows
//! the same mechanics carrying over into the home (babysitter vs.
//! grocery-delivery agent).
//!
//! Run with: `cargo run --example bank_teller`

use grbac::core::prelude::*;
use grbac::core::Grbac;

fn main() -> Result<(), GrbacError> {
    let mut bank = Grbac::new();

    // Roles and transactions.
    let teller = bank.declare_subject_role("teller")?;
    let holder = bank.declare_subject_role("account_holder")?;
    let auditor = bank.declare_subject_role("auditor")?;
    let approver = bank.declare_subject_role("loan_approver")?;
    let account_role = bank.declare_object_role("customer_account")?;
    let execute = bank.declare_transaction("execute_deposit")?;
    let authorize = bank.declare_transaction("authorize_deposit")?;

    bank.add_rule(
        RuleDef::permit()
            .named("tellers execute deposits")
            .subject_role(teller)
            .object_role(account_role)
            .transaction(execute),
    )?;
    bank.add_rule(
        RuleDef::permit()
            .named("account holders authorize deposits")
            .subject_role(holder)
            .object_role(account_role)
            .transaction(authorize),
    )?;

    // Dynamic SoD: teller and account_holder never active together.
    bank.add_sod_constraint(SodConstraint::mutual_exclusion(
        "teller vs account holder",
        SodKind::Dynamic,
        teller,
        holder,
    )?)?;
    // Static SoD: auditor and approver never even co-authorized.
    bank.add_sod_constraint(SodConstraint::mutual_exclusion(
        "auditor vs approver",
        SodKind::Static,
        auditor,
        approver,
    )?)?;

    // Pat is both an employee and a customer — fine as *authorized* roles.
    let pat = bank.declare_subject("pat")?;
    bank.assign_subject_role(pat, teller)?;
    bank.assign_subject_role(pat, holder)?;
    let account = bank.declare_object("pats_account")?;
    bank.assign_object_role(account, account_role)?;

    // Working session: pat activates teller.
    let work = bank.open_session(pat)?;
    bank.activate_role(work, teller)?;
    println!("work session: teller activated");

    // Activating account_holder in the same session violates DSoD.
    match bank.activate_role(work, holder) {
        Err(GrbacError::SodViolation { constraint, .. }) => {
            println!("work session: account_holder blocked by {constraint:?}");
        }
        other => panic!("expected an SoD violation, got {other:?}"),
    }

    // Mediation follows the session's active set.
    let env = EnvironmentSnapshot::new();
    let d = bank.decide(&AccessRequest::by_session(
        work,
        execute,
        account,
        env.clone(),
    ))?;
    println!("work session: execute_deposit  -> {d}");
    assert!(d.is_permitted());
    let d = bank.decide(&AccessRequest::by_session(
        work,
        authorize,
        account,
        env.clone(),
    ))?;
    println!("work session: authorize_deposit -> {d}");
    assert!(!d.is_permitted());

    // After hours, a *different* session may act as account holder —
    // "only when he assumes both roles simultaneously is it possible
    // for him to abuse the system."
    let personal = bank.open_session(pat)?;
    bank.activate_role(personal, holder)?;
    let d = bank.decide(&AccessRequest::by_session(
        personal, authorize, account, env,
    ))?;
    println!("personal session: authorize_deposit -> {d}");
    assert!(d.is_permitted());

    // Static SoD bites at assignment time.
    bank.assign_subject_role(pat, auditor)?;
    match bank.assign_subject_role(pat, approver) {
        Err(GrbacError::SodViolation { constraint, .. }) => {
            println!("assignment: loan_approver blocked by {constraint:?}");
        }
        other => panic!("expected an SoD violation, got {other:?}"),
    }

    println!("\nall separation-of-duty constraints held.");
    Ok(())
}
