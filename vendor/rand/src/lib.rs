//! Offline stand-in for the `rand` 0.8 API surface used by this
//! workspace: [`RngCore`], [`Rng`], [`SeedableRng`], [`rngs::StdRng`],
//! and [`seq::SliceRandom`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the
//! ChaCha12 of upstream `StdRng`, so seeded streams differ from real
//! `rand`, but determinism per seed and statistical quality hold, which
//! is all the workspace's seeded tests rely on.

use std::ops::{Range, RangeInclusive};

/// The low-level generator interface.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// Types that can be sampled uniformly from the generator's full
/// output domain (the `Standard` distribution in real `rand`).
pub trait StandardSample {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                start + unit * (end - start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// High-level convenience methods, available on every [`RngCore`]
/// (including `dyn RngCore`).
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seeds. Only the `seed_from_u64` entry point is
/// used by this workspace.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Same generator under the `SmallRng` name.
    pub type SmallRng = StdRng;

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Random selection on slices.
    pub trait SliceRandom {
        type Item;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Picks `amount` distinct elements (fewer when the slice is
        /// shorter). Unlike upstream, the returned order is the partial
        /// Fisher–Yates draw order; callers here don't rely on it.
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let idx = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[idx])
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            let mut indices: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = i + (rng.next_u64() % (indices.len() - i) as u64) as usize;
                indices.swap(i, j);
            }
            indices
                .into_iter()
                .take(amount)
                .map(|i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let i = rng.gen_range(3..10);
            assert!((3..10).contains(&i));
            let j = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&j));
            let g = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&g));
        }
    }

    #[test]
    fn mean_of_unit_samples_is_centered() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 10_000;
        let total: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = total / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn works_through_dyn_rng_core() {
        let mut rng = StdRng::seed_from_u64(0);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let f = dyn_rng.gen::<f64>();
        assert!((0.0..1.0).contains(&f));
        let i = dyn_rng.gen_range(0..5usize);
        assert!(i < 5);
    }

    #[test]
    fn slice_helpers() {
        let mut rng = StdRng::seed_from_u64(9);
        let items = [1, 2, 3, 4, 5];
        assert!(items.choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());

        let picked: Vec<i32> = items.choose_multiple(&mut rng, 3).copied().collect();
        assert_eq!(picked.len(), 3);
        let mut unique = picked.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 3, "choose_multiple must not repeat");

        let over: Vec<i32> = items.choose_multiple(&mut rng, 99).copied().collect();
        assert_eq!(over.len(), items.len());

        let mut data = [1, 2, 3, 4, 5, 6, 7, 8];
        data.shuffle(&mut rng);
        let mut sorted = data;
        sorted.sort_unstable();
        assert_eq!(sorted, [1, 2, 3, 4, 5, 6, 7, 8]);
    }
}
