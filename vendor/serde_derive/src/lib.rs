//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the vendored `serde::Serialize` /
//! `serde::Deserialize` traits (value-based, see `vendor/serde`) for
//! non-generic structs and enums. Supported field attributes:
//!
//! * `#[serde(default)]` — missing field deserializes via `Default`;
//! * `#[serde(skip)]` — field is not serialized and deserializes via
//!   `Default`;
//! * `#[serde(with = "path")]` — `path::to_value` / `path::from_value`
//!   are used instead of the trait methods.
//!
//! Implemented over raw `proc_macro` token streams because `syn` and
//! `quote` are unavailable in this registry-less build environment.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Per-field serde attributes.
#[derive(Default, Clone)]
struct FieldAttrs {
    default: bool,
    skip: bool,
    with: Option<String>,
}

/// The shape of a struct body or enum variant payload.
enum Fields {
    Unit,
    Tuple(Vec<FieldAttrs>),
    Named(Vec<(String, FieldAttrs)>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item)
            .parse()
            .expect("generated Serialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated Deserialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("compile_error parses")
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    skip_attributes(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);

    let keyword = expect_ident(&tokens, &mut pos)?;
    let name = expect_ident(&tokens, &mut pos)?;

    if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive (vendored) does not support generic type `{name}`"
        ));
    }

    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_named_fields(g.stream())?
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    parse_tuple_fields(g.stream())?
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => return Err(format!("unsupported struct body for `{name}`: {other:?}")),
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let body = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("unsupported enum body for `{name}`: {other:?}")),
            };
            Ok(Item::Enum {
                name,
                variants: parse_variants(body)?,
            })
        }
        other => Err(format!("cannot derive serde impls for `{other}` items")),
    }
}

fn skip_attributes(tokens: &[TokenTree], pos: &mut usize) {
    while matches!(tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *pos += 1; // '#'
        if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
        {
            *pos += 1;
        }
    }
}

/// Collects serde attributes while skipping all attributes at `pos`.
fn take_attributes(tokens: &[TokenTree], pos: &mut usize) -> Result<FieldAttrs, String> {
    let mut attrs = FieldAttrs::default();
    while matches!(tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *pos += 1; // '#'
        let Some(TokenTree::Group(group)) = tokens.get(*pos) else {
            return Err("malformed attribute".to_owned());
        };
        *pos += 1;
        let inner: Vec<TokenTree> = group.stream().into_iter().collect();
        if !matches!(inner.first(), Some(TokenTree::Ident(i)) if i.to_string() == "serde") {
            continue;
        }
        let Some(TokenTree::Group(args)) = inner.get(1) else {
            continue;
        };
        parse_serde_args(args.stream(), &mut attrs)?;
    }
    Ok(attrs)
}

fn parse_serde_args(stream: TokenStream, attrs: &mut FieldAttrs) -> Result<(), String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    while pos < tokens.len() {
        let key = expect_ident(&tokens, &mut pos)?;
        match key.as_str() {
            "default" => attrs.default = true,
            "skip" | "skip_serializing" | "skip_deserializing" => attrs.skip = true,
            "with" => {
                if !matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
                    return Err("expected `=` after `with`".to_owned());
                }
                pos += 1;
                let Some(TokenTree::Literal(lit)) = tokens.get(pos) else {
                    return Err("expected a string literal after `with =`".to_owned());
                };
                pos += 1;
                let raw = lit.to_string();
                let path = raw.trim_matches('"').to_owned();
                if path.is_empty() || raw.len() < 2 {
                    return Err("empty `with` path".to_owned());
                }
                attrs.with = Some(path);
            }
            other => {
                return Err(format!(
                    "unsupported serde attribute `{other}` in vendored serde_derive"
                ))
            }
        }
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    Ok(())
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        *pos += 1;
        if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *pos += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> Result<String, String> {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(i)) => {
            *pos += 1;
            Ok(i.to_string())
        }
        other => Err(format!("expected identifier, got {other:?}")),
    }
}

/// Skips one type, tracking `<`/`>` nesting, stopping at a top-level `,`.
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(token) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *pos += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Fields, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        let attrs = take_attributes(&tokens, &mut pos)?;
        skip_visibility(&tokens, &mut pos);
        let name = expect_ident(&tokens, &mut pos)?;
        if !matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ':') {
            return Err(format!("expected `:` after field `{name}`"));
        }
        pos += 1;
        skip_type(&tokens, &mut pos);
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
        fields.push((name, attrs));
    }
    Ok(Fields::Named(fields))
}

fn parse_tuple_fields(stream: TokenStream) -> Result<Fields, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        let attrs = take_attributes(&tokens, &mut pos)?;
        skip_visibility(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut pos);
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
        fields.push(attrs);
    }
    Ok(Fields::Tuple(fields))
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos)?;
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                parse_tuple_fields(g.stream())?
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                parse_named_fields(g.stream())?
            }
            _ => Fields::Unit,
        };
        // Skip an optional discriminant (`= expr`) up to the next comma.
        while pos < tokens.len()
            && !matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',')
        {
            pos += 1;
        }
        if pos < tokens.len() {
            pos += 1; // ','
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn ser_expr(expr: &str, attrs: &FieldAttrs) -> String {
    match &attrs.with {
        Some(path) => format!("{path}::to_value({expr})"),
        None => format!("::serde::Serialize::to_value({expr})"),
    }
}

fn de_expr(expr: &str, attrs: &FieldAttrs) -> String {
    match &attrs.with {
        Some(path) => format!("{path}::from_value({expr})?"),
        None => format!("::serde::Deserialize::from_value({expr})?"),
    }
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_owned(),
                Fields::Tuple(attrs) if attrs.len() == 1 => ser_expr("&self.0", &attrs[0]),
                Fields::Tuple(attrs) => {
                    let items: Vec<String> = attrs
                        .iter()
                        .enumerate()
                        .map(|(i, a)| ser_expr(&format!("&self.{i}"), a))
                        .collect();
                    format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                }
                Fields::Named(named) => {
                    let mut pushes = String::new();
                    for (field, attrs) in named {
                        if attrs.skip {
                            continue;
                        }
                        let value = ser_expr(&format!("&self.{field}"), attrs);
                        pushes.push_str(&format!(
                            "__fields.push(({field:?}.to_string(), {value}));\n"
                        ));
                    }
                    format!(
                        "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n{pushes}::serde::Value::Map(__fields)"
                    )
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n fn to_value(&self) -> ::serde::Value {{\n {body}\n }}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for variant in variants {
                let v = &variant.name;
                match &variant.fields {
                    Fields::Unit => {
                        arms.push_str(&format!(
                            "{name}::{v} => ::serde::Value::Str({v:?}.to_string()),\n"
                        ));
                    }
                    Fields::Tuple(attrs) => {
                        let binders: Vec<String> =
                            (0..attrs.len()).map(|i| format!("__f{i}")).collect();
                        let payload = if attrs.len() == 1 {
                            ser_expr("__f0", &attrs[0])
                        } else {
                            let items: Vec<String> = attrs
                                .iter()
                                .enumerate()
                                .map(|(i, a)| ser_expr(&format!("__f{i}"), a))
                                .collect();
                            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{v}({}) => ::serde::Value::Map(vec![({v:?}.to_string(), {payload})]),\n",
                            binders.join(", ")
                        ));
                    }
                    Fields::Named(named) => {
                        let binders: Vec<String> = named.iter().map(|(f, _)| f.clone()).collect();
                        let items: Vec<String> = named
                            .iter()
                            .map(|(f, a)| format!("({f:?}.to_string(), {})", ser_expr(f, a)))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v} {{ {} }} => ::serde::Value::Map(vec![({v:?}.to_string(), ::serde::Value::Map(vec![{}]))]),\n",
                            binders.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n fn to_value(&self) -> ::serde::Value {{\n #[allow(unused_variables)]\n match self {{\n {arms} }}\n }}\n}}\n"
            )
        }
    }
}

fn gen_named_constructor(type_path: &str, named: &[(String, FieldAttrs)], source: &str) -> String {
    let mut fields = String::new();
    for (field, attrs) in named {
        if attrs.skip {
            fields.push_str(&format!("{field}: ::std::default::Default::default(),\n"));
            continue;
        }
        let parse = de_expr("__v", attrs);
        let missing = if attrs.default {
            "::std::default::Default::default()".to_owned()
        } else {
            format!(
                "return Err(::serde::Error::custom(concat!(\"missing field `\", {field:?}, \"`\")))"
            )
        };
        fields.push_str(&format!(
            "{field}: match {source}.get({field:?}) {{ Some(__v) => {parse}, None => {missing} }},\n"
        ));
    }
    format!("{type_path} {{\n{fields}}}")
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!(
                    "match __value {{ ::serde::Value::Null => Ok({name}), _ => Err(::serde::Error::expected(\"null\", __value)) }}"
                ),
                Fields::Tuple(attrs) if attrs.len() == 1 => {
                    format!("Ok({name}({}))", de_expr("__value", &attrs[0]))
                }
                Fields::Tuple(attrs) => {
                    let n = attrs.len();
                    let items: Vec<String> = attrs
                        .iter()
                        .enumerate()
                        .map(|(i, a)| de_expr(&format!("&__items[{i}]"), a))
                        .collect();
                    format!(
                        "let __items = __value.as_seq().ok_or_else(|| ::serde::Error::expected(\"array\", __value))?;\n\
                         if __items.len() != {n} {{ return Err(::serde::Error::custom(\"wrong tuple arity\")); }}\n\
                         Ok({name}({}))",
                        items.join(", ")
                    )
                }
                Fields::Named(named) => {
                    let ctor = gen_named_constructor(name, named, "__value");
                    format!(
                        "if __value.as_map().is_none() {{ return Err(::serde::Error::expected(\"object\", __value)); }}\nOk({ctor})"
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n fn from_value(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n {body}\n }}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for variant in variants {
                let v = &variant.name;
                match &variant.fields {
                    Fields::Unit => {
                        unit_arms.push_str(&format!("{v:?} => Ok({name}::{v}),\n"));
                    }
                    Fields::Tuple(attrs) if attrs.len() == 1 => {
                        tagged_arms.push_str(&format!(
                            "{v:?} => Ok({name}::{v}({})),\n",
                            de_expr("__payload", &attrs[0])
                        ));
                    }
                    Fields::Tuple(attrs) => {
                        let n = attrs.len();
                        let items: Vec<String> = attrs
                            .iter()
                            .enumerate()
                            .map(|(i, a)| de_expr(&format!("&__items[{i}]"), a))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "{v:?} => {{\n let __items = __payload.as_seq().ok_or_else(|| ::serde::Error::expected(\"array\", __payload))?;\n if __items.len() != {n} {{ return Err(::serde::Error::custom(\"wrong variant arity\")); }}\n Ok({name}::{v}({}))\n }}\n",
                            items.join(", ")
                        ));
                    }
                    Fields::Named(named) => {
                        let ctor =
                            gen_named_constructor(&format!("{name}::{v}"), named, "__payload");
                        tagged_arms.push_str(&format!("{v:?} => Ok({ctor}),\n"));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n fn from_value(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n #[allow(unused_variables)]\n match __value {{\n ::serde::Value::Str(__s) => match __s.as_str() {{\n {unit_arms} __other => Err(::serde::Error::custom(format!(\"unknown variant `{{__other}}` of {name}\"))),\n }},\n ::serde::Value::Map(__tagged) if __tagged.len() == 1 => {{\n let (__tag, __payload) = &__tagged[0];\n match __tag.as_str() {{\n {tagged_arms} __other => Err(::serde::Error::custom(format!(\"unknown variant `{{__other}}` of {name}\"))),\n }}\n }},\n _ => Err(::serde::Error::expected(\"enum representation\", __value)),\n }}\n }}\n}}\n"
            )
        }
    }
}
