//! Offline stand-in for `proptest`: the strategy combinators and the
//! `proptest!` test macro used by this workspace, backed by plain
//! seeded random generation.
//!
//! Differences from upstream that the workspace tolerates:
//!
//! - **No shrinking.** A failing case reports its inputs via the
//!   assertion message but is not minimized.
//! - **Seeds are derived from the test name**, so runs are
//!   deterministic without `.proptest-regressions` files (which are
//!   ignored).
//! - The string strategy accepts only the small regex subset the
//!   tests use: literals, `[...]` classes with `a-z` ranges, and
//!   `{m}` / `{m,n}` quantifiers.

// The proptest! macro expands to code that seeds an rng; route that
// through a re-export so user crates don't need their own `rand` dep.
#[doc(hidden)]
pub use rand as __rand;

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A generator of values of type `Self::Value`.
    ///
    /// Object safe: only `new_value` lands in the vtable; every
    /// combinator requires `Self: Sized`.
    pub trait Strategy {
        type Value;

        fn new_value(&self, rng: &mut StdRng) -> Self::Value;

        fn prop_map<U, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, map }
        }

        fn prop_flat_map<S2, F>(self, map: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, map }
        }

        fn prop_filter<W, F>(self, whence: W, filter: F) -> Filter<Self, F>
        where
            Self: Sized,
            W: ToString,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence: whence.to_string(),
                filter,
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn new_value(&self, rng: &mut StdRng) -> S::Value {
            (**self).new_value(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn new_value(&self, rng: &mut StdRng) -> S::Value {
            (**self).new_value(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        map: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn new_value(&self, rng: &mut StdRng) -> U {
            (self.map)(self.inner.new_value(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        map: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn new_value(&self, rng: &mut StdRng) -> S2::Value {
            (self.map)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        whence: String,
        filter: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn new_value(&self, rng: &mut StdRng) -> S::Value {
            for _ in 0..1000 {
                let candidate = self.inner.new_value(rng);
                if (self.filter)(&candidate) {
                    return candidate;
                }
            }
            panic!(
                "prop_filter {:?} rejected 1000 consecutive candidates",
                self.whence
            );
        }
    }

    /// `prop_oneof!` backing type: uniform or weighted union of
    /// same-valued strategies.
    pub struct Union<T> {
        branches: Vec<(u32, BoxedStrategy<T>)>,
        total_weight: u64,
    }

    impl<T> Union<T> {
        #[must_use]
        pub fn new(branches: Vec<BoxedStrategy<T>>) -> Self {
            Self::new_weighted(branches.into_iter().map(|b| (1, b)).collect())
        }

        #[must_use]
        pub fn new_weighted(branches: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!branches.is_empty(), "prop_oneof! needs at least one arm");
            let total_weight = branches.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total_weight > 0, "prop_oneof! weights sum to zero");
            Union {
                branches,
                total_weight,
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut StdRng) -> T {
            let mut pick = rng.gen_range(0..self.total_weight);
            for (weight, branch) in &self.branches {
                let weight = u64::from(*weight);
                if pick < weight {
                    return branch.new_value(rng);
                }
                pick -= weight;
            }
            unreachable!("weighted pick out of bounds")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    impl Strategy for bool {
        type Value = bool;
        fn new_value(&self, rng: &mut StdRng) -> bool {
            // `any::<bool>()` resolves here; `self` is a placeholder.
            let _ = self;
            rng.gen::<bool>()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))+) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
        (A, B, C, D, E, F, G, H, I)
        (A, B, C, D, E, F, G, H, I, J)
    }

    /// String generation from a small regex subset: literal chars,
    /// `[...]` classes (with ranges), and `{m}` / `{m,n}` quantifiers.
    impl Strategy for &str {
        type Value = String;
        fn new_value(&self, rng: &mut StdRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut StdRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // One atom: a class or a literal char (with \ escapes).
            let alphabet: Vec<char> = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .unwrap_or_else(|| panic!("unclosed `[` in pattern {pattern:?}"))
                        + i;
                    let class = expand_class(&chars[i + 1..close], pattern);
                    i = close + 1;
                    class
                }
                '\\' => {
                    let c = *chars
                        .get(i + 1)
                        .unwrap_or_else(|| panic!("dangling `\\` in pattern {pattern:?}"));
                    i += 2;
                    vec![c]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            // Optional quantifier.
            let (lo, hi) = if chars.get(i) == Some(&'{') {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed `{{` in pattern {pattern:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse::<usize>().expect("quantifier lower bound"),
                        hi.trim().parse::<usize>().expect("quantifier upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().expect("exact quantifier");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let count = rng.gen_range(lo..=hi);
            for _ in 0..count {
                let idx = rng.gen_range(0..alphabet.len());
                out.push(alphabet[idx]);
            }
        }
        out
    }

    fn expand_class(body: &[char], pattern: &str) -> Vec<char> {
        assert!(!body.is_empty(), "empty class in pattern {pattern:?}");
        let mut alphabet = Vec::new();
        let mut i = 0;
        while i < body.len() {
            if i + 2 < body.len() && body[i + 1] == '-' {
                let (start, end) = (body[i], body[i + 2]);
                assert!(start <= end, "inverted range in pattern {pattern:?}");
                for c in start..=end {
                    alphabet.push(c);
                }
                i += 3;
            } else {
                alphabet.push(body[i]);
                i += 1;
            }
        }
        alphabet
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;

    /// Types with a canonical strategy, reachable through [`any`].
    pub trait Arbitrary: Sized {
        type Strategy: Strategy<Value = Self>;
        fn arbitrary() -> Self::Strategy;
    }

    impl Arbitrary for bool {
        type Strategy = bool;
        fn arbitrary() -> bool {
            false
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = std::ops::RangeInclusive<$t>;
                fn arbitrary() -> Self::Strategy {
                    <$t>::MIN..=<$t>::MAX
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    #[must_use]
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Element-count bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl SizeRange {
        fn pick(self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.lo..=self.hi_inclusive)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let count = self.size.pick(rng);
            (0..count).map(|_| self.element.new_value(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            // Duplicates shrink the draw; bound the retries so tight
            // element domains (e.g. 0..3 with target 3) terminate.
            for _ in 0..target.saturating_mul(20).max(8) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.new_value(rng));
            }
            set
        }
    }

    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen_bool(0.5) {
                Some(self.inner.new_value(rng))
            } else {
                None
            }
        }
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod test_runner {
    /// Subset of upstream's config: only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed; the case is skipped, not failed.
        Reject(String),
        /// A `prop_assert*!` failed.
        Fail(String),
    }

    impl TestCaseError {
        #[must_use]
        pub fn fail(message: String) -> Self {
            TestCaseError::Fail(message)
        }

        #[must_use]
        pub fn reject(message: String) -> Self {
            TestCaseError::Reject(message)
        }
    }

    /// Stable per-test seed: FNV-1a over the test's name.
    #[must_use]
    pub fn seed_for(name: &str) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(
            (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default())
            $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            use $crate::strategy::Strategy as _;
            let __config = $config;
            let mut __rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name))),
            );
            let mut __case: u32 = 0;
            let mut __rejected: u32 = 0;
            while __case < __config.cases {
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $arg = ($strategy).new_value(&mut __rng);)+
                        $body
                        Ok(())
                    })();
                match __outcome {
                    Ok(()) => __case += 1,
                    Err($crate::test_runner::TestCaseError::Reject(__why)) => {
                        __rejected += 1;
                        if __rejected > __config.cases.saturating_mul(16).max(1024) {
                            panic!(
                                "too many rejected cases ({__rejected}) in {}: {__why}",
                                stringify!($name),
                            );
                        }
                    }
                    Err($crate::test_runner::TestCaseError::Fail(__message)) => {
                        panic!(
                            "proptest case #{__case} of {} failed: {__message}",
                            stringify!($name),
                        );
                    }
                }
            }
        }
        $crate::__proptest_fns!(($config) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                    __l, __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
                    __l, __r, format!($($fmt)+)
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `(left != right)`\n  both: `{:?}`",
                __l
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!("assumption failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0)
    }

    #[test]
    fn combinators_compose() {
        let mut rng = rng();
        let strat = (1u64..10).prop_flat_map(|hi| (Just(hi), 0..hi));
        for _ in 0..200 {
            let (hi, lo) = strat.new_value(&mut rng);
            assert!(lo < hi && hi < 10);
        }
        let evens = (0u32..100).prop_map(|n| n * 2);
        assert_eq!(evens.new_value(&mut rng) % 2, 0);
        let odd = (0u32..100).prop_filter("odd", |n| n % 2 == 1);
        assert_eq!(odd.new_value(&mut rng) % 2, 1);
    }

    #[test]
    fn collections_and_options() {
        let mut rng = rng();
        for _ in 0..50 {
            let v = prop::collection::vec(0u8..5, 2..4).new_value(&mut rng);
            assert!(v.len() >= 2 && v.len() < 4);
            let s = prop::collection::btree_set(0usize..3, 0..=3).new_value(&mut rng);
            assert!(s.len() <= 3);
            let _o: Option<u8> = prop::option::of(0u8..5).new_value(&mut rng);
        }
    }

    #[test]
    fn string_patterns() {
        let mut rng = rng();
        for _ in 0..100 {
            let ident = "[a-z][a-z0-9_]{0,10}".new_value(&mut rng);
            assert!((1..=11).contains(&ident.len()), "{ident:?}");
            let first = ident.chars().next().unwrap();
            assert!(first.is_ascii_lowercase(), "{ident:?}");
            assert!(
                ident
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "{ident:?}"
            );

            let label = "[a-zA-Z0-9 _.-]{1,20}".new_value(&mut rng);
            assert!((1..=20).contains(&label.len()), "{label:?}");
            assert!(
                label
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || " _.-".contains(c)),
                "{label:?}"
            );
        }
    }

    #[test]
    fn oneof_uniform_and_weighted() {
        let mut rng = rng();
        let uniform = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(uniform.new_value(&mut rng));
        }
        assert_eq!(seen.len(), 3);

        let weighted = prop_oneof![
            9 => Just(true),
            1 => Just(false),
        ];
        let trues = (0..1000).filter(|_| weighted.new_value(&mut rng)).count();
        assert!((800..1000).contains(&trues), "trues={trues}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        fn macro_generates_args(a in 0u32..50, flag in any::<bool>(), f in 0.0f64..=1.0) {
            prop_assert!(a < 50);
            prop_assert!((0.0..=1.0).contains(&f));
            if flag {
                prop_assert_eq!(a, a);
            }
            prop_assert_ne!(f - 2.0, f);
        }

        fn assume_rejects_without_failing(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }
}
