//! Offline stand-in for `serde_json`: renders and parses the vendored
//! [`serde::Value`] tree as standard JSON text.

use std::fmt::Write as _;

pub use serde::Error;
pub use serde::Value;

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Never fails for the value model in use; the `Result` mirrors the
/// real `serde_json` signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Never fails for the value model in use.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    T::from_value(&value)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                // `{}` prints the shortest representation that
                // round-trips, and always includes `.0` for integral
                // floats via the check below.
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    let _ = write!(out, "{f:.1}");
                } else {
                    let _ = write!(out, "{f}");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(fields) => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            if !fields.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(value)
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_whitespace();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::custom("unexpected end of JSON"))
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek()? == byte {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at offset {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::custom("invalid literal"))
                }
            }
            b't' => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::custom("invalid literal"))
                }
            }
            b'f' => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::custom("invalid literal"))
                }
            }
            b'"' => self.string().map(Value::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "unexpected `{}` in array",
                                other as char
                            )))
                        }
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut fields = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Map(fields));
                }
                loop {
                    self.skip_whitespace();
                    let key = self.string()?;
                    self.expect(b':')?;
                    fields.push((key, self.value()?));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Map(fields));
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "unexpected `{}` in object",
                                other as char
                            )))
                        }
                    }
                }
            }
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&byte) = self.bytes.get(self.pos) else {
                return Err(Error::custom("unterminated string"));
            };
            match byte {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(&escape) = self.bytes.get(self.pos) else {
                        return Err(Error::custom("unterminated escape"));
                    };
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by our
                            // writer; reject them on input.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::custom("invalid \\u code point"))?;
                            out.push(c);
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 encoded char.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = text.chars().next().ok_or_else(|| Error::custom("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        let start = self.pos;
        if matches!(self.bytes.get(self.pos), Some(b'-')) {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&byte) = self.bytes.get(self.pos) {
            match byte {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::custom(format!("invalid number at offset {start}")));
        }
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&0.5f64).unwrap(), "0.5");
        assert_eq!(to_string("hi").unwrap(), "\"hi\"");
        let f: f64 = from_str("0.1").unwrap();
        assert!((f - 0.1).abs() < 1e-15);
    }

    #[test]
    fn round_trips_containers() {
        let v = vec![1u64, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        let back: Vec<u64> = from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn escapes_strings() {
        let s = "a\"b\\c\nd";
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn float_precision_round_trips() {
        for &f in &[0.1f64, 1.0 / 3.0, 0.98, 1e-12, 123456.789] {
            let json = to_string(&f).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(f, back, "{json}");
        }
    }
}
