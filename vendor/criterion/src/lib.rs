//! Offline stand-in for `criterion`: enough of the API for this
//! workspace's `harness = false` benches to build and produce useful
//! wall-clock numbers (median over fixed-size samples after a short
//! warm-up). No statistical analysis, baselines, or HTML reports.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(25);
const SAMPLE_TARGET: Duration = Duration::from_millis(20);
const SAMPLES: usize = 11;

/// Benchmark driver handed to the functions named in
/// [`criterion_group!`].
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    #[must_use]
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_and_report(name, |b| routine(b));
        self
    }
}

/// Named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_and_report(&format!("{}/{}", self.name, id.label), |b| routine(b));
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_and_report(&format!("{}/{}", self.name, id.label), |b| {
            routine(b, input);
        });
        self
    }

    /// Accepted for compatibility; sampling here is fixed-size.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    #[must_use]
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", function_name.into()),
        }
    }

    #[must_use]
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Runs the measured routine; populated by [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    median_ns: f64,
}

impl Bencher {
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warm up and estimate the per-iteration cost.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < WARMUP {
            black_box(routine());
            warmup_iters += 1;
        }
        let per_iter_ns = warmup_start.elapsed().as_nanos() as f64 / warmup_iters.max(1) as f64;

        // Size batches so one sample lasts roughly SAMPLE_TARGET.
        let batch = (SAMPLE_TARGET.as_nanos() as f64 / per_iter_ns.max(1.0))
            .ceil()
            .min(10_000_000.0) as u64;
        let batch = batch.max(1);

        let mut samples = [0f64; SAMPLES];
        for sample in &mut samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            *sample = start.elapsed().as_nanos() as f64 / batch as f64;
        }
        samples.sort_by(f64::total_cmp);
        self.median_ns = samples[SAMPLES / 2];
    }

    /// Like [`Bencher::iter`], but runs `setup` before every timed
    /// call of `routine`; setup time is excluded from the measurement.
    pub fn iter_with_setup<I, O, S, F>(&mut self, mut setup: S, mut routine: F)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // Warm up and estimate the per-iteration cost (routine only).
        let mut warmup_spent = Duration::ZERO;
        let mut warmup_iters: u64 = 0;
        while warmup_spent < WARMUP {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            warmup_spent += start.elapsed();
            warmup_iters += 1;
        }
        let per_iter_ns = warmup_spent.as_nanos() as f64 / warmup_iters.max(1) as f64;

        // Per-sample batches sized as in `iter`, but capped: each
        // iteration pays an untimed setup, so keep total work sane.
        let batch = (SAMPLE_TARGET.as_nanos() as f64 / per_iter_ns.max(1.0))
            .ceil()
            .min(10_000.0) as u64;
        let batch = batch.max(1);

        let mut samples = [0f64; SAMPLES];
        for sample in &mut samples {
            let mut spent = Duration::ZERO;
            for _ in 0..batch {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                spent += start.elapsed();
            }
            *sample = spent.as_nanos() as f64 / batch as f64;
        }
        samples.sort_by(f64::total_cmp);
        self.median_ns = samples[SAMPLES / 2];
    }
}

fn run_and_report(name: &str, routine: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher::default();
    routine(&mut bencher);
    println!("{name:<50} time: [{}]", format_ns(bencher.median_ns));
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let _ = $config;
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes `--bench` (and any user filters);
            // this harness runs everything regardless.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_fn(c: &mut Criterion) {
        let mut group = c.benchmark_group("group");
        let input = 21u64;
        group.bench_with_input(BenchmarkId::new("double", input), &input, |b, &n| {
            b.iter(|| n * 2);
        });
        group.bench_with_input(BenchmarkId::from_parameter(input), &input, |b, &n| {
            b.iter(|| n + 1);
        });
        group.finish();
        c.bench_function("free", |b| b.iter(|| 1 + 1));
    }

    criterion_group!(benches, bench_fn);

    #[test]
    fn harness_runs() {
        benches();
    }
}
