//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so this crate provides the subset of serde the workspace actually
//! uses, built around a self-describing [`Value`] tree instead of
//! serde's visitor machinery:
//!
//! * [`Serialize`] turns a value into a [`Value`];
//! * [`Deserialize`] reconstructs a value from a [`Value`];
//! * `#[derive(Serialize, Deserialize)]` (from the sibling
//!   `serde_derive` stub) generates both impls for structs and enums,
//!   honouring `#[serde(default)]`, `#[serde(skip)]` and
//!   `#[serde(with = "module")]` (where `module` exposes
//!   `to_value`/`from_value`).
//!
//! The JSON shapes mirror real serde where practical (externally tagged
//! enums, structs as objects, newtype transparency) so documents stay
//! human-readable; maps with non-string keys serialize as pair lists.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data tree: the interchange format every
/// [`Serialize`]/[`Deserialize`] impl goes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// Negative or small integers.
    Int(i64),
    /// Non-negative integers that may exceed `i64::MAX`.
    UInt(u64),
    /// Floating-point numbers.
    Float(f64),
    /// Strings.
    Str(String),
    /// Arrays.
    Seq(Vec<Value>),
    /// Objects, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The fields of an object, if this value is one.
    #[must_use]
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements of an array, if this value is one.
    #[must_use]
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The string payload, if this value is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a field of an object by name.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|fields| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// A short human-readable description of the value's shape, for
    /// error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }
}

/// Error produced by deserialization (and surfaced by `serde_json`).
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with the given message.
    #[must_use]
    pub fn custom(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// Shorthand for a type-mismatch error.
    #[must_use]
    pub fn expected(what: &str, got: &Value) -> Self {
        Self::custom(format!("expected {what}, got {}", got.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Serialization into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a [`Value`].
    fn to_value(&self) -> Value;
}

/// Deserialization from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value's shape does not match.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Compatibility module mirroring `serde::ser`.
pub mod ser {
    pub use super::{Error, Serialize};
}

/// Compatibility module mirroring `serde::de`.
pub mod de {
    pub use super::{Deserialize, Error};
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! impl_serde_uint {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::UInt(u64::from(*self))
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = match *value {
                    Value::UInt(u) => u,
                    Value::Int(i) if i >= 0 => i as u64,
                    _ => return Err(Error::expected("unsigned integer", value)),
                };
                <$ty>::try_from(raw)
                    .map_err(|_| Error::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        u64::from_value(value).and_then(|raw| {
            usize::try_from(raw).map_err(|_| Error::custom(format!("integer {raw} out of range")))
        })
    }
}

macro_rules! impl_serde_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Int(i64::from(*self))
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = match *value {
                    Value::Int(i) => i,
                    Value::UInt(u) => {
                        i64::try_from(u).map_err(|_| Error::custom("integer out of range"))?
                    }
                    _ => return Err(Error::expected("integer", value)),
                };
                <$ty>::try_from(raw)
                    .map_err(|_| Error::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::Int(*self as i64)
    }
}

impl Deserialize for isize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        i64::from_value(value).and_then(|raw| {
            isize::try_from(raw).map_err(|_| Error::custom(format!("integer {raw} out of range")))
        })
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match *value {
            Value::Float(f) => Ok(f),
            Value::Int(i) => Ok(i as f64),
            Value::UInt(u) => Ok(u as f64),
            _ => Err(Error::expected("number", value)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match *value {
            Value::Bool(b) => Ok(b),
            _ => Err(Error::expected("bool", value)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::expected("char", value))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected a single-character string")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::expected("string", value))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(()),
            _ => Err(Error::expected("null", value)),
        }
    }
}

// ---------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_seq()
            .ok_or_else(|| Error::expected("array", value))?;
        if items.len() != N {
            return Err(Error::custom(format!(
                "expected array of length {N}, got {}",
                items.len()
            )));
        }
        let values: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        values
            .try_into()
            .map_err(|_| Error::custom("array length mismatch"))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_seq()
            .ok_or_else(|| Error::expected("array", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(value).map(VecDeque::from)
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_seq()
            .ok_or_else(|| Error::expected("array", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_seq()
            .ok_or_else(|| Error::expected("array", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

// Maps serialize as pair lists: self-describing formats only allow
// string object keys, and the workspace keys its maps by typed ids.
impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Vec::<(K, V)>::from_value(value).map(BTreeMap::from_iter)
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Vec::<(K, V)>::from_value(value).map(HashMap::from_iter)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value.as_seq().ok_or_else(|| Error::expected("array", value))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected a {expected}-element array, got {}", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
    (A:0, B:1, C:2, D:3, E:4)
    (A:0, B:1, C:2, D:3, E:4, F:5)
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            Value::UInt(self.as_secs()),
            Value::UInt(u64::from(self.subsec_nanos())),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let (secs, nanos) = <(u64, u32)>::from_value(value)?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
